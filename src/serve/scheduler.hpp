/**
 * @file
 * Multi-tenant assertion-job scheduler: the in-process service front
 * door (qassertd is a thin NDJSON loop over it).
 *
 * Shape: submit() performs admission control — a circuit breaker sheds
 * load with ErrorCode::kShedding when the service is unhealthy, and a
 * bounded priority queue rejects with ErrorCode::kQueueFull instead of
 * blocking — and a supervised worker pool drains the queue, consulting
 * the cross-job ResultCache before dispatching cache misses onto the
 * shot-execution engine (executeJob -> runShots / runAssertedPolicy).
 *
 * Resilience: each worker slot carries a heartbeat; a watchdog thread
 * (enabled via SupervisorOptions::stall_timeout_ms) detects wedged
 * workers, reclaims their in-flight job — retried when the retry policy
 * allows, failed with ErrorCode::kWorkerLost otherwise — and respawns
 * the slot. Transient failures (kGeneric, kWorkerLost, kWorkerFailure)
 * retry with deterministic counter-based jittered backoff, bounded by
 * attempts and by the job's own deadline budget. Every admitted job is
 * resolved exactly once: attempt resolution is an attempt-stamped CAS
 * on the job ticket, so a zombie worker finishing late can never
 * double-resolve or clobber a retry.
 *
 * Determinism: a job's result is a pure function of its JobSpec (see
 * serve/job.hpp), so per-job results are bit-identical for any worker
 * count, arrival order, cache state, or recovery path — a job that
 * succeeds on attempt 3 returns the same payload it would have on
 * attempt 1. Scheduling and recovery only affect latency, never
 * payloads.
 *
 * Lifecycle: workers start immediately (or parked when
 * SchedulerOptions::start_paused, until resume()). stop() — also run by
 * the destructor — halts the watchdog, rejects new work, fulfills
 * still-queued and backoff-parked jobs with JobStatus::kCancelled,
 * finishes in-flight jobs, and joins every worker including zombies
 * left behind by respawns; no detached threads, ever.
 */
#ifndef QA_SERVE_SCHEDULER_HPP
#define QA_SERVE_SCHEDULER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "resilience/breaker.hpp"
#include "resilience/retry.hpp"
#include "resilience/supervisor.hpp"
#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "serve/metrics.hpp"

namespace qa
{
namespace serve
{

/**
 * Test/chaos hook run by a worker at the top of every execution attempt
 * (before the cache lookup). Receives the job's admission sequence
 * number and the 0-based attempt. May sleep (simulating a wedged
 * worker) or throw (a transient execution failure).
 */
using ExecHook = std::function<void(uint64_t seq, int attempt)>;

/** Scheduler sizing and behaviour knobs. */
struct SchedulerOptions
{
    /** Worker threads; <= 0 picks hardware concurrency. */
    int workers = 0;

    /** Max jobs waiting in the queue before admission rejects. */
    size_t queue_capacity = 1024;

    /** ResultCache entries; 0 disables cross-job caching. */
    size_t cache_capacity = 512;

    /**
     * Park the workers until resume(): admission runs but nothing
     * dispatches. Lets tests and batch loaders stage a queue
     * deterministically before execution starts.
     */
    bool start_paused = false;

    /** Transient-failure retry policy (attempts, backoff, jitter). */
    resilience::RetryOptions retry;

    /** Admission circuit breaker; disabled by default. */
    resilience::BreakerOptions breaker;

    /** Worker supervision; stall_timeout_ms <= 0 keeps the watchdog off. */
    resilience::SupervisorOptions supervisor;

    /** Chaos/test injection point; empty = no-op. */
    ExecHook exec_hook;

    /** Time source; nullptr = the real steady clock. */
    Clock* clock = nullptr;
};

/** Completion callback; invoked exactly once per admitted job. */
using JobCallback = std::function<void(JobResult)>;

class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions options = {});

    /** stop()s and joins the pool. */
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /**
     * Admit a job and resolve the returned future when it completes
     * (any JobStatus). Throws UserError immediately on shedding
     * (ErrorCode::kShedding), backpressure (ErrorCode::kQueueFull), or
     * after stop() (ErrorCode::kServiceStopped); rejected jobs consume
     * no queue slot.
     */
    std::future<JobResult> submit(JobSpec spec);

    /**
     * Callback flavour (qassertd's path): `done` runs on the worker
     * that finished the job — keep it short and never submit from it.
     */
    void submit(JobSpec spec, JobCallback done);

    /** Unpark the workers of a start_paused scheduler. Idempotent. */
    void resume();

    /**
     * Block until every admitted job has resolved. The scheduler must
     * not be paused (a parked pool would never drain).
     */
    void drain();

    /**
     * Bounded drain: wait up to `timeout_ms` for every admitted job to
     * resolve. Returns true when idle; false on timeout with work still
     * pending (the graceful-shutdown path then calls stop(), which
     * cancels whatever remains). `timeout_ms` <= 0 returns immediately.
     */
    bool drainFor(double timeout_ms);

    /**
     * Reject new submissions, cancel still-queued and backoff-parked
     * jobs (JobStatus::kCancelled, ErrorCode::kServiceStopped), finish
     * in-flight ones, and join all workers (zombies included).
     * Idempotent.
     */
    void stop();

    /** Resolved worker-pool size. */
    int
    workers() const
    {
        return workers_;
    }

    /** Counters + queue depth + cache + breaker, one consistent snapshot. */
    MetricsSnapshot metrics() const;

    /**
     * Backoff hint (ms) for a submission this scheduler just rejected
     * with `code`; 0 means "no estimate" and the field is omitted from
     * the wire response. kShedding derives from the breaker's remaining
     * cooldown; kQueueFull from the observed mean execution time — a
     * queue slot frees when any of the `workers()` workers pulls its
     * next job, so mean_exec / workers approximates that wait.
     */
    double retryAfterMsHint(ErrorCode code) const;

    /** @name Cheap liveness numbers for the ping response. */
    ///@{
    size_t queueDepth() const; ///< Queued + backoff-stashed jobs.
    size_t inFlight() const;   ///< Jobs executing right now.
    ///@}

    /** Cache counters alone (benches assert on hit rates). */
    CacheStats cacheStats() const { return cache_.stats(); }

    /** Breaker counters (tests; zeros when the breaker is disabled). */
    resilience::CircuitBreaker::Stats breakerStats() const
    {
        return breaker_.stats();
    }

  private:
    /**
     * One admitted job, shared between the queue, the executing worker,
     * and the watchdog. `claim` holds the next unresolved attempt
     * number: resolving attempt `a` — worker finished, or watchdog
     * declared the worker lost — is a CAS(a -> a+1), and exactly one
     * resolver wins. A zombie worker whose attempt was reclaimed loses
     * the CAS and discards its result; it can never claim a later
     * attempt because the CAS is attempt-stamped.
     */
    struct Ticket
    {
        JobSpec spec;
        uint64_t seq = 0;
        int priority = 0;
        Clock::TimePoint enqueued;
        JobCallback done;
        int attempt = 0;            ///< Attempt the next dispatch runs.
        std::atomic<int> claim{0};  ///< Next unresolved attempt.
    };
    using TicketPtr = std::shared_ptr<Ticket>;

    /** Max-heap order: highest priority first, FIFO within a level. */
    struct TicketOrder
    {
        bool
        operator()(const TicketPtr& a, const TicketPtr& b) const
        {
            if (a->priority != b->priority) {
                return a->priority < b->priority;
            }
            return a->seq > b->seq; // lower seq = older = higher priority
        }
    };

    /** A retry waiting out its backoff. */
    struct StashEntry
    {
        TicketPtr ticket;
        Clock::TimePoint release;
    };

    /** One supervised worker position. */
    struct Slot
    {
        std::thread thread;
        std::shared_ptr<resilience::Heartbeat> heartbeat;
        uint64_t generation = 0;
        TicketPtr running;      ///< Ticket being executed, if any.
        int running_attempt = 0;
    };

    void workerLoop(size_t slot_index, uint64_t generation,
                    std::shared_ptr<resilience::Heartbeat> heartbeat);
    JobResult runAttempt(const Ticket& ticket, int attempt);
    void finishAttempt(size_t slot_index, uint64_t generation,
                       const TicketPtr& ticket, int attempt,
                       JobResult result);
    void resolveFinal(const TicketPtr& ticket, JobResult result);
    void watchdogScan();
    void promoteDueRetriesLocked();
    void pushQueueLocked(TicketPtr ticket);
    void spawnSlotLocked(size_t slot_index);

    SchedulerOptions options_;
    Clock& clock_;
    ResultCache cache_;
    ServiceMetrics metrics_;
    resilience::CircuitBreaker breaker_;
    resilience::Watchdog watchdog_;
    int workers_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_; // queue/stash/pause/stop changes
    std::condition_variable idle_cv_; // resolution changes
    std::vector<TicketPtr> queue_;    // heap ordered by TicketOrder
    std::vector<StashEntry> stash_;   // retries waiting out backoff
    uint64_t next_seq_ = 0;
    size_t in_flight_ = 0;   ///< Threads inside runAttempt right now.
    size_t unresolved_ = 0;  ///< Admitted jobs not yet resolved.
    bool paused_ = false;
    bool stopped_ = false;

    std::vector<Slot> slots_;
    std::vector<std::thread> zombies_; ///< Replaced workers; joined at stop.
};

} // namespace serve
} // namespace qa

#endif // QA_SERVE_SCHEDULER_HPP
