/**
 * @file
 * Multi-tenant assertion-job scheduler: the in-process service front
 * door (qassertd is a thin NDJSON loop over it).
 *
 * Shape: submit() performs admission control on a bounded priority
 * queue — a full queue rejects with a typed UserError
 * (ErrorCode::kQueueFull) instead of blocking the caller — and a fixed
 * worker pool drains the queue, consulting the cross-job ResultCache
 * before dispatching cache misses onto the shot-execution engine
 * (executeJob -> runShots / runAssertedPolicy -> ShotExecutor +
 * runShotPool).
 *
 * Determinism: a job's result is a pure function of its JobSpec (see
 * serve/job.hpp), so per-job results are bit-identical for any worker
 * count, arrival order, or cache state. Scheduling only affects
 * latency, never payloads.
 *
 * Lifecycle: workers start immediately (or parked when
 * SchedulerOptions::start_paused, until resume()). stop() — also run by
 * the destructor — rejects new work, fulfills still-queued jobs with
 * JobStatus::kCancelled, finishes in-flight jobs, and joins every
 * worker; no detached threads, ever.
 */
#ifndef QA_SERVE_SCHEDULER_HPP
#define QA_SERVE_SCHEDULER_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "serve/metrics.hpp"

namespace qa
{
namespace serve
{

/** Scheduler sizing and behaviour knobs. */
struct SchedulerOptions
{
    /** Worker threads; <= 0 picks hardware concurrency. */
    int workers = 0;

    /** Max jobs waiting in the queue before admission rejects. */
    size_t queue_capacity = 1024;

    /** ResultCache entries; 0 disables cross-job caching. */
    size_t cache_capacity = 512;

    /**
     * Park the workers until resume(): admission runs but nothing
     * dispatches. Lets tests and batch loaders stage a queue
     * deterministically before execution starts.
     */
    bool start_paused = false;
};

/** Completion callback; invoked exactly once per admitted job. */
using JobCallback = std::function<void(JobResult)>;

class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions options = {});

    /** stop()s and joins the pool. */
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /**
     * Admit a job and resolve the returned future when it completes
     * (any JobStatus). Throws UserError immediately on backpressure
     * (ErrorCode::kQueueFull) or after stop()
     * (ErrorCode::kServiceStopped); rejected jobs consume no queue slot.
     */
    std::future<JobResult> submit(JobSpec spec);

    /**
     * Callback flavour (qassertd's path): `done` runs on the worker
     * that finished the job — keep it short and never submit from it.
     */
    void submit(JobSpec spec, JobCallback done);

    /** Unpark the workers of a start_paused scheduler. Idempotent. */
    void resume();

    /**
     * Block until every admitted job has completed. The scheduler must
     * not be paused (a parked pool would never drain).
     */
    void drain();

    /**
     * Reject new submissions, cancel still-queued jobs
     * (JobStatus::kCancelled, ErrorCode::kServiceStopped), finish
     * in-flight ones, and join all workers. Idempotent.
     */
    void stop();

    /** Resolved worker-pool size. */
    int workers() const { return int(pool_.size()); }

    /** Counters + queue depth + cache stats, one consistent snapshot. */
    MetricsSnapshot metrics() const;

    /** Cache counters alone (benches assert on hit rates). */
    CacheStats cacheStats() const { return cache_.stats(); }

  private:
    struct Job
    {
        JobSpec spec;
        uint64_t seq = 0;
        int priority = 0;
        std::chrono::steady_clock::time_point enqueued;
        JobCallback done;
    };

    /** Max-heap order: highest priority first, FIFO within a level. */
    struct JobOrder
    {
        bool
        operator()(const Job& a, const Job& b) const
        {
            if (a.priority != b.priority) return a.priority < b.priority;
            return a.seq > b.seq; // lower seq = older = higher priority
        }
    };

    void workerLoop();
    void runJob(Job job);

    SchedulerOptions options_;
    ResultCache cache_;
    ServiceMetrics metrics_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_; // queue/pause/stop changes
    std::condition_variable idle_cv_; // completion changes
    std::vector<Job> queue_;          // heap ordered by JobOrder
    uint64_t next_seq_ = 0;
    size_t in_flight_ = 0;
    bool paused_ = false;
    bool stopped_ = false;

    std::vector<std::thread> pool_;
};

} // namespace serve
} // namespace qa

#endif // QA_SERVE_SCHEDULER_HPP
