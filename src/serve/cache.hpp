/**
 * @file
 * Cross-job result cache: an LRU map from canonical job keys
 * (serve/job.hpp jobKey) to completed JobResults.
 *
 * Repeat submissions of closely related circuits are the assertion
 * workload's common case (Proq-style projection sweeps, parameter scans,
 * CI reruns): a hit short-circuits the whole shot loop and returns the
 * stored result bit-identically. Only clean results are admitted —
 * failures and deadline-truncated runs never enter the cache — so a hit
 * is always equivalent to re-executing the spec.
 *
 * Thread safety: all methods are safe for concurrent calls from the
 * scheduler's workers (one mutex; operations are O(1) amortized).
 */
#ifndef QA_SERVE_CACHE_HPP
#define QA_SERVE_CACHE_HPP

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/hash.hpp"
#include "serve/job.hpp"

namespace qa
{
namespace serve
{

/** Hit/miss/eviction counters of a ResultCache, snapshot at one instant. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;

    /** Hits over lookups; 0 when nothing was looked up yet. */
    double
    hitRate() const
    {
        const uint64_t lookups = hits + misses;
        return lookups == 0 ? 0.0 : double(hits) / double(lookups);
    }
};

/** Capacity-bounded LRU cache keyed by 128-bit job fingerprints. */
class ResultCache
{
  public:
    /** `capacity` == 0 disables the cache (every lookup misses). */
    explicit ResultCache(size_t capacity) : capacity_(capacity) {}

    /**
     * Look up a key, refreshing its recency on a hit. Counts a hit or
     * miss either way.
     */
    std::optional<JobResult> get(const Hash128& key);

    /**
     * Insert (or refresh) an entry, evicting the least recently used
     * one when at capacity. Truncated or non-ok results are rejected
     * (see file comment); returns whether the entry was stored.
     */
    bool put(const Hash128& key, const JobResult& result);

    /** Drop every entry (counters are kept). */
    void clear();

    CacheStats stats() const;

  private:
    using Entry = std::pair<Hash128, JobResult>;

    size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recently used
    std::unordered_map<Hash128, std::list<Entry>::iterator, Hash128Hasher>
        index_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t insertions_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace serve
} // namespace qa

#endif // QA_SERVE_CACHE_HPP
