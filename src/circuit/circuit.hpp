/**
 * @file
 * QuantumCircuit: the instruction-list IR that programs, assertion
 * builders, the transpiler, and the simulators all share.
 */
#ifndef QA_CIRCUIT_CIRCUIT_HPP
#define QA_CIRCUIT_CIRCUIT_HPP

#include <string>
#include <vector>

#include "circuit/instruction.hpp"
#include "linalg/matrix.hpp"

namespace qa
{

/**
 * Ordered list of instructions on a fixed-size qubit/classical register.
 *
 * Qubit 0 is the most significant bit of basis indices (paper's ket
 * convention |q0 q1 ...>). All mutating helpers validate indices eagerly.
 */
class QuantumCircuit
{
  public:
    /** Circuit over `num_qubits` qubits and `num_clbits` classical bits. */
    explicit QuantumCircuit(int num_qubits, int num_clbits = 0);

    int numQubits() const { return num_qubits_; }
    int numClbits() const { return num_clbits_; }
    const std::vector<Instruction>& instructions() const { return instrs_; }
    size_t size() const { return instrs_.size(); }

    /** @name Single-qubit gates */
    ///@{
    void id(int q);
    void x(int q);
    void y(int q);
    void z(int q);
    void h(int q);
    void s(int q);
    void sdg(int q);
    void t(int q);
    void tdg(int q);
    void sx(int q);
    void rx(int q, double theta);
    void ry(int q, double theta);
    void rz(int q, double theta);
    void p(int q, double lambda);
    void u1(int q, double lambda);
    void u2(int q, double phi, double lambda);
    void u3(int q, double theta, double phi, double lambda);
    ///@}

    /** @name Two-qubit gates (control first where applicable) */
    ///@{
    void cx(int control, int target);
    void cy(int control, int target);
    void cz(int control, int target);
    void ch(int control, int target);
    void swap(int a, int b);
    void crz(int control, int target, double theta);
    void cp(int control, int target, double lambda);
    void cu3(int control, int target, double theta, double phi,
             double lambda);
    ///@}

    /** @name Three-qubit gates */
    ///@{
    void ccx(int c0, int c1, int target);
    void ccrz(int c0, int c1, int target, double theta);
    ///@}

    /**
     * Apply an arbitrary unitary over the listed qubits (qubits[0] is the
     * most significant bit of the local index).
     */
    void unitary(const CMatrix& u, const std::vector<int>& qubits,
                 const std::string& name = "unitary");

    /** Measure qubit q into classical bit c. */
    void measure(int q, int c);

    /** Measure qubit q into classical bit q (requires enough clbits). */
    void measureAll();

    /** Reset qubit q to |0>. */
    void reset(int q);

    /** Insert an optimization barrier across all qubits. */
    void barrier();

    /** Append a pre-built instruction (validated). */
    void append(Instruction instr);

    /**
     * Append all instructions of `other`, relocating its qubit i to
     * qubit_map[i] and classical bit j to clbit_map[j].
     */
    void compose(const QuantumCircuit& other,
                 const std::vector<int>& qubit_map,
                 const std::vector<int>& clbit_map = {});

    /**
     * Unitary inverse: reversed instruction order with daggered gates.
     * Rejects circuits containing measurements or resets.
     */
    QuantumCircuit inverse() const;

    /** @name Cost metrics (as-written, i.e. before basis lowering) */
    ///@{
    /** Count instructions with the exact gate name. */
    int countGates(const std::string& name) const;
    /** Count CX gates specifically. */
    int countCx() const;
    /** Count gates touching >= 2 qubits. */
    int countMultiQubit() const;
    /** Count single-qubit gates (id/barrier excluded). */
    int countSingleQubit() const;
    /** Count measurement instructions. */
    int countMeasure() const;
    /** Circuit depth over qubits and classical bits. */
    int depth() const;
    ///@}

    /** OpenQASM 2.0 export (named standard gates only). */
    std::string toQasm() const;

  private:
    void checkQubit(int q) const;
    void checkClbit(int c) const;
    void addStd(const std::string& name, std::vector<int> qubits,
                CMatrix matrix, std::vector<double> params = {});

    int num_qubits_;
    int num_clbits_;
    std::vector<Instruction> instrs_;
};

} // namespace qa

#endif // QA_CIRCUIT_CIRCUIT_HPP
