/**
 * @file
 * Standard gate matrices (Qiskit u1/u2/u3 conventions) and helpers for
 * building controlled variants.
 */
#ifndef QA_CIRCUIT_STDGATES_HPP
#define QA_CIRCUIT_STDGATES_HPP

#include "linalg/matrix.hpp"

namespace qa
{
namespace gates
{

CMatrix i();
CMatrix x();
CMatrix y();
CMatrix z();
CMatrix h();
CMatrix s();
CMatrix sdg();
CMatrix t();
CMatrix tdg();
CMatrix sx();

/** Rotation about X: exp(-i theta X / 2). */
CMatrix rx(double theta);
/** Rotation about Y: exp(-i theta Y / 2). */
CMatrix ry(double theta);
/** Rotation about Z: exp(-i theta Z / 2). */
CMatrix rz(double theta);
/** Phase gate diag(1, e^{i lambda}) (Qiskit u1). */
CMatrix p(double lambda);
/** Qiskit u2(phi, lambda) = u3(pi/2, phi, lambda). */
CMatrix u2(double phi, double lambda);
/** Qiskit u3(theta, phi, lambda) general single-qubit unitary. */
CMatrix u3(double theta, double phi, double lambda);

CMatrix cx();
CMatrix cy();
CMatrix cz();
CMatrix ch();
CMatrix swap();
CMatrix ccx();
CMatrix crz(double theta);
CMatrix cp(double lambda);
CMatrix cu3(double theta, double phi, double lambda);

/**
 * Controlled version of an arbitrary unitary: the first `num_controls`
 * local qubits control `u` on the remaining ones
 * (|1...1><1...1| (x) u + rest (x) I).
 */
CMatrix controlled(const CMatrix& u, int num_controls = 1);

/**
 * Like controlled(), but control i is an *open* control (fires on |0>)
 * when bit i of `open_mask` is set (bit 0 = first control).
 */
CMatrix controlledOpen(const CMatrix& u, int num_controls,
                       unsigned open_mask);

} // namespace gates
} // namespace qa

#endif // QA_CIRCUIT_STDGATES_HPP
