#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Source position of a statement, rendered as "line L, col C". */
struct Loc
{
    int line = 0;
    int col = 0;

    std::string
    str() const
    {
        std::ostringstream oss;
        oss << "line " << line << ", col " << col;
        return oss.str();
    }
};

/**
 * Parse a non-negative integer token. Rejects empty, non-digit, and
 * overflowing tokens with a positioned kQasmSyntax diagnostic instead of
 * letting std::stoi throw (or worse, silently accept trailing junk like
 * "3x" and corrupt indices downstream).
 */
int
parseIndexToken(const std::string& token, const Loc& loc,
                const std::string& what)
{
    QA_REQUIRE_CODE(!token.empty(), ErrorCode::kQasmSyntax,
                    loc.str() + ": missing " + what);
    long value = 0;
    for (char c : token) {
        QA_REQUIRE_CODE(std::isdigit(static_cast<unsigned char>(c)),
                        ErrorCode::kQasmSyntax,
                        loc.str() + ": malformed " + what + " '" + token +
                            "'");
        value = value * 10 + (c - '0');
        QA_REQUIRE_CODE(value <= 1000000, ErrorCode::kQasmSyntax,
                        loc.str() + ": " + what + " '" + token +
                            "' is out of range");
    }
    return int(value);
}

/** Recursive-descent evaluator for gate-parameter expressions. */
class ExprParser
{
  public:
    ExprParser(const std::string& text, const Loc& loc)
        : text_(text), loc_(loc)
    {}

    double
    parse()
    {
        const double value = parseSum();
        skipSpace();
        QA_REQUIRE_CODE(pos_ == text_.size(), ErrorCode::kQasmSyntax,
                        loc_.str() +
                            ": trailing characters in expression: '" +
                            text_ + "'");
        return value;
    }

  private:
    double
    parseSum()
    {
        double value = parseProduct();
        for (;;) {
            skipSpace();
            if (consume('+')) {
                value += parseProduct();
            } else if (consume('-')) {
                value -= parseProduct();
            } else {
                return value;
            }
        }
    }

    double
    parseProduct()
    {
        double value = parseUnary();
        for (;;) {
            skipSpace();
            if (consume('*')) {
                value *= parseUnary();
            } else if (consume('/')) {
                const double rhs = parseUnary();
                QA_REQUIRE_CODE(rhs != 0.0, ErrorCode::kQasmSyntax,
                                loc_.str() +
                                    ": division by zero in expression");
                value /= rhs;
            } else {
                return value;
            }
        }
    }

    double
    parseUnary()
    {
        skipSpace();
        if (consume('-')) return -parseUnary();
        if (consume('+')) return parseUnary();
        return parseAtom();
    }

    double
    parseAtom()
    {
        skipSpace();
        if (consume('(')) {
            const double value = parseSum();
            skipSpace();
            QA_REQUIRE_CODE(consume(')'), ErrorCode::kQasmSyntax,
                            loc_.str() + ": missing ')' in expression");
            return value;
        }
        if (pos_ < text_.size() &&
            (std::isalpha(static_cast<unsigned char>(text_[pos_])))) {
            std::string name;
            while (pos_ < text_.size() &&
                   std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
                name.push_back(text_[pos_++]);
            }
            QA_REQUIRE_CODE(name == "pi", ErrorCode::kQasmSyntax,
                            loc_.str() + ": unknown identifier '" + name +
                                "' in expression");
            return M_PI;
        }
        size_t digits = 0;
        double value = 0.0;
        try {
            value = std::stod(text_.substr(pos_), &digits);
        } catch (const std::exception&) {
            QA_FAIL_CODE(ErrorCode::kQasmSyntax,
                         loc_.str() + ": expected number in expression '" +
                             text_ + "' at offset " + std::to_string(pos_));
        }
        QA_REQUIRE_CODE(digits > 0, ErrorCode::kQasmSyntax,
                        loc_.str() + ": expected number in expression");
        pos_ += digits;
        return value;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    const std::string& text_;
    Loc loc_;
    size_t pos_ = 0;
};

/** A named register with its flattened base offset. */
struct Register
{
    int base = 0;
    int size = 0;
};

/** One parsed statement with its source position. */
struct Statement
{
    std::string text;
    Loc loc;
};

/** Strip // comments and split on ';', tracking line/column. */
std::vector<Statement>
tokenizeStatements(const std::string& source)
{
    std::vector<Statement> statements;
    std::string current;
    int line = 1, col = 1;
    Loc statement_loc{1, 1};
    for (size_t i = 0; i < source.size(); ++i, ++col) {
        if (source[i] == '/' && i + 1 < source.size() &&
            source[i + 1] == '/') {
            while (i < source.size() && source[i] != '\n') ++i;
            ++line;
            col = 0;
            continue;
        }
        if (source[i] == '\n') {
            ++line;
            col = 0;
            if (current.empty()) {
                // Next statement starts on the new line at the earliest.
                statement_loc = {line, 1};
            } else {
                current.push_back(' ');
            }
            continue;
        }
        if (source[i] == ';') {
            statements.push_back({current, statement_loc});
            current.clear();
            statement_loc = {line, col + 1};
            continue;
        }
        if (current.empty() &&
            std::isspace(static_cast<unsigned char>(source[i]))) {
            statement_loc = {line, col + 1};
            continue;
        }
        current.push_back(source[i]);
    }
    // Trailing non-statement text must be whitespace.
    for (char c : current) {
        QA_REQUIRE_CODE(std::isspace(static_cast<unsigned char>(c)),
                        ErrorCode::kQasmSyntax,
                        statement_loc.str() +
                            ": unterminated statement at end of input");
    }
    return statements;
}

std::string
trim(const std::string& s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

/** Split "a, b, c" at top level (no nested commas in qasm operands). */
std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> parts;
    std::string current;
    int depth = 0;
    for (char c : s) {
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (c == ',' && depth == 0) {
            parts.push_back(trim(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!trim(current).empty()) parts.push_back(trim(current));
    return parts;
}

} // namespace

QuantumCircuit
parseQasm(const std::string& source, std::vector<QasmPos>* positions)
{
    if (positions != nullptr) positions->clear();
    const std::vector<Statement> statements = tokenizeStatements(source);

    // First pass: collect register declarations to size the circuit.
    std::map<std::string, Register> qregs, cregs;
    int total_qubits = 0, total_clbits = 0;
    auto parseDecl = [](const std::string& body, const Loc& loc,
                        std::string* name, int* size) {
        // body: "name[size]".
        const size_t lb = body.find('[');
        const size_t rb = body.find(']');
        QA_REQUIRE_CODE(lb != std::string::npos &&
                            rb != std::string::npos && rb > lb,
                        ErrorCode::kQasmSyntax,
                        loc.str() + ": malformed register declaration: " +
                            body);
        *name = trim(body.substr(0, lb));
        QA_REQUIRE_CODE(!name->empty(), ErrorCode::kQasmSyntax,
                        loc.str() + ": register declaration needs a name");
        *size = parseIndexToken(trim(body.substr(lb + 1, rb - lb - 1)),
                                loc, "register size");
        QA_REQUIRE_CODE(*size > 0, ErrorCode::kQasmSyntax,
                        loc.str() + ": register size must be positive");
    };
    for (const Statement& st : statements) {
        const std::string text = trim(st.text);
        if (text.rfind("qreg", 0) == 0) {
            std::string name;
            int size = 0;
            parseDecl(trim(text.substr(4)), st.loc, &name, &size);
            QA_REQUIRE_CODE(!qregs.count(name), ErrorCode::kQasmSyntax,
                            st.loc.str() + ": duplicate qreg " + name);
            qregs[name] = {total_qubits, size};
            total_qubits += size;
        } else if (text.rfind("creg", 0) == 0) {
            std::string name;
            int size = 0;
            parseDecl(trim(text.substr(4)), st.loc, &name, &size);
            QA_REQUIRE_CODE(!cregs.count(name), ErrorCode::kQasmSyntax,
                            st.loc.str() + ": duplicate creg " + name);
            cregs[name] = {total_clbits, size};
            total_clbits += size;
        }
    }
    QA_REQUIRE_CODE(total_qubits > 0, ErrorCode::kQasmSyntax,
                    "QASM program declares no qubits");
    QuantumCircuit circuit(total_qubits, total_clbits);

    auto resolve = [](const std::map<std::string, Register>& regs,
                      const std::string& operand, const Loc& loc,
                      const char* reg_kind) {
        const size_t lb = operand.find('[');
        const size_t rb = operand.find(']');
        QA_REQUIRE_CODE(lb != std::string::npos && rb != std::string::npos &&
                            rb > lb && rb == operand.size() - 1,
                        ErrorCode::kQasmSyntax,
                        loc.str() +
                            ": register-wide or malformed operand '" +
                            operand + "' (expected name[index])");
        const std::string name = trim(operand.substr(0, lb));
        const int index = parseIndexToken(
            trim(operand.substr(lb + 1, rb - lb - 1)), loc,
            std::string(reg_kind) + " index");
        auto it = regs.find(name);
        QA_REQUIRE_CODE(it != regs.end(), ErrorCode::kQasmSyntax,
                        loc.str() + ": unknown " + reg_kind + " register " +
                            name);
        QA_REQUIRE_CODE(
            index >= 0 && index < it->second.size, ErrorCode::kQasmSyntax,
            loc.str() + ": index " + std::to_string(index) +
                " out of range for " + name + "[" +
                std::to_string(it->second.size) + "]");
        return it->second.base + index;
    };

    QasmPos last_pos{1, 1};
    for (const Statement& st : statements) {
        // Instructions appended while handling the previous statement
        // carry its position (a statement may use `continue` below, so
        // the sync happens at the top of the next iteration).
        if (positions != nullptr) {
            positions->resize(circuit.size(), last_pos);
        }
        last_pos = QasmPos{st.loc.line, st.loc.col};
        const std::string text = trim(st.text);
        if (text.empty()) continue;
        if (text.rfind("OPENQASM", 0) == 0 ||
            text.rfind("include", 0) == 0 || text.rfind("qreg", 0) == 0 ||
            text.rfind("creg", 0) == 0) {
            continue;
        }
        if (text.rfind("barrier", 0) == 0) {
            circuit.barrier();
            continue;
        }
        if (text.rfind("measure", 0) == 0) {
            const size_t arrow = text.find("->");
            QA_REQUIRE_CODE(arrow != std::string::npos,
                            ErrorCode::kQasmSyntax,
                            st.loc.str() + ": measure needs '->'");
            const int q = resolve(qregs, trim(text.substr(7, arrow - 7)),
                                  st.loc, "qubit");
            const int c = resolve(cregs, trim(text.substr(arrow + 2)),
                                  st.loc, "clbit");
            circuit.measure(q, c);
            continue;
        }
        if (text.rfind("reset", 0) == 0) {
            circuit.reset(
                resolve(qregs, trim(text.substr(5)), st.loc, "qubit"));
            continue;
        }

        // Gate statement: name[(params)] operand{, operand}.
        size_t head_end = 0;
        while (head_end < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[head_end])) ||
                text[head_end] == '_')) {
            ++head_end;
        }
        const std::string name = text.substr(0, head_end);
        QA_REQUIRE_CODE(!name.empty(), ErrorCode::kQasmSyntax,
                        st.loc.str() + ": expected a gate name, found '" +
                            text + "'");
        std::string rest = trim(text.substr(head_end));

        std::vector<double> params;
        if (!rest.empty() && rest[0] == '(') {
            int depth = 0;
            size_t close = 0;
            for (size_t i = 0; i < rest.size(); ++i) {
                if (rest[i] == '(') ++depth;
                if (rest[i] == ')') {
                    --depth;
                    if (depth == 0) {
                        close = i;
                        break;
                    }
                }
            }
            QA_REQUIRE_CODE(close > 0, ErrorCode::kQasmSyntax,
                            st.loc.str() + ": unbalanced parameter list");
            for (const std::string& expr :
                 splitCommas(rest.substr(1, close - 1))) {
                params.push_back(ExprParser(expr, st.loc).parse());
            }
            rest = trim(rest.substr(close + 1));
        }
        std::vector<int> qubits;
        for (const std::string& operand : splitCommas(rest)) {
            qubits.push_back(resolve(qregs, operand, st.loc, "qubit"));
        }
        std::set<int> distinct(qubits.begin(), qubits.end());
        QA_REQUIRE_CODE(distinct.size() == qubits.size(),
                        ErrorCode::kQasmSyntax,
                        st.loc.str() + ": " + name +
                            " names the same qubit twice");

        auto needQubits = [&](size_t n) {
            QA_REQUIRE_CODE(qubits.size() == n, ErrorCode::kQasmSyntax,
                            st.loc.str() + ": " + name + " expects " +
                                std::to_string(n) + " qubits, got " +
                                std::to_string(qubits.size()));
        };
        auto needParams = [&](size_t n) {
            QA_REQUIRE_CODE(params.size() == n, ErrorCode::kQasmSyntax,
                            st.loc.str() + ": " + name + " expects " +
                                std::to_string(n) + " parameters, got " +
                                std::to_string(params.size()));
        };

        if (name == "id") { needQubits(1); circuit.id(qubits[0]); }
        else if (name == "x") { needQubits(1); circuit.x(qubits[0]); }
        else if (name == "y") { needQubits(1); circuit.y(qubits[0]); }
        else if (name == "z") { needQubits(1); circuit.z(qubits[0]); }
        else if (name == "h") { needQubits(1); circuit.h(qubits[0]); }
        else if (name == "s") { needQubits(1); circuit.s(qubits[0]); }
        else if (name == "sdg") { needQubits(1); circuit.sdg(qubits[0]); }
        else if (name == "t") { needQubits(1); circuit.t(qubits[0]); }
        else if (name == "tdg") { needQubits(1); circuit.tdg(qubits[0]); }
        else if (name == "sx") { needQubits(1); circuit.sx(qubits[0]); }
        else if (name == "rx") {
            needQubits(1);
            needParams(1);
            circuit.rx(qubits[0], params[0]);
        } else if (name == "ry") {
            needQubits(1);
            needParams(1);
            circuit.ry(qubits[0], params[0]);
        } else if (name == "rz") {
            needQubits(1);
            needParams(1);
            circuit.rz(qubits[0], params[0]);
        } else if (name == "p" || name == "u1") {
            needQubits(1);
            needParams(1);
            circuit.p(qubits[0], params[0]);
        } else if (name == "u2") {
            needQubits(1);
            needParams(2);
            circuit.u2(qubits[0], params[0], params[1]);
        } else if (name == "u3" || name == "u") {
            needQubits(1);
            needParams(3);
            circuit.u3(qubits[0], params[0], params[1], params[2]);
        } else if (name == "cx" || name == "CX") {
            needQubits(2);
            circuit.cx(qubits[0], qubits[1]);
        } else if (name == "cy") {
            needQubits(2);
            circuit.cy(qubits[0], qubits[1]);
        } else if (name == "cz") {
            needQubits(2);
            circuit.cz(qubits[0], qubits[1]);
        } else if (name == "ch") {
            needQubits(2);
            circuit.ch(qubits[0], qubits[1]);
        } else if (name == "swap") {
            needQubits(2);
            circuit.swap(qubits[0], qubits[1]);
        } else if (name == "crz") {
            needQubits(2);
            needParams(1);
            circuit.crz(qubits[0], qubits[1], params[0]);
        } else if (name == "cp" || name == "cu1") {
            needQubits(2);
            needParams(1);
            circuit.cp(qubits[0], qubits[1], params[0]);
        } else if (name == "cu3") {
            needQubits(2);
            needParams(3);
            circuit.cu3(qubits[0], qubits[1], params[0], params[1],
                        params[2]);
        } else if (name == "ccx") {
            needQubits(3);
            circuit.ccx(qubits[0], qubits[1], qubits[2]);
        } else if (name == "ccrz") {
            // qassert extension emitted by toQasm (see circuit.cpp).
            needQubits(3);
            needParams(1);
            circuit.ccrz(qubits[0], qubits[1], qubits[2], params[0]);
        } else {
            QA_FAIL_CODE(ErrorCode::kQasmSyntax,
                         st.loc.str() + ": unsupported gate '" + name +
                             "'");
        }
    }
    if (positions != nullptr) positions->resize(circuit.size(), last_pos);
    return circuit;
}

} // namespace qa
