#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Recursive-descent evaluator for gate-parameter expressions. */
class ExprParser
{
  public:
    explicit ExprParser(const std::string& text) : text_(text) {}

    double
    parse()
    {
        const double value = parseSum();
        skipSpace();
        QA_REQUIRE(pos_ == text_.size(),
                   "trailing characters in expression: '" + text_ + "'");
        return value;
    }

  private:
    double
    parseSum()
    {
        double value = parseProduct();
        for (;;) {
            skipSpace();
            if (consume('+')) {
                value += parseProduct();
            } else if (consume('-')) {
                value -= parseProduct();
            } else {
                return value;
            }
        }
    }

    double
    parseProduct()
    {
        double value = parseUnary();
        for (;;) {
            skipSpace();
            if (consume('*')) {
                value *= parseUnary();
            } else if (consume('/')) {
                const double rhs = parseUnary();
                QA_REQUIRE(rhs != 0.0, "division by zero in expression");
                value /= rhs;
            } else {
                return value;
            }
        }
    }

    double
    parseUnary()
    {
        skipSpace();
        if (consume('-')) return -parseUnary();
        if (consume('+')) return parseUnary();
        return parseAtom();
    }

    double
    parseAtom()
    {
        skipSpace();
        if (consume('(')) {
            const double value = parseSum();
            skipSpace();
            QA_REQUIRE(consume(')'), "missing ')' in expression");
            return value;
        }
        if (pos_ < text_.size() &&
            (std::isalpha(static_cast<unsigned char>(text_[pos_])))) {
            std::string name;
            while (pos_ < text_.size() &&
                   std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
                name.push_back(text_[pos_++]);
            }
            QA_REQUIRE(name == "pi", "unknown identifier '" + name +
                                         "' in expression");
            return M_PI;
        }
        size_t digits = 0;
        const double value =
            std::stod(text_.substr(pos_), &digits);
        QA_REQUIRE(digits > 0, "expected number in expression");
        pos_ += digits;
        return value;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    const std::string& text_;
    size_t pos_ = 0;
};

/** A named register with its flattened base offset. */
struct Register
{
    int base = 0;
    int size = 0;
};

/** One parsed statement, split into head / args. */
struct Statement
{
    std::string text;
    int line = 0;
};

/** Strip // comments and split on ';'. */
std::vector<Statement>
tokenizeStatements(const std::string& source)
{
    std::vector<Statement> statements;
    std::string current;
    int line = 1;
    int statement_line = 1;
    for (size_t i = 0; i < source.size(); ++i) {
        if (source[i] == '/' && i + 1 < source.size() &&
            source[i + 1] == '/') {
            while (i < source.size() && source[i] != '\n') ++i;
            ++line;
            continue;
        }
        if (source[i] == '\n') {
            ++line;
            current.push_back(' ');
            continue;
        }
        if (source[i] == ';') {
            statements.push_back({current, statement_line});
            current.clear();
            statement_line = line;
            continue;
        }
        if (current.empty() &&
            std::isspace(static_cast<unsigned char>(source[i]))) {
            statement_line = line;
            continue;
        }
        current.push_back(source[i]);
    }
    // Trailing non-statement text must be whitespace.
    for (char c : current) {
        QA_REQUIRE(std::isspace(static_cast<unsigned char>(c)),
                   "unterminated statement at end of input");
    }
    return statements;
}

std::string
trim(const std::string& s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

/** Split "a, b, c" at top level (no nested commas in qasm operands). */
std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> parts;
    std::string current;
    int depth = 0;
    for (char c : s) {
        if (c == '(') ++depth;
        if (c == ')') --depth;
        if (c == ',' && depth == 0) {
            parts.push_back(trim(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!trim(current).empty()) parts.push_back(trim(current));
    return parts;
}

} // namespace

QuantumCircuit
parseQasm(const std::string& source)
{
    const std::vector<Statement> statements = tokenizeStatements(source);

    // First pass: collect register declarations to size the circuit.
    std::map<std::string, Register> qregs, cregs;
    int total_qubits = 0, total_clbits = 0;
    auto parseDecl = [](const std::string& body, std::string* name,
                        int* size) {
        // body: "name[size]".
        const size_t lb = body.find('[');
        const size_t rb = body.find(']');
        QA_REQUIRE(lb != std::string::npos && rb != std::string::npos &&
                       rb > lb,
                   "malformed register declaration: " + body);
        *name = trim(body.substr(0, lb));
        *size = std::stoi(body.substr(lb + 1, rb - lb - 1));
        QA_REQUIRE(*size > 0, "register size must be positive");
    };
    for (const Statement& st : statements) {
        const std::string text = trim(st.text);
        if (text.rfind("qreg", 0) == 0) {
            std::string name;
            int size = 0;
            parseDecl(trim(text.substr(4)), &name, &size);
            QA_REQUIRE(!qregs.count(name), "duplicate qreg " + name);
            qregs[name] = {total_qubits, size};
            total_qubits += size;
        } else if (text.rfind("creg", 0) == 0) {
            std::string name;
            int size = 0;
            parseDecl(trim(text.substr(4)), &name, &size);
            QA_REQUIRE(!cregs.count(name), "duplicate creg " + name);
            cregs[name] = {total_clbits, size};
            total_clbits += size;
        }
    }
    QA_REQUIRE(total_qubits > 0, "QASM program declares no qubits");
    QuantumCircuit circuit(total_qubits, total_clbits);

    auto resolve = [](const std::map<std::string, Register>& regs,
                      const std::string& operand, int line) {
        const size_t lb = operand.find('[');
        const size_t rb = operand.find(']');
        QA_REQUIRE(lb != std::string::npos && rb != std::string::npos,
                   "line " + std::to_string(line) +
                       ": register-wide operands are not supported: " +
                       operand);
        const std::string name = trim(operand.substr(0, lb));
        const int index = std::stoi(operand.substr(lb + 1, rb - lb - 1));
        auto it = regs.find(name);
        QA_REQUIRE(it != regs.end(), "line " + std::to_string(line) +
                                         ": unknown register " + name);
        QA_REQUIRE(index >= 0 && index < it->second.size,
                   "line " + std::to_string(line) +
                       ": index out of range for " + name);
        return it->second.base + index;
    };

    for (const Statement& st : statements) {
        const std::string text = trim(st.text);
        if (text.empty()) continue;
        if (text.rfind("OPENQASM", 0) == 0 ||
            text.rfind("include", 0) == 0 || text.rfind("qreg", 0) == 0 ||
            text.rfind("creg", 0) == 0) {
            continue;
        }
        if (text.rfind("barrier", 0) == 0) {
            circuit.barrier();
            continue;
        }
        if (text.rfind("measure", 0) == 0) {
            const size_t arrow = text.find("->");
            QA_REQUIRE(arrow != std::string::npos,
                       "line " + std::to_string(st.line) +
                           ": measure needs '->'");
            const int q = resolve(qregs, trim(text.substr(7, arrow - 7)),
                                  st.line);
            const int c =
                resolve(cregs, trim(text.substr(arrow + 2)), st.line);
            circuit.measure(q, c);
            continue;
        }
        if (text.rfind("reset", 0) == 0) {
            circuit.reset(resolve(qregs, trim(text.substr(5)), st.line));
            continue;
        }

        // Gate statement: name[(params)] operand{, operand}.
        size_t head_end = 0;
        while (head_end < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[head_end])) ||
                text[head_end] == '_')) {
            ++head_end;
        }
        const std::string name = text.substr(0, head_end);
        std::string rest = trim(text.substr(head_end));

        std::vector<double> params;
        if (!rest.empty() && rest[0] == '(') {
            int depth = 0;
            size_t close = 0;
            for (size_t i = 0; i < rest.size(); ++i) {
                if (rest[i] == '(') ++depth;
                if (rest[i] == ')') {
                    --depth;
                    if (depth == 0) {
                        close = i;
                        break;
                    }
                }
            }
            QA_REQUIRE(close > 0, "line " + std::to_string(st.line) +
                                      ": unbalanced parameter list");
            for (const std::string& expr :
                 splitCommas(rest.substr(1, close - 1))) {
                params.push_back(ExprParser(expr).parse());
            }
            rest = trim(rest.substr(close + 1));
        }
        std::vector<int> qubits;
        for (const std::string& operand : splitCommas(rest)) {
            qubits.push_back(resolve(qregs, operand, st.line));
        }

        auto needQubits = [&](size_t n) {
            QA_REQUIRE(qubits.size() == n,
                       "line " + std::to_string(st.line) + ": " + name +
                           " expects " + std::to_string(n) + " qubits");
        };
        auto needParams = [&](size_t n) {
            QA_REQUIRE(params.size() == n,
                       "line " + std::to_string(st.line) + ": " + name +
                           " expects " + std::to_string(n) +
                           " parameters");
        };

        if (name == "id") { needQubits(1); circuit.id(qubits[0]); }
        else if (name == "x") { needQubits(1); circuit.x(qubits[0]); }
        else if (name == "y") { needQubits(1); circuit.y(qubits[0]); }
        else if (name == "z") { needQubits(1); circuit.z(qubits[0]); }
        else if (name == "h") { needQubits(1); circuit.h(qubits[0]); }
        else if (name == "s") { needQubits(1); circuit.s(qubits[0]); }
        else if (name == "sdg") { needQubits(1); circuit.sdg(qubits[0]); }
        else if (name == "t") { needQubits(1); circuit.t(qubits[0]); }
        else if (name == "tdg") { needQubits(1); circuit.tdg(qubits[0]); }
        else if (name == "sx") { needQubits(1); circuit.sx(qubits[0]); }
        else if (name == "rx") {
            needQubits(1);
            needParams(1);
            circuit.rx(qubits[0], params[0]);
        } else if (name == "ry") {
            needQubits(1);
            needParams(1);
            circuit.ry(qubits[0], params[0]);
        } else if (name == "rz") {
            needQubits(1);
            needParams(1);
            circuit.rz(qubits[0], params[0]);
        } else if (name == "p" || name == "u1") {
            needQubits(1);
            needParams(1);
            circuit.p(qubits[0], params[0]);
        } else if (name == "u2") {
            needQubits(1);
            needParams(2);
            circuit.u2(qubits[0], params[0], params[1]);
        } else if (name == "u3" || name == "u") {
            needQubits(1);
            needParams(3);
            circuit.u3(qubits[0], params[0], params[1], params[2]);
        } else if (name == "cx" || name == "CX") {
            needQubits(2);
            circuit.cx(qubits[0], qubits[1]);
        } else if (name == "cy") {
            needQubits(2);
            circuit.cy(qubits[0], qubits[1]);
        } else if (name == "cz") {
            needQubits(2);
            circuit.cz(qubits[0], qubits[1]);
        } else if (name == "ch") {
            needQubits(2);
            circuit.ch(qubits[0], qubits[1]);
        } else if (name == "swap") {
            needQubits(2);
            circuit.swap(qubits[0], qubits[1]);
        } else if (name == "crz") {
            needQubits(2);
            needParams(1);
            circuit.crz(qubits[0], qubits[1], params[0]);
        } else if (name == "cp" || name == "cu1") {
            needQubits(2);
            needParams(1);
            circuit.cp(qubits[0], qubits[1], params[0]);
        } else if (name == "cu3") {
            needQubits(2);
            needParams(3);
            circuit.cu3(qubits[0], qubits[1], params[0], params[1],
                        params[2]);
        } else if (name == "ccx") {
            needQubits(3);
            circuit.ccx(qubits[0], qubits[1], qubits[2]);
        } else {
            QA_FAIL("line " + std::to_string(st.line) +
                    ": unsupported gate '" + name + "'");
        }
    }
    return circuit;
}

} // namespace qa
