/**
 * @file
 * OpenQASM 2.0 importer. Parses the subset qassert's exporter emits
 * (plus common aliases), so circuits round-trip through text and
 * programs written for other toolchains can be asserted directly.
 *
 * Supported: OPENQASM header, include (ignored), one or more qreg/creg
 * declarations (flattened in declaration order), the standard gate set
 * (id x y z h s sdg t tdg sx rx ry rz p u1 u2 u3 cx cy cz ch swap crz
 * cp cu1 cu3 ccx) plus the qassert extension ccrz, barrier, reset, and
 * measure. Parameter expressions support numbers, pi, + - * / and
 * parentheses.
 */
#ifndef QA_CIRCUIT_QASM_HPP
#define QA_CIRCUIT_QASM_HPP

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qa
{

/** Source position (1-based) of a parsed QASM statement. */
struct QasmPos
{
    int line = 0;
    int col = 0;
};

/**
 * Parse an OpenQASM 2.0 program. Throws UserError with line context.
 * When `positions` is non-null it receives one QasmPos per emitted
 * instruction (parallel to circuit.instructions()), pointing at the
 * source statement that produced it — the assertion compiler uses this
 * to anchor kUnsupportedAssertion diagnostics to the submitted text.
 */
QuantumCircuit parseQasm(const std::string& source,
                         std::vector<QasmPos>* positions = nullptr);

} // namespace qa

#endif // QA_CIRCUIT_QASM_HPP
