/**
 * @file
 * Canonical structural fingerprint of a QuantumCircuit.
 *
 * Two circuits built through any path (builder calls, parseQasm, compose)
 * hash equal exactly when they have the same register sizes and the same
 * instruction sequence (type, name, operand qubits, classical bit,
 * parameters, and gate matrix). The matrix is included so opaque
 * "unitary" instructions — whose name and empty parameter list carry no
 * information — are distinguished by content.
 *
 * The serve layer keys its cross-job result cache on this fingerprint;
 * see common/hash.hpp for the collision-resistance rationale.
 */
#ifndef QA_CIRCUIT_HASH_HPP
#define QA_CIRCUIT_HASH_HPP

#include "circuit/circuit.hpp"
#include "common/hash.hpp"

namespace qa
{

/** Absorb the full structure of `circuit` into `stream`. */
void absorbCircuit(HashStream& stream, const QuantumCircuit& circuit);

/** Standalone structural fingerprint of a circuit. */
Hash128 circuitHash(const QuantumCircuit& circuit);

} // namespace qa

#endif // QA_CIRCUIT_HASH_HPP
