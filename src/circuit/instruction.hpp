/**
 * @file
 * Circuit instruction model.
 *
 * Every gate instruction carries its full unitary over the qubits it
 * touches (local ordering: qubits[0] is the most significant bit of the
 * local index). This keeps the simulators generic -- they never need a
 * gate-name switch -- while names and params are preserved for counting,
 * transpilation, and QASM export.
 */
#ifndef QA_CIRCUIT_INSTRUCTION_HPP
#define QA_CIRCUIT_INSTRUCTION_HPP

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace qa
{

/** Instruction category. */
enum class OpType
{
    kGate,    ///< Unitary gate application.
    kMeasure, ///< Computational-basis measurement into a classical bit.
    kReset,   ///< Reset a qubit to |0>.
    kBarrier  ///< Optimization barrier; no semantic effect.
};

/** One circuit instruction. */
struct Instruction
{
    OpType type = OpType::kGate;

    /** Gate name, e.g. "h", "cx", "u3", "unitary". */
    std::string name;

    /** Qubits acted on; controls (if any) come first by convention. */
    std::vector<int> qubits;

    /** Rotation angles or other gate parameters. */
    std::vector<double> params;

    /** Unitary over `qubits` (dimension 2^qubits.size()) for kGate. */
    CMatrix matrix;

    /** Destination classical bit for kMeasure. */
    int cbit = -1;

    /** True for unitary gate instructions. */
    bool isGate() const { return type == OpType::kGate; }

    /** Number of qubits the instruction touches. */
    size_t arity() const { return qubits.size(); }
};

} // namespace qa

#endif // QA_CIRCUIT_INSTRUCTION_HPP
