#include "circuit/circuit.hpp"

#include <algorithm>
#include <iomanip>
#include <cmath>
#include <set>
#include <sstream>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"

namespace qa
{

QuantumCircuit::QuantumCircuit(int num_qubits, int num_clbits)
    : num_qubits_(num_qubits), num_clbits_(num_clbits)
{
    QA_REQUIRE(num_qubits >= 1, "circuit needs at least one qubit");
    QA_REQUIRE(num_clbits >= 0, "negative classical register size");
}

void
QuantumCircuit::checkQubit(int q) const
{
    QA_REQUIRE(q >= 0 && q < num_qubits_, "qubit index out of range");
}

void
QuantumCircuit::checkClbit(int c) const
{
    QA_REQUIRE(c >= 0 && c < num_clbits_, "classical bit index out of range");
}

void
QuantumCircuit::addStd(const std::string& name, std::vector<int> qubits,
                       CMatrix matrix, std::vector<double> params)
{
    Instruction instr;
    instr.type = OpType::kGate;
    instr.name = name;
    instr.qubits = std::move(qubits);
    instr.params = std::move(params);
    instr.matrix = std::move(matrix);
    append(std::move(instr));
}

void QuantumCircuit::id(int q) { addStd("id", {q}, gates::i()); }
void QuantumCircuit::x(int q) { addStd("x", {q}, gates::x()); }
void QuantumCircuit::y(int q) { addStd("y", {q}, gates::y()); }
void QuantumCircuit::z(int q) { addStd("z", {q}, gates::z()); }
void QuantumCircuit::h(int q) { addStd("h", {q}, gates::h()); }
void QuantumCircuit::s(int q) { addStd("s", {q}, gates::s()); }
void QuantumCircuit::sdg(int q) { addStd("sdg", {q}, gates::sdg()); }
void QuantumCircuit::t(int q) { addStd("t", {q}, gates::t()); }
void QuantumCircuit::tdg(int q) { addStd("tdg", {q}, gates::tdg()); }
void QuantumCircuit::sx(int q) { addStd("sx", {q}, gates::sx()); }

void
QuantumCircuit::rx(int q, double theta)
{
    addStd("rx", {q}, gates::rx(theta), {theta});
}

void
QuantumCircuit::ry(int q, double theta)
{
    addStd("ry", {q}, gates::ry(theta), {theta});
}

void
QuantumCircuit::rz(int q, double theta)
{
    addStd("rz", {q}, gates::rz(theta), {theta});
}

void
QuantumCircuit::p(int q, double lambda)
{
    addStd("p", {q}, gates::p(lambda), {lambda});
}

void QuantumCircuit::u1(int q, double lambda) { p(q, lambda); }

void
QuantumCircuit::u2(int q, double phi, double lambda)
{
    addStd("u2", {q}, gates::u2(phi, lambda), {phi, lambda});
}

void
QuantumCircuit::u3(int q, double theta, double phi, double lambda)
{
    addStd("u3", {q}, gates::u3(theta, phi, lambda), {theta, phi, lambda});
}

void
QuantumCircuit::cx(int control, int target)
{
    addStd("cx", {control, target}, gates::cx());
}

void
QuantumCircuit::cy(int control, int target)
{
    addStd("cy", {control, target}, gates::cy());
}

void
QuantumCircuit::cz(int control, int target)
{
    addStd("cz", {control, target}, gates::cz());
}

void
QuantumCircuit::ch(int control, int target)
{
    addStd("ch", {control, target}, gates::ch());
}

void
QuantumCircuit::swap(int a, int b)
{
    addStd("swap", {a, b}, gates::swap());
}

void
QuantumCircuit::crz(int control, int target, double theta)
{
    addStd("crz", {control, target}, gates::crz(theta), {theta});
}

void
QuantumCircuit::cp(int control, int target, double lambda)
{
    addStd("cp", {control, target}, gates::cp(lambda), {lambda});
}

void
QuantumCircuit::cu3(int control, int target, double theta, double phi,
                    double lambda)
{
    addStd("cu3", {control, target}, gates::cu3(theta, phi, lambda),
           {theta, phi, lambda});
}

void
QuantumCircuit::ccx(int c0, int c1, int target)
{
    addStd("ccx", {c0, c1, target}, gates::ccx());
}

void
QuantumCircuit::ccrz(int c0, int c1, int target, double theta)
{
    addStd("ccrz", {c0, c1, target},
           gates::controlled(gates::rz(theta), 2), {theta});
}

void
QuantumCircuit::unitary(const CMatrix& u, const std::vector<int>& qubits,
                        const std::string& name)
{
    QA_REQUIRE(!qubits.empty(), "unitary needs target qubits");
    QA_REQUIRE(u.rows() == u.cols(), "unitary must be square");
    QA_REQUIRE(u.rows() == (size_t(1) << qubits.size()),
               "unitary dimension does not match qubit count");
    QA_REQUIRE(u.isUnitary(1e-7), "matrix is not unitary");
    addStd(name, qubits, u);
}

void
QuantumCircuit::measure(int q, int c)
{
    checkQubit(q);
    checkClbit(c);
    Instruction instr;
    instr.type = OpType::kMeasure;
    instr.name = "measure";
    instr.qubits = {q};
    instr.cbit = c;
    instrs_.push_back(std::move(instr));
}

void
QuantumCircuit::measureAll()
{
    QA_REQUIRE(num_clbits_ >= num_qubits_,
               "measureAll needs one classical bit per qubit");
    for (int q = 0; q < num_qubits_; ++q) measure(q, q);
}

void
QuantumCircuit::reset(int q)
{
    checkQubit(q);
    Instruction instr;
    instr.type = OpType::kReset;
    instr.name = "reset";
    instr.qubits = {q};
    instrs_.push_back(std::move(instr));
}

void
QuantumCircuit::barrier()
{
    Instruction instr;
    instr.type = OpType::kBarrier;
    instr.name = "barrier";
    for (int q = 0; q < num_qubits_; ++q) instr.qubits.push_back(q);
    instrs_.push_back(std::move(instr));
}

void
QuantumCircuit::append(Instruction instr)
{
    std::set<int> seen;
    for (int q : instr.qubits) {
        checkQubit(q);
        QA_REQUIRE(seen.insert(q).second, "duplicate qubit in instruction");
    }
    if (instr.type == OpType::kGate) {
        QA_REQUIRE(instr.matrix.rows() == (size_t(1) << instr.qubits.size()),
                   "gate matrix dimension mismatch");
    }
    if (instr.type == OpType::kMeasure) checkClbit(instr.cbit);
    instrs_.push_back(std::move(instr));
}

void
QuantumCircuit::compose(const QuantumCircuit& other,
                        const std::vector<int>& qubit_map,
                        const std::vector<int>& clbit_map)
{
    QA_REQUIRE(int(qubit_map.size()) == other.numQubits(),
               "compose qubit_map arity mismatch");
    if (!clbit_map.empty()) {
        QA_REQUIRE(int(clbit_map.size()) == other.numClbits(),
                   "compose clbit_map arity mismatch");
    }
    for (const Instruction& src : other.instrs_) {
        Instruction instr = src;
        for (int& q : instr.qubits) q = qubit_map[q];
        if (instr.type == OpType::kMeasure) {
            QA_REQUIRE(!clbit_map.empty(),
                       "compose of measuring circuit needs clbit_map");
            instr.cbit = clbit_map[instr.cbit];
        }
        if (instr.type == OpType::kBarrier) {
            // Re-span the barrier over this circuit's qubits.
            instr.qubits.clear();
            for (int q = 0; q < num_qubits_; ++q) instr.qubits.push_back(q);
        }
        append(std::move(instr));
    }
}

namespace
{

/** Inverse of a named gate instruction. */
Instruction
invertGate(const Instruction& g)
{
    Instruction out = g;
    out.matrix = g.matrix.dagger();

    static const std::set<std::string> self_inverse = {
        "id", "x", "y", "z", "h", "cx", "cy", "cz", "ch", "swap", "ccx"};
    if (self_inverse.count(g.name)) return out;

    auto negate_params = [&out]() {
        for (double& x : out.params) x = -x;
    };

    if (g.name == "s") { out.name = "sdg"; return out; }
    if (g.name == "sdg") { out.name = "s"; return out; }
    if (g.name == "t") { out.name = "tdg"; return out; }
    if (g.name == "tdg") { out.name = "t"; return out; }
    if (g.name == "rx" || g.name == "ry" || g.name == "rz" ||
        g.name == "p" || g.name == "crz" || g.name == "cp" ||
        g.name == "ccrz") {
        negate_params();
        return out;
    }
    if (g.name == "u3" || g.name == "cu3") {
        // u3(theta, phi, lambda)^-1 = u3(-theta, -lambda, -phi).
        out.params = {-g.params[0], -g.params[2], -g.params[1]};
        return out;
    }
    if (g.name == "u2") {
        // u2(phi, lambda) = u3(pi/2, phi, lambda).
        out.name = "u3";
        out.params = {-M_PI / 2, -g.params[1], -g.params[0]};
        return out;
    }
    // Unknown/opaque gate: keep the daggered matrix with a marker name.
    out.name = g.name + "_dg";
    return out;
}

} // namespace

QuantumCircuit
QuantumCircuit::inverse() const
{
    QuantumCircuit inv(num_qubits_, num_clbits_);
    for (auto it = instrs_.rbegin(); it != instrs_.rend(); ++it) {
        QA_REQUIRE(it->type == OpType::kGate || it->type == OpType::kBarrier,
                   "cannot invert measurements or resets");
        if (it->type == OpType::kBarrier) {
            inv.barrier();
        } else {
            inv.append(invertGate(*it));
        }
    }
    return inv;
}

int
QuantumCircuit::countGates(const std::string& name) const
{
    int count = 0;
    for (const Instruction& instr : instrs_) {
        if (instr.isGate() && instr.name == name) ++count;
    }
    return count;
}

int QuantumCircuit::countCx() const { return countGates("cx"); }

int
QuantumCircuit::countMultiQubit() const
{
    int count = 0;
    for (const Instruction& instr : instrs_) {
        if (instr.isGate() && instr.arity() >= 2) ++count;
    }
    return count;
}

int
QuantumCircuit::countSingleQubit() const
{
    int count = 0;
    for (const Instruction& instr : instrs_) {
        if (instr.isGate() && instr.arity() == 1 && instr.name != "id") {
            ++count;
        }
    }
    return count;
}

int
QuantumCircuit::countMeasure() const
{
    int count = 0;
    for (const Instruction& instr : instrs_) {
        if (instr.type == OpType::kMeasure) ++count;
    }
    return count;
}

int
QuantumCircuit::depth() const
{
    std::vector<int> qubit_front(num_qubits_, 0);
    std::vector<int> clbit_front(std::max(num_clbits_, 1), 0);
    int depth = 0;
    for (const Instruction& instr : instrs_) {
        if (instr.type == OpType::kBarrier) continue;
        int level = 0;
        for (int q : instr.qubits) level = std::max(level, qubit_front[q]);
        if (instr.type == OpType::kMeasure) {
            level = std::max(level, clbit_front[instr.cbit]);
        }
        ++level;
        for (int q : instr.qubits) qubit_front[q] = level;
        if (instr.type == OpType::kMeasure) clbit_front[instr.cbit] = level;
        depth = std::max(depth, level);
    }
    return depth;
}

std::string
QuantumCircuit::toQasm() const
{
    // "ccrz" is a qassert extension (the adder programs emit it); our
    // importer accepts it back, other toolchains need a gate definition.
    static const std::set<std::string> known = {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
        "rx", "ry", "rz", "p", "u2", "u3", "cx", "cy", "cz", "ch",
        "swap", "crz", "cp", "cu3", "ccx", "ccrz"};

    std::ostringstream oss;
    oss << "OPENQASM 2.0;\n"
        << "include \"qelib1.inc\";\n"
        << "qreg q[" << num_qubits_ << "];\n";
    if (num_clbits_ > 0) oss << "creg c[" << num_clbits_ << "];\n";

    for (const Instruction& instr : instrs_) {
        if (instr.type == OpType::kBarrier) {
            oss << "barrier q;\n";
            continue;
        }
        if (instr.type == OpType::kMeasure) {
            oss << "measure q[" << instr.qubits[0] << "] -> c["
                << instr.cbit << "];\n";
            continue;
        }
        if (instr.type == OpType::kReset) {
            oss << "reset q[" << instr.qubits[0] << "];\n";
            continue;
        }
        QA_REQUIRE(known.count(instr.name),
                   "toQasm: opaque gate '" + instr.name +
                       "'; lower the circuit to basis gates first");
        oss << instr.name;
        if (!instr.params.empty()) {
            oss << "(";
            for (size_t i = 0; i < instr.params.size(); ++i) {
                if (i) oss << ",";
                // Max precision so parameters survive a parse round trip.
                oss << std::setprecision(17) << instr.params[i];
            }
            oss << ")";
        }
        oss << " ";
        for (size_t i = 0; i < instr.qubits.size(); ++i) {
            if (i) oss << ",";
            oss << "q[" << instr.qubits[i] << "]";
        }
        oss << ";\n";
    }
    return oss.str();
}

} // namespace qa
