#include "circuit/stdgates.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/states.hpp"

namespace qa
{
namespace gates
{

namespace
{
const double kSqrt2Inv = 1.0 / std::sqrt(2.0);

Complex
expi(double phi)
{
    return Complex(std::cos(phi), std::sin(phi));
}
} // namespace

CMatrix i() { return CMatrix::identity(2); }

CMatrix
x()
{
    return CMatrix{{0, 1}, {1, 0}};
}

CMatrix
y()
{
    return CMatrix{{0, -kI}, {kI, 0}};
}

CMatrix
z()
{
    return CMatrix{{1, 0}, {0, -1}};
}

CMatrix
h()
{
    return CMatrix{{kSqrt2Inv, kSqrt2Inv}, {kSqrt2Inv, -kSqrt2Inv}};
}

CMatrix
s()
{
    return CMatrix{{1, 0}, {0, kI}};
}

CMatrix
sdg()
{
    return CMatrix{{1, 0}, {0, -kI}};
}

CMatrix
t()
{
    return CMatrix{{1, 0}, {0, expi(M_PI / 4)}};
}

CMatrix
tdg()
{
    return CMatrix{{1, 0}, {0, expi(-M_PI / 4)}};
}

CMatrix
sx()
{
    return CMatrix{{Complex(0.5, 0.5), Complex(0.5, -0.5)},
                   {Complex(0.5, -0.5), Complex(0.5, 0.5)}};
}

CMatrix
rx(double theta)
{
    double c = std::cos(theta / 2), s_ = std::sin(theta / 2);
    return CMatrix{{c, -kI * s_}, {-kI * s_, c}};
}

CMatrix
ry(double theta)
{
    double c = std::cos(theta / 2), s_ = std::sin(theta / 2);
    return CMatrix{{c, -s_}, {s_, c}};
}

CMatrix
rz(double theta)
{
    return CMatrix{{expi(-theta / 2), 0}, {0, expi(theta / 2)}};
}

CMatrix
p(double lambda)
{
    return CMatrix{{1, 0}, {0, expi(lambda)}};
}

CMatrix
u2(double phi, double lambda)
{
    return u3(M_PI / 2, phi, lambda);
}

CMatrix
u3(double theta, double phi, double lambda)
{
    double c = std::cos(theta / 2), s_ = std::sin(theta / 2);
    return CMatrix{{c, -expi(lambda) * s_},
                   {expi(phi) * s_, expi(phi + lambda) * c}};
}

CMatrix cx() { return controlled(x()); }
CMatrix cy() { return controlled(y()); }
CMatrix cz() { return controlled(z()); }
CMatrix ch() { return controlled(h()); }

CMatrix
swap()
{
    return CMatrix{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
}

CMatrix ccx() { return controlled(x(), 2); }
CMatrix crz(double theta) { return controlled(rz(theta)); }
CMatrix cp(double lambda) { return controlled(p(lambda)); }

CMatrix
cu3(double theta, double phi, double lambda)
{
    return controlled(u3(theta, phi, lambda));
}

CMatrix
controlled(const CMatrix& u, int num_controls)
{
    return controlledOpen(u, num_controls, 0u);
}

CMatrix
controlledOpen(const CMatrix& u, int num_controls, unsigned open_mask)
{
    QA_REQUIRE(u.rows() == u.cols(), "controlled() needs a square matrix");
    QA_REQUIRE(num_controls >= 1, "need at least one control");
    const size_t udim = u.rows();
    const size_t cdim = size_t(1) << num_controls;
    const size_t dim = cdim * udim;

    // The control pattern that activates u: closed controls need 1, open
    // controls need 0. Control i is local qubit i, i.e. bit
    // (num_controls - 1 - i) of the control-subspace index.
    size_t active = 0;
    for (int i = 0; i < num_controls; ++i) {
        bool open = (open_mask >> i) & 1u;
        if (!open) active |= size_t(1) << (num_controls - 1 - i);
    }

    CMatrix out = CMatrix::identity(dim);
    for (size_t r = 0; r < udim; ++r) {
        for (size_t c = 0; c < udim; ++c) {
            out(active * udim + r, active * udim + c) = u(r, c);
        }
    }
    return out;
}

} // namespace gates
} // namespace qa
