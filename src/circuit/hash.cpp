#include "circuit/hash.hpp"

namespace qa
{

void
absorbCircuit(HashStream& stream, const QuantumCircuit& circuit)
{
    stream.i64(circuit.numQubits());
    stream.i64(circuit.numClbits());
    stream.u64(circuit.size());
    for (const Instruction& instr : circuit.instructions()) {
        stream.i64(int64_t(instr.type));
        stream.str(instr.name);
        stream.u64(instr.qubits.size());
        for (int q : instr.qubits) stream.i64(q);
        stream.i64(instr.cbit);
        stream.u64(instr.params.size());
        for (double p : instr.params) stream.f64(p);
        stream.u64(instr.matrix.rows());
        stream.u64(instr.matrix.cols());
        for (size_t r = 0; r < instr.matrix.rows(); ++r) {
            for (size_t c = 0; c < instr.matrix.cols(); ++c) {
                stream.f64(instr.matrix(r, c).real());
                stream.f64(instr.matrix(r, c).imag());
            }
        }
    }
}

Hash128
circuitHash(const QuantumCircuit& circuit)
{
    HashStream stream(0x63697263ULL); // domain tag: "circ"
    absorbCircuit(stream, circuit);
    return stream.digest();
}

} // namespace qa
