#include "resilience/retry.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace qa
{
namespace resilience
{

bool
isTransientError(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kGeneric:
      case ErrorCode::kWorkerLost:
      case ErrorCode::kWorkerFailure:
        return true;
      default:
        return false;
    }
}

double
retryBackoffMs(const RetryOptions& options, uint64_t job_seq, int retry)
{
    if (retry < 1) retry = 1;
    double backoff = options.base_backoff_ms;
    for (int i = 1; i < retry && backoff < options.max_backoff_ms; ++i) {
        backoff *= 2.0;
    }
    backoff = std::min(backoff, options.max_backoff_ms);

    // Counter-based jitter in [0.5, 1.0): same (seed, seq, retry) always
    // yields the same delay; distinct jobs decorrelate (avoids retry
    // stampedes without sacrificing reproducibility).
    const uint64_t draw = splitmix64(
        options.jitter_seed ^
        (job_seq * 0x9E3779B97F4A7C15ULL + uint64_t(retry)));
    const double unit = double(draw >> 11) * 0x1.0p-53;
    return backoff * (0.5 + 0.5 * unit);
}

RetryDecision
decideRetry(const RetryOptions& options, uint64_t job_seq,
            int failed_attempt, ErrorCode code, double deadline_ms,
            double spent_ms)
{
    RetryDecision decision;
    if (!isTransientError(code)) return decision;
    if (failed_attempt + 1 >= options.max_attempts) return decision;

    const double backoff =
        retryBackoffMs(options, job_seq, failed_attempt + 1);
    if (deadline_ms > 0.0 && spent_ms + backoff >= deadline_ms) {
        return decision; // budget exhausted: fail with the error we have
    }
    decision.retry = true;
    decision.backoff_ms = backoff;
    return decision;
}

} // namespace resilience
} // namespace qa
