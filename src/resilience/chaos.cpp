#include "resilience/chaos.hpp"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qa
{
namespace resilience
{

const char*
serviceFaultName(ServiceFaultKind kind)
{
    switch (kind) {
      case ServiceFaultKind::kNone:        return "none";
      case ServiceFaultKind::kWorkerStall: return "worker_stall";
      case ServiceFaultKind::kJobThrow:    return "job_throw";
    }
    return "unknown";
}

ServiceFault
ChaosPlan::at(uint64_t job_seq, int attempt) const
{
    ServiceFault fault;
    if (options_.first_attempt_only && attempt > 0) return fault;
    // Counter-based draw: the site (seq, attempt) fully determines the
    // fault, mirroring Rng::forStream's (seed, stream) scheme.
    const uint64_t draw = splitmix64(
        options_.seed ^ (job_seq * 0x9E3779B97F4A7C15ULL +
                         uint64_t(uint32_t(attempt)) * 0xBF58476D1CE4E5B9ULL));
    const double unit = double(draw >> 11) * 0x1.0p-53;
    if (unit < options_.p_stall) {
        fault.kind = ServiceFaultKind::kWorkerStall;
        fault.stall_ms = options_.stall_ms;
    } else if (unit < options_.p_stall + options_.p_throw) {
        fault.kind = ServiceFaultKind::kJobThrow;
    }
    return fault;
}

size_t
ChaosPlan::plannedFaults(uint64_t njobs) const
{
    size_t count = 0;
    for (uint64_t seq = 0; seq < njobs; ++seq) {
        if (at(seq, 0).kind != ServiceFaultKind::kNone) ++count;
    }
    return count;
}

void
chopFileTail(const std::string& path, size_t bytes)
{
    struct stat st;
    QA_REQUIRE(::stat(path.c_str(), &st) == 0,
               "cannot stat '" + path + "': " + std::strerror(errno));
    const off_t size = st.st_size;
    const off_t keep =
        bytes >= size_t(size) ? 0 : size - off_t(bytes);
    QA_REQUIRE(::truncate(path.c_str(), keep) == 0,
               "cannot truncate '" + path + "': " + std::strerror(errno));
}

const std::vector<AdversarialPayload>&
adversarialWireCorpus()
{
    static const std::vector<AdversarialPayload> corpus = [] {
        std::vector<AdversarialPayload> c;
        auto fail = [&c](std::string payload, const char* why) {
            c.push_back({std::move(payload), true, why});
        };
        auto survive = [&c](std::string payload, const char* why) {
            c.push_back({std::move(payload), false, why});
        };

        // --- truncated documents -----------------------------------
        fail("", "empty line");
        fail("{", "lone open brace");
        fail("[", "lone open bracket");
        fail("{\"op\"", "cut after key");
        fail("{\"op\":", "cut after colon");
        fail("{\"op\":\"run\"", "cut before close");
        fail("{\"op\":\"run\",", "cut after comma");
        fail("[1,2", "unterminated array");
        fail("\"half a string", "unterminated string");
        fail("tru", "truncated literal");
        fail("-", "sign without digits");
        fail("{\"qasm\":\"OPENQASM 2.0;\\", "cut inside escape");

        // --- nesting and structure ---------------------------------
        fail(std::string(80, '[') + std::string(80, ']'),
             "nesting beyond the depth bound");
        {
            std::string deep;
            for (int i = 0; i < 80; ++i) deep += "{\"k\":";
            deep += "1";
            for (int i = 0; i < 80; ++i) deep += "}";
            fail(std::move(deep), "object nesting beyond the bound");
        }
        fail("[1,]", "trailing comma in array");
        fail("{\"a\":1,}", "trailing comma in object");
        fail("{,}", "comma without member");
        fail("{:1}", "missing key");
        fail("{\"a\" 1}", "missing colon");
        fail("[1 2]", "missing comma");
        fail("{} {}", "two documents on one line");
        fail("null null", "trailing literal");
        fail("{\"a\":1}x", "trailing garbage");
        fail(std::string("{\"op\":\"metrics\"}\0y", 18),
             "embedded NUL then trailing bytes");

        // --- duplicate keys ----------------------------------------
        fail("{\"a\":1,\"a\":2}", "duplicate key");
        fail("{\"op\":\"metrics\",\"op\":\"metrics\"}",
             "duplicate op key");

        // --- bad numbers -------------------------------------------
        fail("01", "leading zero");
        fail("0123", "leading zeros");
        fail("+1", "explicit plus sign");
        fail("1.", "digitless fraction");
        fail(".5", "bare fraction");
        fail("1e", "digitless exponent");
        fail("1e+", "signed digitless exponent");
        fail("0x10", "hex number");
        fail("Infinity", "infinity literal");
        fail("NaN", "nan literal");
        fail("1e999", "overflowing exponent");
        fail("--1", "double sign");
        fail("1..2", "double decimal point");
        fail("{\"shots\":1e999}", "overflow inside a request");

        // --- bad strings and escapes -------------------------------
        fail("\"bad \\q escape\"", "unknown escape");
        fail("\"\\u12\"", "truncated unicode escape");
        fail("\"\\ud800\"", "lone high surrogate");
        fail("\"\\uDFFF\"", "lone low surrogate");
        fail(std::string("\"ctrl \x01 char\""), "raw control character");
        fail("\"trailing backslash\\", "escape at end of input");

        // --- wrong top-level kinds for the wire --------------------
        fail("[]", "array cannot be a request");
        fail("123", "number cannot be a request");
        fail("\"run\"", "string cannot be a request");
        fail("null", "null cannot be a request");
        fail("true", "bool cannot be a request");

        // --- wire-level field abuse (valid JSON, bad request) ------
        fail("{\"op\":\"frobnicate\"}", "unknown op");
        fail("{\"id\":\"x\"}", "run without qasm");
        fail("{\"qasm\":42}", "numeric qasm");
        fail("{\"qasm\":[\"OPENQASM 2.0;\"]}", "array qasm");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\",\"shots\":0}",
             "zero shots");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\",\"shots\":-8}",
             "negative shots");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\",\"shots\":1.5}",
             "fractional shots");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\",\"shots\":\"many\"}",
             "string shots");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\",\"seed\":\"x\"}",
             "string seed");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\","
             "\"assert_clbits\":3}",
             "scalar slot list");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\","
             "\"assert_clbits\":[3]}",
             "flat slot list");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\","
             "\"assert_clbits\":[[true]]}",
             "boolean clbit");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\","
             "\"assert_clbits\":[[0.5]]}",
             "fractional clbit");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\","
             "\"noise\":\"saturn\"}",
             "unknown noise kind");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\","
             "\"noise\":{\"kind\":42}}",
             "numeric noise kind");
        fail("{\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\","
             "\"noise\":[1,2]}",
             "array noise");
        fail("{\"qasm\":\"not qasm at all\"}", "qasm gibberish");
        fail("{\"qasm\":\"" + std::string(4096, 'z') + "\"}",
             "large gibberish qasm");

        // --- hostile but survivable (must not crash or leak) -------
        survive("{\"op\":\"metrics\",\"id\":\"\xff\xfe ok\"}",
                "invalid UTF-8 passes through the parser");
        survive("{\"op\":\"metrics\",\"junk\":[[[1,2,3],{\"a\":null}]]}",
                "unknown fields are ignored");
        survive("{\"op\":\"shutdown\",\"id\":" + std::string("1234567") +
                    "}",
                "numeric id is stringified");
        survive("  {\"op\":\"metrics\"}  ", "surrounding whitespace");
        return c;
    }();
    return corpus;
}

} // namespace resilience
} // namespace qa
