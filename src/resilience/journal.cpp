#include "resilience/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.hpp"

namespace qa
{
namespace resilience
{

Journal::Journal(std::string path, JournalOptions options)
    : path_(std::move(path)), options_(options)
{
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    QA_REQUIRE_CODE(fd_ >= 0, ErrorCode::kBadRequest,
                    "cannot open journal '" + path_ +
                        "': " + std::strerror(errno));
}

Journal::~Journal()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

void
Journal::appendAccept(uint64_t seq, const std::string& request_json)
{
    std::ostringstream oss;
    oss << "{\"e\":\"accept\",\"seq\":" << seq << ",\"req\":" << request_json
        << "}\n";
    appendLine(oss.str());
}

void
Journal::appendComplete(uint64_t seq, const std::string& status,
                        const std::string& payload_hash)
{
    std::ostringstream oss;
    oss << "{\"e\":\"complete\",\"seq\":" << seq << ",\"status\":\""
        << status << "\",\"hash\":\"" << payload_hash << "\"}\n";
    appendLine(oss.str());
}

void
Journal::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0) return;
    ::fsync(fd_);
    ++syncs_;
    unsynced_ = 0;
}

uint64_t
Journal::recordsWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

uint64_t
Journal::syncsIssued() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return syncs_;
}

void
Journal::appendLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    QA_ASSERT(fd_ >= 0, "journal used after close");
    // One write(2) per record: O_APPEND makes concurrent appends whole,
    // and a SIGKILL can only ever lose the record being written, never
    // corrupt an earlier one.
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            QA_FAIL_CODE(ErrorCode::kJournalCorrupt,
                         "journal write to '" + path_ +
                             "' failed: " + std::strerror(errno));
        }
        off += size_t(n);
    }
    ++records_;
    ++unsynced_;
    if (options_.sync_every > 0 && unsynced_ >= options_.sync_every) {
        ::fsync(fd_);
        ++syncs_;
        unsynced_ = 0;
    }
}

std::vector<JournalEntry>
JournalScan::pending() const
{
    std::vector<JournalEntry> out;
    for (const JournalEntry& entry : accepted) {
        if (completed.find(entry.seq) == completed.end()) {
            out.push_back(entry);
        }
    }
    return out;
}

namespace
{

/** Consume `prefix` from text at *pos; false on mismatch. */
bool
eat(const std::string& text, size_t* pos, const char* prefix)
{
    const size_t len = std::strlen(prefix);
    if (text.compare(*pos, len, prefix) != 0) return false;
    *pos += len;
    return true;
}

/** Parse a decimal uint64 at *pos; false when no digits. */
bool
eatU64(const std::string& text, size_t* pos, uint64_t* value)
{
    size_t p = *pos;
    uint64_t v = 0;
    bool any = false;
    while (p < text.size() && text[p] >= '0' && text[p] <= '9') {
        v = v * 10 + uint64_t(text[p] - '0');
        ++p;
        any = true;
    }
    if (!any) return false;
    *pos = p;
    *value = v;
    return true;
}

/** Parse the characters of a simple quoted string (no escapes). */
bool
eatQuoted(const std::string& text, size_t* pos, std::string* out)
{
    size_t p = *pos;
    if (p >= text.size() || text[p] != '"') return false;
    ++p;
    const size_t end = text.find('"', p);
    if (end == std::string::npos) return false;
    *out = text.substr(p, end - p);
    *pos = end + 1;
    return true;
}

/**
 * Parse one journal line against the writer's exact grammar. Returns
 * false on any deviation (the caller decides torn-tail vs corrupt).
 */
bool
parseJournalLine(const std::string& line, JournalScan* scan)
{
    size_t pos = 0;
    if (eat(line, &pos, "{\"e\":\"accept\",\"seq\":")) {
        JournalEntry entry;
        if (!eatU64(line, &pos, &entry.seq)) return false;
        if (!eat(line, &pos, ",\"req\":")) return false;
        if (pos >= line.size() || line.back() != '}') return false;
        // The request object is embedded verbatim; the record's own
        // closing brace is the final character.
        entry.request = line.substr(pos, line.size() - pos - 1);
        if (entry.request.empty() || entry.request.front() != '{' ||
            entry.request.back() != '}') {
            return false;
        }
        scan->accepted.push_back(std::move(entry));
        return true;
    }
    if (eat(line, &pos, "{\"e\":\"complete\",\"seq\":")) {
        uint64_t seq = 0;
        JournalScan::Completion completion;
        if (!eatU64(line, &pos, &seq)) return false;
        if (!eat(line, &pos, ",\"status\":")) return false;
        if (!eatQuoted(line, &pos, &completion.status)) return false;
        if (!eat(line, &pos, ",\"hash\":")) return false;
        if (!eatQuoted(line, &pos, &completion.hash)) return false;
        if (!eat(line, &pos, "}")) return false;
        if (pos != line.size()) return false;
        scan->completed[seq] = std::move(completion);
        return true;
    }
    return false;
}

} // namespace

JournalScan
scanJournal(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    QA_REQUIRE_CODE(in.is_open(), ErrorCode::kBadRequest,
                    "cannot open journal '" + path + "' for replay");

    JournalScan scan;
    std::string line;
    std::string damaged;
    size_t damaged_at = 0;
    while (std::getline(in, line)) {
        ++scan.lines;
        if (line.empty()) continue;
        if (!damaged.empty()) {
            // A damaged record followed by more records is real
            // corruption, not a crash tail.
            QA_FAIL_CODE(ErrorCode::kJournalCorrupt,
                         "journal '" + path + "' line " +
                             std::to_string(damaged_at) +
                             " is damaged but not the final record");
        }
        if (!parseJournalLine(line, &scan)) {
            damaged = line;
            damaged_at = scan.lines;
        }
    }
    // A file not ending in '\n' leaves its partial text in the last
    // getline result, which lands in `damaged` above.
    if (!damaged.empty()) {
        scan.torn_tail = true;
        scan.torn_text = damaged;
    }
    return scan;
}

} // namespace resilience
} // namespace qa
