/**
 * @file
 * Retry policy for transient service-job failures.
 *
 * Two properties matter for the serving path:
 *  - **Determinism**: backoff jitter is counter-based (splitmix64 over
 *    (seed, job seq, attempt)), never wall-clock- or thread-seeded, so a
 *    replayed job schedule produces the same backoff sequence and tests
 *    can assert on exact delays.
 *  - **Bounded work**: attempts are capped, and every retry's backoff
 *    plus execution time is deducted from the job's own deadline budget
 *    — a job with 50ms of deadline left never schedules a 100ms backoff;
 *    it fails now with the error it already has.
 *
 * Only transient failures retry. A typed UserError that names a caller
 * mistake (kBadRequest, kPolicyUnsupported, ...) will fail identically
 * on every attempt; retrying it only burns workers.
 */
#ifndef QA_RESILIENCE_RETRY_HPP
#define QA_RESILIENCE_RETRY_HPP

#include <cstdint>

#include "common/error.hpp"

namespace qa
{
namespace resilience
{

/** Retry sizing knobs (defaults: 3 attempts, 1ms..100ms backoff). */
struct RetryOptions
{
    /** Total attempts including the first; 1 disables retries. */
    int max_attempts = 3;

    /** Backoff before the first retry (doubles each further retry). */
    double base_backoff_ms = 1.0;

    /** Exponential-backoff ceiling. */
    double max_backoff_ms = 100.0;

    /** Jitter stream seed; fixed default keeps schedules reproducible. */
    uint64_t jitter_seed = 0x726574727953ULL; // "retryS"
};

/**
 * True for failures that can plausibly succeed on a clean re-execution:
 * a lost worker, a propagated worker-pool failure, or an unclassified
 * exception (kGeneric — thrown infrastructure errors land there).
 * Typed caller mistakes are permanent.
 */
bool isTransientError(ErrorCode code);

/**
 * Deterministic jittered backoff before retry number `retry` (1-based)
 * of job `job_seq`: base * 2^(retry-1), capped at max, scaled by a
 * [0.5, 1.0) factor drawn from the counter-based jitter stream.
 */
double retryBackoffMs(const RetryOptions& options, uint64_t job_seq,
                      int retry);

/** What the scheduler should do with a failed attempt. */
struct RetryDecision
{
    bool retry = false;

    /** Backoff before the next attempt (valid when retry). */
    double backoff_ms = 0.0;
};

/**
 * Decide whether attempt `failed_attempt` (0-based) of job `job_seq`
 * should be retried: the error must be transient, attempts must remain,
 * and — when the job has a deadline — the backoff must fit inside the
 * remaining budget (`deadline_ms` - `spent_ms`; `deadline_ms` <= 0
 * means unbounded).
 */
RetryDecision decideRetry(const RetryOptions& options, uint64_t job_seq,
                          int failed_attempt, ErrorCode code,
                          double deadline_ms, double spent_ms);

} // namespace resilience
} // namespace qa

#endif // QA_RESILIENCE_RETRY_HPP
