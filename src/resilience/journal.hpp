/**
 * @file
 * Crash-safe NDJSON journal for the assertion service.
 *
 * Write-ahead discipline: an accepted request is appended (and flushed
 * to the OS) *before* it is admitted to the scheduler, and a completion
 * record — carrying a 128-bit hash of the deterministic result payload
 * — is appended when the job resolves. After a crash, the set
 * {accepted} - {completed} is exactly the work that must be re-executed,
 * and because job execution is a pure function of the spec, replaying
 * those requests reproduces bit-identical payloads; completed records'
 * hashes double as an end-to-end determinism check.
 *
 * Durability model: every record is written with a single write(2) to an
 * O_APPEND fd, so records survive SIGKILL as soon as the call returns
 * (page cache; process death cannot lose them). fsync is batched —
 * every `sync_every` records plus one at close/drain — which is the
 * power-loss bound. Batching is safe because replay is idempotent: a
 * lost completion record only causes a deterministic re-execution.
 *
 * Torn tails: a crash can leave a partial final line. The scanner drops
 * exactly one damaged trailing line (reported, not fatal); damage
 * anywhere else throws ErrorCode::kJournalCorrupt.
 *
 * Record grammar (one JSON object per line, fixed field order so the
 * scanner can parse without a full JSON dependency):
 *   {"e":"accept","seq":7,"req":{...original request object...}}
 *   {"e":"complete","seq":7,"status":"ok","hash":"<32 hex>"}
 */
#ifndef QA_RESILIENCE_JOURNAL_HPP
#define QA_RESILIENCE_JOURNAL_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qa
{
namespace resilience
{

/** Journal write knobs. */
struct JournalOptions
{
    /** fsync after this many records (1 = every record; 0 = only on
     *  sync()/close). Flush-to-OS always happens per record. */
    size_t sync_every = 8;
};

/** Append-only journal writer (thread-safe; workers complete jobs). */
class Journal
{
  public:
    /** Opens (creating if needed) for append; throws UserError on
     *  failure. */
    explicit Journal(std::string path, JournalOptions options = {});

    /** Syncs and closes. */
    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /**
     * Write-ahead accept record. `request_json` must be one complete
     * JSON object (the raw wire line) — it is embedded verbatim.
     */
    void appendAccept(uint64_t seq, const std::string& request_json);

    /** Completion record with the result's payload hash (32 hex). */
    void appendComplete(uint64_t seq, const std::string& status,
                        const std::string& payload_hash);

    /** Flush and fsync now (drain path). */
    void sync();

    const std::string& path() const { return path_; }

    uint64_t recordsWritten() const;
    uint64_t syncsIssued() const;

  private:
    void appendLine(const std::string& line);

    std::string path_;
    JournalOptions options_;
    mutable std::mutex mutex_;
    int fd_ = -1;
    uint64_t records_ = 0;
    uint64_t syncs_ = 0;
    size_t unsynced_ = 0;
};

/** One accepted request recovered from a journal. */
struct JournalEntry
{
    uint64_t seq = 0;
    std::string request; ///< The original request JSON object.
};

/** Everything a journal scan recovers. */
struct JournalScan
{
    /** Every accept record, in append (seq) order. */
    std::vector<JournalEntry> accepted;

    /** seq -> (status, payload hash) of completion records. */
    struct Completion
    {
        std::string status;
        std::string hash;
    };
    std::unordered_map<uint64_t, Completion> completed;

    size_t lines = 0;

    /** True when a damaged final line was dropped (crash mid-append). */
    bool torn_tail = false;

    /** The dropped tail text (diagnostics). */
    std::string torn_text;

    /** Accepts with no completion record: the work replay must re-run. */
    std::vector<JournalEntry> pending() const;
};

/**
 * Read a journal back, tolerating a torn final line. Throws UserError
 * with ErrorCode::kJournalCorrupt when a non-tail record is damaged,
 * and ErrorCode::kBadRequest when the file cannot be opened.
 */
JournalScan scanJournal(const std::string& path);

} // namespace resilience
} // namespace qa

#endif // QA_RESILIENCE_JOURNAL_HPP
