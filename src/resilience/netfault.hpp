/**
 * @file
 * Deterministic network-fault plans for the remote fleet — the model
 * behind the qa_netchaos proxy (tools/qa_netchaos.cpp).
 *
 * Mirrors chaos.hpp one layer down: where ChaosPlan perturbs the
 * *serving* of jobs (stalls, throws), a NetFaultPlan perturbs the
 * *bytes between router and shard*. Every per-connection decision is a
 * pure function of (seed, connection index) and every per-chunk
 * decision of (seed, connection index, chunk index) — counter-based
 * splitmix, no hidden RNG state — so a chaos run is reproducible: the
 * same seed and plan text produce the same faults on the same
 * connection sequence, and a bug found under qa_netchaos replays.
 *
 * Plan grammar (one line, families separated by ';', parameters by ','):
 *
 *   reset:every=K[,after_bytes=N]
 *       Every K-th proxied connection is hard-reset (RST via linger-0
 *       close) once N bytes (default 0) have crossed it.
 *   partition:at=MS,dur=MS
 *       One global window, MS after proxy start: existing connections
 *       are reset at the window edge, connections arriving inside it
 *       are black-holed (accepted, bytes swallowed, nothing forwarded)
 *       until the window ends, then reset.
 *   slowloris:every=K,delay_ms=D[,chunk=C][,bytes=N]
 *       Every K-th connection dribbles: forwarded in C-byte chunks
 *       (default 1) with a D ms pause before each, for the first N
 *       bytes per direction (default: the whole connection).
 *   partial:p=P
 *       Each forwarded chunk is, with probability P, split into two
 *       separate writes (exercises short-write handling everywhere).
 *   blackhole:every=K,dur=MS
 *       Every K-th connection goes silent after accept: bytes are
 *       swallowed without ACK-level progress for MS, then the
 *       connection is reset.
 *
 * Families compose ("reset:every=7;slowloris:every=5,delay_ms=20"); a
 * connection matching several gets all of them. "every" counts
 * 1-based: every=3 hits connections 2, 5, 8, ... (index % 3 == 2), so
 * every=1 hits all and the first connection of a fresh proxy is only
 * hit by every=1 — plans default to letting the fleet come up once.
 */
#ifndef QA_RESILIENCE_NETFAULT_HPP
#define QA_RESILIENCE_NETFAULT_HPP

#include <cstdint>
#include <string>

namespace qa
{
namespace resilience
{

/** Per-connection fault assignment (resolved once at accept). */
struct NetConnFaults
{
    bool reset = false;
    uint64_t reset_after_bytes = 0;

    bool slowloris = false;
    double slowloris_delay_ms = 0.0;
    uint64_t slowloris_chunk = 1;
    uint64_t slowloris_bytes = 0; ///< 0 = the whole connection.

    bool blackhole = false;
    double blackhole_dur_ms = 0.0;

    bool
    any() const
    {
        return reset || slowloris || blackhole;
    }
};

/** Parsed, seeded network-fault plan. */
class NetFaultPlan
{
  public:
    /** The empty plan: faults nothing. */
    NetFaultPlan() = default;

    /**
     * Parse the plan grammar above. Throws UserError(kBadRequest) on an
     * unknown family, unknown key, malformed number, or missing
     * required parameter. An empty string is the empty plan.
     */
    static NetFaultPlan parse(const std::string& text, uint64_t seed);

    /** Faults assigned to the `conn`-th accepted connection (0-based). */
    NetConnFaults connFaults(uint64_t conn) const;

    /**
     * True when chunk `chunk` of connection `conn` should be delivered
     * as two partial writes. Pure in (seed, conn, chunk).
     */
    bool partialWrite(uint64_t conn, uint64_t chunk) const;

    bool hasPartition() const { return partition_dur_ms_ > 0.0; }
    double partitionAtMs() const { return partition_at_ms_; }
    double partitionEndMs() const
    {
        return partition_at_ms_ + partition_dur_ms_;
    }

    /** Inside the partition window, `now_ms` after proxy start? */
    bool inPartition(double now_ms) const
    {
        return hasPartition() && now_ms >= partition_at_ms_ &&
               now_ms < partitionEndMs();
    }

    /** One-line human summary (proxy startup banner). */
    std::string describe() const;

    uint64_t seed() const { return seed_; }

  private:
    uint64_t seed_ = 0;

    bool reset_enabled_ = false;
    uint64_t reset_every_ = 0;
    uint64_t reset_after_bytes_ = 0;

    double partition_at_ms_ = 0.0;
    double partition_dur_ms_ = 0.0;

    bool slowloris_enabled_ = false;
    uint64_t slowloris_every_ = 0;
    double slowloris_delay_ms_ = 0.0;
    uint64_t slowloris_chunk_ = 1;
    uint64_t slowloris_bytes_ = 0;

    double partial_p_ = 0.0;

    bool blackhole_enabled_ = false;
    uint64_t blackhole_every_ = 0;
    double blackhole_dur_ms_ = 0.0;
};

} // namespace resilience
} // namespace qa

#endif // QA_RESILIENCE_NETFAULT_HPP
