/**
 * @file
 * Worker-supervision primitives: per-worker heartbeats and the watchdog
 * poll thread that turns stale heartbeats into recovery actions.
 *
 * The scheduler owns the workers and the recovery policy (retry the
 * in-flight job or fail it with kWorkerLost, respawn the slot); this
 * file owns the two mechanisms those decisions need:
 *
 *  - Heartbeat: a lock-free busy/idle stamp one worker writes and the
 *    watchdog reads. A worker marks beginWork(token) when it picks a
 *    job, may beat() during long jobs, and endWork() when done. "Wedged"
 *    is defined as `busy && now - last_beat > stall_timeout` — an idle
 *    worker parked on its condition variable is never flagged.
 *
 *  - Watchdog: a background thread that invokes a scan callback at a
 *    fixed poll interval, with prompt stop/join semantics (no detached
 *    threads; stop() is idempotent and safe to call from destructors).
 *
 * Time flows through the Clock abstraction so stall detection is
 * testable with a ManualClock and zero real sleeps.
 */
#ifndef QA_RESILIENCE_SUPERVISOR_HPP
#define QA_RESILIENCE_SUPERVISOR_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/clock.hpp"

namespace qa
{
namespace resilience
{

/** Supervision knobs (embedded in SchedulerOptions). */
struct SupervisorOptions
{
    /**
     * A busy worker whose heartbeat is older than this is declared
     * lost. <= 0 disables the watchdog entirely. Must comfortably
     * exceed the longest legitimate job (deadlines bound that).
     */
    double stall_timeout_ms = 0.0;

    /** Watchdog scan cadence. */
    double poll_interval_ms = 10.0;
};

/** One worker's liveness stamp (single writer, concurrent readers). */
class Heartbeat
{
  public:
    explicit Heartbeat(Clock* clock = nullptr)
        : clock_(resolveClock(clock))
    {}

    /** Worker: entering a job identified by `token`. */
    void
    beginWork(uint64_t token)
    {
        token_.store(token, std::memory_order_relaxed);
        stamp();
        busy_.store(true, std::memory_order_release);
    }

    /** Worker: proof of liveness mid-job. */
    void beat() { stamp(); }

    /** Worker: job finished (whatever the outcome). */
    void endWork() { busy_.store(false, std::memory_order_release); }

    bool busy() const { return busy_.load(std::memory_order_acquire); }

    uint64_t token() const
    {
        return token_.load(std::memory_order_relaxed);
    }

    /** Milliseconds since the last beat; 0 when idle. */
    double
    staleMs() const
    {
        if (!busy()) return 0.0;
        const auto beat_ns = std::chrono::nanoseconds(
            last_beat_ns_.load(std::memory_order_acquire));
        const auto now_ns = clock_.now().time_since_epoch();
        const double ms =
            std::chrono::duration<double, std::milli>(now_ns - beat_ns)
                .count();
        return ms < 0.0 ? 0.0 : ms;
    }

  private:
    void
    stamp()
    {
        last_beat_ns_.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock_.now().time_since_epoch())
                .count(),
            std::memory_order_release);
    }

    Clock& clock_;
    std::atomic<bool> busy_{false};
    std::atomic<uint64_t> token_{0};
    std::atomic<int64_t> last_beat_ns_{0};
};

/** Periodic scan thread with prompt stop/join. */
class Watchdog
{
  public:
    using Scan = std::function<void()>;

    Watchdog() = default;

    /** stop()s and joins. */
    ~Watchdog() { stop(); }

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /** Start scanning every `poll_interval_ms`. One start per instance. */
    void
    start(Scan scan, double poll_interval_ms)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (thread_.joinable()) return;
        stop_ = false;
        const auto interval = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                poll_interval_ms > 0.0 ? poll_interval_ms : 1.0));
        thread_ = std::thread([this, scan = std::move(scan), interval] {
            std::unique_lock<std::mutex> wait_lock(mutex_);
            while (!stop_) {
                cv_.wait_for(wait_lock, interval,
                             [this] { return stop_; });
                if (stop_) break;
                wait_lock.unlock();
                scan();
                wait_lock.lock();
            }
        });
    }

    /** Stop and join; idempotent, no-op if never started. */
    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    bool running() const { return thread_.joinable(); }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace resilience
} // namespace qa

#endif // QA_RESILIENCE_SUPERVISOR_HPP
