#include "resilience/netfault.hpp"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace qa
{
namespace resilience
{

namespace
{

/** key=val,... for one family; every key must be consumed. */
using Params = std::map<std::string, std::string>;

Params
parseParams(const std::string& family, const std::string& text)
{
    Params params;
    if (text.empty()) return params;
    std::stringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size()) {
            throw UserError("netfault plan: '" + family +
                                "' parameter '" + item +
                                "' is not key=value", ErrorCode::kBadRequest);
        }
        params[item.substr(0, eq)] = item.substr(eq + 1);
    }
    return params;
}

double
takeNumber(Params& params, const std::string& family,
           const std::string& key, double fallback, bool required)
{
    const auto it = params.find(key);
    if (it == params.end()) {
        if (required) {
            throw UserError("netfault plan: '" + family + "' needs " +
                                key + "=...", ErrorCode::kBadRequest);
        }
        return fallback;
    }
    const std::string text = it->second;
    params.erase(it);
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0' || value < 0.0) {
        throw UserError("netfault plan: '" + family + "' " + key +
                            " must be a non-negative number, got '" +
                            text + "'", ErrorCode::kBadRequest);
    }
    return value;
}

void
rejectLeftovers(const Params& params, const std::string& family)
{
    if (params.empty()) return;
    throw UserError("netfault plan: '" + family +
                        "' does not take parameter '" +
                        params.begin()->first + "'", ErrorCode::kBadRequest);
}

/** 1-based "every K-th connection": every=3 hits conn 2, 5, 8, ... */
bool
everyHits(uint64_t every, uint64_t conn)
{
    return every > 0 && (conn % every) == every - 1;
}

} // namespace

NetFaultPlan
NetFaultPlan::parse(const std::string& text, uint64_t seed)
{
    NetFaultPlan plan;
    plan.seed_ = seed;
    if (text.empty()) return plan;

    std::stringstream in(text);
    std::string clause;
    while (std::getline(in, clause, ';')) {
        if (clause.empty()) continue;
        const size_t colon = clause.find(':');
        const std::string family = clause.substr(0, colon);
        Params params = parseParams(
            family,
            colon == std::string::npos ? "" : clause.substr(colon + 1));

        if (family == "reset") {
            plan.reset_enabled_ = true;
            plan.reset_every_ = uint64_t(
                takeNumber(params, family, "every", 0.0, true));
            plan.reset_after_bytes_ = uint64_t(
                takeNumber(params, family, "after_bytes", 0.0, false));
        } else if (family == "partition") {
            plan.partition_at_ms_ =
                takeNumber(params, family, "at", 0.0, true);
            plan.partition_dur_ms_ =
                takeNumber(params, family, "dur", 0.0, true);
        } else if (family == "slowloris") {
            plan.slowloris_enabled_ = true;
            plan.slowloris_every_ = uint64_t(
                takeNumber(params, family, "every", 0.0, true));
            plan.slowloris_delay_ms_ =
                takeNumber(params, family, "delay_ms", 0.0, true);
            plan.slowloris_chunk_ = uint64_t(
                takeNumber(params, family, "chunk", 1.0, false));
            if (plan.slowloris_chunk_ == 0) plan.slowloris_chunk_ = 1;
            plan.slowloris_bytes_ = uint64_t(
                takeNumber(params, family, "bytes", 0.0, false));
        } else if (family == "partial") {
            plan.partial_p_ =
                takeNumber(params, family, "p", 0.0, true);
            if (plan.partial_p_ > 1.0) {
                throw UserError("netfault plan: partial p must be in "
                                "[0, 1]", ErrorCode::kBadRequest);
            }
        } else if (family == "blackhole") {
            plan.blackhole_enabled_ = true;
            plan.blackhole_every_ = uint64_t(
                takeNumber(params, family, "every", 0.0, true));
            plan.blackhole_dur_ms_ =
                takeNumber(params, family, "dur", 0.0, true);
        } else {
            throw UserError("netfault plan: unknown fault family '" +
                                family + "'", ErrorCode::kBadRequest);
        }
        rejectLeftovers(params, family);
    }
    return plan;
}

NetConnFaults
NetFaultPlan::connFaults(uint64_t conn) const
{
    NetConnFaults faults;
    if (reset_enabled_ && everyHits(reset_every_, conn)) {
        faults.reset = true;
        faults.reset_after_bytes = reset_after_bytes_;
    }
    if (slowloris_enabled_ && everyHits(slowloris_every_, conn)) {
        faults.slowloris = true;
        faults.slowloris_delay_ms = slowloris_delay_ms_;
        faults.slowloris_chunk = slowloris_chunk_;
        faults.slowloris_bytes = slowloris_bytes_;
    }
    if (blackhole_enabled_ && everyHits(blackhole_every_, conn)) {
        faults.blackhole = true;
        faults.blackhole_dur_ms = blackhole_dur_ms_;
    }
    return faults;
}

bool
NetFaultPlan::partialWrite(uint64_t conn, uint64_t chunk) const
{
    if (partial_p_ <= 0.0) return false;
    if (partial_p_ >= 1.0) return true;
    // Counter-based: hash (seed, conn, chunk) to a uniform in [0, 1).
    HashStream hs(seed_);
    hs.u64(0x706172746c77ULL); // "partlw": domain-separate from ring
    hs.u64(conn).u64(chunk);
    const double u =
        double(hs.digest().hi >> 11) / double(uint64_t(1) << 53);
    return u < partial_p_;
}

std::string
NetFaultPlan::describe() const
{
    std::ostringstream out;
    out << "seed=" << seed_;
    if (reset_enabled_) {
        out << " reset(every=" << reset_every_
            << ",after_bytes=" << reset_after_bytes_ << ")";
    }
    if (hasPartition()) {
        out << " partition(at=" << partition_at_ms_
            << "ms,dur=" << partition_dur_ms_ << "ms)";
    }
    if (slowloris_enabled_) {
        out << " slowloris(every=" << slowloris_every_
            << ",delay_ms=" << slowloris_delay_ms_
            << ",chunk=" << slowloris_chunk_;
        if (slowloris_bytes_ > 0) out << ",bytes=" << slowloris_bytes_;
        out << ")";
    }
    if (partial_p_ > 0.0) out << " partial(p=" << partial_p_ << ")";
    if (blackhole_enabled_) {
        out << " blackhole(every=" << blackhole_every_
            << ",dur=" << blackhole_dur_ms_ << "ms)";
    }
    return out.str();
}

} // namespace resilience
} // namespace qa
