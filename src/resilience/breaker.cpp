#include "resilience/breaker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qa
{
namespace resilience
{

CircuitBreaker::CircuitBreaker(BreakerOptions options, Clock* clock)
    : options_(options), clock_(resolveClock(clock))
{
    if (options_.enabled) {
        QA_REQUIRE(options_.window > 0,
                   "circuit breaker needs a positive outcome window");
        QA_REQUIRE(options_.failure_threshold > 0.0,
                   "circuit breaker needs a positive failure threshold");
        outcomes_.assign(options_.window, 0);
    }
}

bool
CircuitBreaker::tryAdmit()
{
    if (!options_.enabled) return true;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen: {
        const double open_ms = clock_.elapsedMs(opened_at_);
        if (open_ms < options_.open_cooldown_ms) {
            ++shed_;
            return false;
        }
        state_ = State::kHalfOpen;
        probes_issued_ = 0;
        [[fallthrough]];
      }
      case State::kHalfOpen:
        if (probes_issued_ < options_.half_open_probes) {
            ++probes_issued_;
            return true;
        }
        ++shed_;
        return false;
    }
    return true;
}

void
CircuitBreaker::recordSuccess()
{
    if (!options_.enabled) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen) {
        // The probe came back healthy: close and forget the bad window.
        state_ = State::kClosed;
        std::fill(outcomes_.begin(), outcomes_.end(), uint8_t(0));
        outcome_head_ = outcome_count_ = window_failures_ = 0;
        return;
    }
    if (outcome_count_ == outcomes_.size()) {
        window_failures_ -= outcomes_[outcome_head_];
    } else {
        ++outcome_count_;
    }
    outcomes_[outcome_head_] = 0;
    outcome_head_ = (outcome_head_ + 1) % outcomes_.size();
}

void
CircuitBreaker::recordFailure()
{
    if (!options_.enabled) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen) {
        // Probe failed: back to open, cooldown restarts.
        state_ = State::kOpen;
        opened_at_ = clock_.now();
        ++opens_;
        return;
    }
    if (outcome_count_ == outcomes_.size()) {
        window_failures_ -= outcomes_[outcome_head_];
    } else {
        ++outcome_count_;
    }
    outcomes_[outcome_head_] = 1;
    ++window_failures_;
    outcome_head_ = (outcome_head_ + 1) % outcomes_.size();
    if (state_ == State::kClosed &&
        outcome_count_ >= options_.min_samples &&
        failureRateLocked() >= options_.failure_threshold) {
        tripLocked();
    }
}

void
CircuitBreaker::observeQueueWait(double queue_ms)
{
    if (!options_.enabled) return;
    if (options_.queue_latency_threshold_ms <= 0.0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kClosed &&
        queue_ms > options_.queue_latency_threshold_ms) {
        tripLocked();
    }
}

CircuitBreaker::State
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

double
CircuitBreaker::retryAfterMs() const
{
    if (!options_.enabled) return 0.0;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::kClosed:
        return 0.0;
      case State::kOpen: {
        const double remaining =
            options_.open_cooldown_ms - clock_.elapsedMs(opened_at_);
        return remaining < 1.0 ? 1.0 : remaining;
      }
      case State::kHalfOpen:
        return options_.open_cooldown_ms / 4.0;
    }
    return 0.0;
}

CircuitBreaker::Stats
CircuitBreaker::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.state = state_;
    stats.shed = shed_;
    stats.opens = opens_;
    stats.window_samples = outcome_count_;
    stats.window_failures = window_failures_;
    return stats;
}

void
CircuitBreaker::tripLocked()
{
    state_ = State::kOpen;
    opened_at_ = clock_.now();
    ++opens_;
}

double
CircuitBreaker::failureRateLocked() const
{
    return outcome_count_ == 0
               ? 0.0
               : double(window_failures_) / double(outcome_count_);
}

const char*
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::kClosed:   return "closed";
      case CircuitBreaker::State::kOpen:     return "open";
      case CircuitBreaker::State::kHalfOpen: return "half_open";
    }
    return "unknown";
}

} // namespace resilience
} // namespace qa
