/**
 * @file
 * Chaos-testing harness for the assertion service: deterministic
 * service-level fault plans plus an adversarial wire-input corpus.
 *
 * Mirrors the src/inject philosophy at the service layer: a fault plan
 * is a pure function of (seed, job sequence number, attempt) — no
 * hidden randomness — so a chaos run is reproducible and a failure
 * found under chaos can be replayed exactly. Where src/inject perturbs
 * circuits (Pauli/flip/drop/duplicate at enumerated sites), this file
 * perturbs the *serving* of jobs: worker stalls (exercising the
 * watchdog), thrown job functions (exercising retry and the breaker),
 * and hostile wire input (exercising the parser and admission).
 *
 * The plan plugs into SchedulerOptions::exec_hook; the corpus feeds the
 * JSON/wire layer directly. Journal-tail truncation — the fourth fault
 * family — is a file operation (chopFileTail) applied between a kill
 * and a replay.
 */
#ifndef QA_RESILIENCE_CHAOS_HPP
#define QA_RESILIENCE_CHAOS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace qa
{
namespace resilience
{

/** Service-level fault families. */
enum class ServiceFaultKind
{
    kNone,        ///< Execute cleanly.
    kWorkerStall, ///< Wedge the worker mid-job (sleep past the watchdog).
    kJobThrow     ///< Throw from the job function (transient failure).
};

/** Stable human-readable fault-kind name. */
const char* serviceFaultName(ServiceFaultKind kind);

/** One planned fault at a (job, attempt) site. */
struct ServiceFault
{
    ServiceFaultKind kind = ServiceFaultKind::kNone;

    /** Stall duration for kWorkerStall. */
    double stall_ms = 0.0;
};

/** Chaos mix knobs. */
struct ChaosOptions
{
    uint64_t seed = 1;

    /** Probability a job's first attempt stalls its worker. */
    double p_stall = 0.0;

    /** Probability a job's first attempt throws. */
    double p_throw = 0.0;

    /** Stall duration (must exceed the watchdog stall timeout). */
    double stall_ms = 100.0;

    /**
     * Inject only on attempt 0, so a retried job runs clean and the
     * recovery path is observable end-to-end. False makes every attempt
     * of a chosen job fault (exercises attempt exhaustion).
     */
    bool first_attempt_only = true;
};

/** Deterministic per-(job, attempt) fault plan. */
class ChaosPlan
{
  public:
    explicit ChaosPlan(ChaosOptions options = {}) : options_(options) {}

    /**
     * The fault (possibly kNone) for attempt `attempt` of the job with
     * admission sequence number `job_seq`. Pure function of
     * (seed, job_seq, attempt) — counter-based like the engine's RNG
     * streams, so the plan never depends on scheduling.
     */
    ServiceFault at(uint64_t job_seq, int attempt) const;

    /** Count of jobs in [0, njobs) whose first attempt faults. */
    size_t plannedFaults(uint64_t njobs) const;

    const ChaosOptions& options() const { return options_; }

  private:
    ChaosOptions options_;
};

/**
 * Truncate the last `bytes` bytes of a file (simulates a crash torn
 * tail on a journal). Throws UserError when the file cannot be opened;
 * truncating more than the file holds empties it.
 */
void chopFileTail(const std::string& path, size_t bytes);

/** One adversarial wire payload and what the service must do with it. */
struct AdversarialPayload
{
    std::string payload;

    /**
     * True: the line must be rejected with a typed UserError
     * (kBadRequest or kQasmSyntax). False: the line may parse — the
     * requirement is only that nothing crashes, throws untyped, or
     * trips ASan.
     */
    bool must_fail = true;

    const char* why = "";
};

/**
 * The malformed-input corpus: truncated documents, deep nesting,
 * duplicate keys, bad numbers, invalid UTF-8/escapes, wrong-typed
 * fields, hostile sizes. Shared by the corpus test and the chaos
 * harness's wire-fuzz pass.
 */
const std::vector<AdversarialPayload>& adversarialWireCorpus();

} // namespace resilience
} // namespace qa

#endif // QA_RESILIENCE_CHAOS_HPP
