/**
 * @file
 * Circuit breaker for service admission: sheds load with a typed
 * rejection (ErrorCode::kShedding) when the service is demonstrably
 * unhealthy, instead of queueing work that will fail or time out.
 *
 * Classic three-state machine:
 *  - **closed**: all admissions pass; outcomes feed a sliding window.
 *    The breaker trips when the window's failure rate crosses the
 *    threshold (with a minimum sample count, so one early failure
 *    cannot trip an idle service) or when a dispatched job waited
 *    longer in the queue than the latency threshold.
 *  - **open**: admissions are shed until the cooldown elapses.
 *  - **half-open**: a bounded number of probe jobs are admitted; a
 *    probe success closes the breaker (window reset), a probe failure
 *    re-opens it and restarts the cooldown.
 *
 * Time is read through the Clock abstraction so the cooldown path is
 * unit-testable with a ManualClock, no real sleeps.
 */
#ifndef QA_RESILIENCE_BREAKER_HPP
#define QA_RESILIENCE_BREAKER_HPP

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/clock.hpp"

namespace qa
{
namespace resilience
{

/** Breaker thresholds; `enabled = false` makes every call a no-op. */
struct BreakerOptions
{
    bool enabled = false;

    /** Sliding window of recent job outcomes. */
    size_t window = 64;

    /** Outcomes required before the failure rate can trip. */
    size_t min_samples = 16;

    /** Trip when window failure rate reaches this fraction. */
    double failure_threshold = 0.5;

    /** Trip when a dispatched job queued longer than this; <= 0 off. */
    double queue_latency_threshold_ms = 0.0;

    /** Time the breaker stays open before probing. */
    double open_cooldown_ms = 1000.0;

    /** Probe admissions allowed per half-open episode. */
    int half_open_probes = 1;
};

class CircuitBreaker
{
  public:
    enum class State
    {
        kClosed,
        kOpen,
        kHalfOpen
    };

    /** `clock` == nullptr uses the real steady clock. */
    explicit CircuitBreaker(BreakerOptions options = {},
                            Clock* clock = nullptr);

    /**
     * Admission check. False means shed this submission (respond
     * kShedding); the shed counter is bumped. Open -> half-open
     * transition happens here once the cooldown has elapsed.
     */
    bool tryAdmit();

    /** Feed a completed job's outcome into the window. */
    void recordSuccess();
    void recordFailure();

    /** Feed the queue wait of a job at dispatch (latency trip input). */
    void observeQueueWait(double queue_ms);

    State state() const;

    /**
     * How long a shed caller should wait before resubmitting, derived
     * from the breaker's own timeline: the remaining open cooldown when
     * open, a quarter cooldown when half-open (a probe is already in
     * flight; its outcome decides soon), and 0 when closed (any shed
     * the caller saw was raced; resubmit immediately).
     */
    double retryAfterMs() const;

    /** Monotonic counters, one consistent snapshot. */
    struct Stats
    {
        State state = State::kClosed;
        uint64_t shed = 0;  ///< Admissions refused.
        uint64_t opens = 0; ///< Times the breaker tripped open.
        size_t window_samples = 0;
        size_t window_failures = 0;
    };
    Stats stats() const;

  private:
    void tripLocked();
    double failureRateLocked() const;

    BreakerOptions options_;
    Clock& clock_;

    mutable std::mutex mutex_;
    State state_ = State::kClosed;
    Clock::TimePoint opened_at_{};
    int probes_issued_ = 0;
    std::vector<uint8_t> outcomes_; // ring buffer: 1 = failure
    size_t outcome_head_ = 0;
    size_t outcome_count_ = 0;
    size_t window_failures_ = 0;
    uint64_t shed_ = 0;
    uint64_t opens_ = 0;
};

/** Stable wire/log name of a breaker state. */
const char* breakerStateName(CircuitBreaker::State state);

} // namespace resilience
} // namespace qa

#endif // QA_RESILIENCE_BREAKER_HPP
