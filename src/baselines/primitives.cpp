#include "baselines/primitives.hpp"

#include "common/error.hpp"

namespace qa
{

int
primitiveAssertClassical(AssertedProgram& program, int qubit, int expected)
{
    QA_REQUIRE(expected == 0 || expected == 1,
               "classical expectation must be 0 or 1");
    return program.addCustomAssertion(
        1, 1, [&](const BuildContext& ctx) {
            QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);
            const int anc = ctx.ancillas[0];
            frag.cx(qubit, anc);
            if (expected == 1) frag.x(anc);
            frag.measure(anc, ctx.clbits[0]);
            return frag;
        });
}

int
primitiveAssertSuperposition(AssertedProgram& program, int qubit, bool plus)
{
    return program.addCustomAssertion(
        1, 1, [&](const BuildContext& ctx) {
            QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);
            const int anc = ctx.ancillas[0];
            frag.h(anc);
            frag.cx(anc, qubit); // phase kickback distinguishes |+>/|->
            frag.h(anc);
            if (!plus) frag.x(anc);
            frag.measure(anc, ctx.clbits[0]);
            return frag;
        });
}

int
primitiveAssertParity(AssertedProgram& program,
                      const std::vector<int>& qubits, bool even)
{
    QA_REQUIRE(qubits.size() >= 2, "parity assertion needs >= 2 qubits");
    return program.addCustomAssertion(
        1, 1, [&](const BuildContext& ctx) {
            QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);
            const int anc = ctx.ancillas[0];
            for (int q : qubits) frag.cx(q, anc);
            if (!even) frag.x(anc);
            frag.measure(anc, ctx.clbits[0]);
            return frag;
        });
}

} // namespace qa
