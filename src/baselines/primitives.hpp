/**
 * @file
 * Dynamic assertion primitives baseline [32] (Liu et al., ASPLOS'20):
 * ad-hoc ancilla circuits for exactly three state families — classical,
 * superposition (|+>/|->), and even/odd-parity entanglement. The paper
 * proves these are special cases of its systematic designs (Appendix A,
 * Fig. 13, Fig. 14); the limited menu below is the point of contrast:
 * GHZ-with-coefficients, general entangled states, and mixed states are
 * simply not expressible.
 *
 * All primitives keep the |0> = pass ancilla convention.
 */
#ifndef QA_BASELINES_PRIMITIVES_HPP
#define QA_BASELINES_PRIMITIVES_HPP

#include "core/asserted_program.hpp"

namespace qa
{

/**
 * Assert a qubit is in classical state |expected>.
 * Circuit: CX(q -> ancilla) (+ X on the ancilla when expected == 1).
 */
int primitiveAssertClassical(AssertedProgram& program, int qubit,
                             int expected);

/**
 * Assert a qubit is |+> (plus = true) or |-> (plus = false).
 * Circuit: H(anc); CX(anc -> q); H(anc) — the X-basis NDD check.
 */
int primitiveAssertSuperposition(AssertedProgram& program, int qubit,
                                 bool plus);

/**
 * Assert the qubits are inside the even-parity (or odd-parity) span,
 * e.g. a|00> + b|11>. Circuit: CX chain into the ancilla (+ X for odd).
 */
int primitiveAssertParity(AssertedProgram& program,
                          const std::vector<int>& qubits, bool even);

} // namespace qa

#endif // QA_BASELINES_PRIMITIVES_HPP
