/**
 * @file
 * Statistical assertion baseline [28] (Huang & Martonosi, ISCA'19): set
 * a breakpoint, measure the qubits of interest over many shots, and
 * chi-square-test the histogram against the expected distribution.
 *
 * Two properties the paper contrasts against are reproduced faithfully:
 *  - the measurement is destructive, so the program cannot continue
 *    (the API truncates at the breakpoint and only reports statistics);
 *  - relative phases are invisible in the computational basis, so
 *    phase bugs (e.g. GHZ Bug1) are NOT detected.
 */
#ifndef QA_BASELINES_STAT_ASSERTION_HPP
#define QA_BASELINES_STAT_ASSERTION_HPP

#include <vector>

#include "baselines/chi_square.hpp"
#include "circuit/circuit.hpp"
#include "linalg/vector.hpp"
#include "sim/noise.hpp"

namespace qa
{

/** Outcome of one statistical assertion. */
struct StatAssertionResult
{
    ChiSquareResult test;

    /** True when the histogram deviates at the chosen significance. */
    bool rejected = false;

    /** Observed histogram over the asserted qubits (index = basis). */
    std::vector<long> observed;
};

/** Parameters of a statistical assertion run. */
struct StatAssertionOptions
{
    int shots = 8192;
    uint64_t seed = 12345;
    double alpha = 0.01;
    const NoiseModel* noise = nullptr;
};

/**
 * Break the program after `program_prefix`, measure `qubits` for
 * options.shots shots, and test against `expected_probs` (size
 * 2^qubits.size(), basis-ordered with qubits[0] as MSB).
 */
StatAssertionResult
statAssert(const QuantumCircuit& program_prefix,
           const std::vector<int>& qubits,
           const std::vector<double>& expected_probs,
           const StatAssertionOptions& options = {});

/**
 * Convenience: expected distribution derived from a pure state (this is
 * where phase information is lost, by construction of the scheme).
 */
StatAssertionResult
statAssertState(const QuantumCircuit& program_prefix,
                const std::vector<int>& qubits, const CVector& expected,
                const StatAssertionOptions& options = {});

} // namespace qa

#endif // QA_BASELINES_STAT_ASSERTION_HPP
