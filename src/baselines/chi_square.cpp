#include "baselines/chi_square.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qa
{

namespace
{

/** Lower incomplete gamma P(a, x) via its series expansion (x < a+1). */
double
gammaPSeries(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::abs(term) < std::abs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Upper incomplete gamma Q(a, x) via continued fraction (x >= a+1). */
double
gammaQContinuedFraction(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        const double an = -double(i) * (double(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < tiny) d = tiny;
        c = b + an / c;
        if (std::abs(c) < tiny) c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < 1e-14) break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // namespace

double
regularizedGammaQ(double a, double x)
{
    QA_REQUIRE(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if (x == 0.0) return 1.0;
    if (x < a + 1.0) return 1.0 - gammaPSeries(a, x);
    return gammaQContinuedFraction(a, x);
}

double
chiSquareSurvival(double x, int k)
{
    QA_REQUIRE(k >= 1, "chi-square needs at least one dof");
    if (x <= 0.0) return 1.0;
    return regularizedGammaQ(double(k) / 2.0, x / 2.0);
}

ChiSquareResult
chiSquareTest(const std::vector<long>& observed,
              const std::vector<double>& expected_probs)
{
    QA_REQUIRE(observed.size() == expected_probs.size(),
               "observed/expected arity mismatch");
    long total = 0;
    for (long n : observed) total += n;
    QA_REQUIRE(total > 0, "no observations");

    // Floor impossible cells so observed mass there rejects strongly.
    const double floor = 1e-9;
    double stat = 0.0;
    int cells = 0;
    for (size_t i = 0; i < observed.size(); ++i) {
        double p = expected_probs[i];
        if (p < floor && observed[i] == 0) continue; // pool empty cells
        p = std::max(p, floor);
        const double expected = p * double(total);
        const double diff = double(observed[i]) - expected;
        stat += diff * diff / expected;
        ++cells;
    }

    ChiSquareResult result;
    result.statistic = stat;
    result.dof = std::max(cells - 1, 1);
    result.p_value = chiSquareSurvival(stat, result.dof);
    return result;
}

} // namespace qa
