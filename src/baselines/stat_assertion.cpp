#include "baselines/stat_assertion.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace qa
{

StatAssertionResult
statAssert(const QuantumCircuit& program_prefix,
           const std::vector<int>& qubits,
           const std::vector<double>& expected_probs,
           const StatAssertionOptions& options)
{
    const size_t dim = size_t(1) << qubits.size();
    QA_REQUIRE(expected_probs.size() == dim,
               "expected distribution arity mismatch");

    // Truncate-and-measure: append destructive measurements of the
    // asserted qubits and histogram the outcomes.
    QuantumCircuit breakpoint(program_prefix.numQubits(),
                              int(qubits.size()));
    std::vector<int> ident;
    for (int q = 0; q < program_prefix.numQubits(); ++q) {
        ident.push_back(q);
    }
    breakpoint.compose(program_prefix, ident);
    for (size_t i = 0; i < qubits.size(); ++i) {
        breakpoint.measure(qubits[i], int(i));
    }

    SimOptions sim;
    sim.shots = options.shots;
    sim.seed = options.seed;
    sim.noise = options.noise;
    const Counts counts = runShots(breakpoint, sim);

    StatAssertionResult result;
    result.observed.assign(dim, 0);
    for (const auto& [bits, n] : counts.map) {
        size_t index = 0;
        for (size_t i = 0; i < qubits.size(); ++i) {
            if (bits[i] == '1') {
                index |= size_t(1) << (qubits.size() - 1 - i);
            }
        }
        result.observed[index] += n;
    }

    result.test = chiSquareTest(result.observed, expected_probs);
    result.rejected = result.test.p_value < options.alpha;
    return result;
}

StatAssertionResult
statAssertState(const QuantumCircuit& program_prefix,
                const std::vector<int>& qubits, const CVector& expected,
                const StatAssertionOptions& options)
{
    const CVector v = expected.normalized();
    std::vector<double> probs(v.dim());
    for (size_t i = 0; i < v.dim(); ++i) probs[i] = std::norm(v[i]);
    return statAssert(program_prefix, qubits, probs, options);
}

} // namespace qa
