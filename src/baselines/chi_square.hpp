/**
 * @file
 * Pearson chi-square goodness-of-fit test, the statistical engine behind
 * the Stat baseline [28] (Huang & Martonosi, ISCA'19).
 */
#ifndef QA_BASELINES_CHI_SQUARE_HPP
#define QA_BASELINES_CHI_SQUARE_HPP

#include <vector>

namespace qa
{

/** Result of a chi-square goodness-of-fit test. */
struct ChiSquareResult
{
    double statistic = 0.0;
    int dof = 0;
    double p_value = 1.0;
};

/**
 * Pearson test of observed counts against expected probabilities.
 * Expected cells with negligible probability are pooled; observed mass
 * in zero-probability cells is handled by assigning those cells a tiny
 * floor (so impossible outcomes strongly reject).
 */
ChiSquareResult chiSquareTest(const std::vector<long>& observed,
                              const std::vector<double>& expected_probs);

/** Upper tail P(X >= x) of a chi-square distribution with k dof. */
double chiSquareSurvival(double x, int k);

/** Regularized upper incomplete gamma Q(a, x). */
double regularizedGammaQ(double a, double x);

} // namespace qa

#endif // QA_BASELINES_CHI_SQUARE_HPP
