/**
 * @file
 * Tests for the transpiler: basis lowering and peephole optimization,
 * including the CZ-H rewrite that produces the paper's Fig. 14 circuit.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/stdgates.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/unitary_synth.hpp"
#include "test_util.hpp"
#include "transpile/lower.hpp"
#include "transpile/peephole.hpp"

namespace qa
{
namespace
{

TEST(LowerTest, NamedGatesToBasis)
{
    QuantumCircuit qc(3);
    qc.cz(0, 1);
    qc.swap(1, 2);
    qc.ccx(0, 1, 2);
    qc.crz(0, 2, 0.7);
    qc.cp(1, 2, 0.4);
    qc.cu3(0, 1, 0.5, 0.6, 0.7);
    qc.ccrz(0, 1, 2, 0.9);
    qc.cy(0, 2);
    qc.ch(1, 0);

    QuantumCircuit low = lowerToBasis(qc);
    EXPECT_TRUE(isBasisLevel(low));
    EXPECT_TRUE(circuitUnitary(low).equalsUpToPhase(circuitUnitary(qc),
                                                    1e-7));
}

TEST(LowerTest, KnownCosts)
{
    QuantumCircuit sw(2);
    sw.swap(0, 1);
    EXPECT_EQ(lowerToBasis(sw).countCx(), 3);

    QuantumCircuit tof(3);
    tof.ccx(0, 1, 2);
    EXPECT_EQ(lowerToBasis(tof).countCx(), 6);

    QuantumCircuit crz(2);
    crz.crz(0, 1, 0.3);
    EXPECT_EQ(lowerToBasis(crz).countCx(), 2);
}

TEST(LowerTest, OpaqueUnitariesSynthesized)
{
    Rng rng(3);
    QuantumCircuit qc(2);
    qc.unitary(randomUnitary(4, rng), {0, 1});
    QuantumCircuit low = lowerToBasis(qc);
    EXPECT_TRUE(isBasisLevel(low));
    EXPECT_TRUE(circuitUnitary(low).equalsUpToPhase(circuitUnitary(qc),
                                                    1e-6));
}

TEST(LowerTest, MeasurementsPassThrough)
{
    QuantumCircuit qc(2, 2);
    qc.cz(0, 1);
    qc.measure(0, 0);
    qc.reset(1);
    QuantumCircuit low = lowerToBasis(qc);
    EXPECT_EQ(low.countMeasure(), 1);
    EXPECT_TRUE(isBasisLevel(low));
}

TEST(PeepholeTest, CancelsInversePairs)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(0, 1);
    qc.x(1);
    qc.x(1);
    QuantumCircuit opt = peepholeOptimize(qc);
    EXPECT_EQ(opt.size(), 0u);
}

TEST(PeepholeTest, MergesAdjacentSingleQubitGates)
{
    QuantumCircuit qc(1);
    qc.rz(0, 0.3);
    qc.rz(0, 0.4);
    qc.ry(0, 0.2);
    QuantumCircuit opt = peepholeOptimize(qc);
    EXPECT_EQ(opt.size(), 1u);
    EXPECT_TRUE(circuitUnitary(opt).equalsUpToPhase(circuitUnitary(qc),
                                                    1e-10));
}

TEST(PeepholeTest, DoesNotMergeAcrossBlockingOps)
{
    QuantumCircuit qc(2, 1);
    qc.h(0);
    qc.cx(0, 1);
    qc.h(0); // separated by the CX: must not cancel with the first h
    QuantumCircuit opt = peepholeOptimize(qc);
    EXPECT_EQ(opt.size(), 3u);

    QuantumCircuit qm(1, 1);
    qm.h(0);
    qm.measure(0, 0);
    qm.h(0);
    EXPECT_EQ(peepholeOptimize(qm).size(), 3u);
}

TEST(PeepholeTest, CzHRunRewrite)
{
    // The NDD parity check: H CZ CZ CZ H -> three CX onto the ancilla.
    QuantumCircuit qc(4);
    qc.h(0);
    qc.cz(0, 1);
    qc.cz(0, 2);
    qc.cz(0, 3);
    qc.h(0);
    QuantumCircuit opt = peepholeOptimize(qc);
    EXPECT_EQ(opt.countCx(), 3);
    EXPECT_EQ(opt.countSingleQubit(), 0);
    EXPECT_TRUE(circuitUnitary(opt).equalsUpToPhase(circuitUnitary(qc),
                                                    1e-9));
}

TEST(PeepholeTest, CzHSingle)
{
    QuantumCircuit qc(2);
    qc.h(1);
    qc.cz(0, 1);
    qc.h(1);
    QuantumCircuit opt = peepholeOptimize(qc);
    EXPECT_EQ(opt.countCx(), 1);
    EXPECT_EQ(opt.countSingleQubit(), 0);
}

TEST(PeepholeTest, CzHRewriteRespectsInterveningOps)
{
    QuantumCircuit qc(2);
    qc.h(1);
    qc.cz(0, 1);
    qc.x(1); // blocks the sandwich
    qc.h(1);
    QuantumCircuit opt = peepholeOptimize(qc);
    EXPECT_EQ(opt.countGates("cz"), 1);
    EXPECT_TRUE(circuitUnitary(opt).equalsUpToPhase(circuitUnitary(qc),
                                                    1e-9));
}

TEST(PeepholeTest, RandomCircuitsPreserved)
{
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        QuantumCircuit qc(3);
        for (int g = 0; g < 15; ++g) {
            const int kind = int(rng.index(6));
            const int a = int(rng.index(3));
            int b = int(rng.index(3));
            if (b == a) b = (b + 1) % 3;
            switch (kind) {
              case 0: qc.h(a); break;
              case 1: qc.t(a); break;
              case 2:
                qc.rz(a, rng.uniform(-1, 1));
                break;
              case 3: qc.cx(a, b); break;
              case 4: qc.cz(a, b); break;
              case 5: qc.swap(a, b); break;
            }
        }
        QuantumCircuit opt = optimizeAndLower(qc);
        EXPECT_TRUE(isBasisLevel(opt));
        EXPECT_TRUE(circuitUnitary(opt).equalsUpToPhase(
            circuitUnitary(qc), 1e-7))
            << "trial " << trial;
        EXPECT_LE(opt.size(), lowerToBasis(qc).size());
    }
}

TEST(CircuitCostTest, ReportsLoweredMetrics)
{
    QuantumCircuit qc(3, 1);
    qc.h(0);
    qc.swap(0, 1); // 3 CX after lowering
    qc.measure(2, 0);
    CircuitCost cost = circuitCost(qc);
    EXPECT_EQ(cost.cx, 3);
    EXPECT_EQ(cost.sg, 1);
    EXPECT_EQ(cost.measure, 1);
}

} // namespace
} // namespace qa
