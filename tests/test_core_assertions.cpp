/**
 * @file
 * Functional tests of the assertion designs: pass/fail semantics for
 * pure, mixed, and approximate assertions across every design and rank
 * regime, non-destructiveness, entanglement preservation, the SWAP
 * state-correction property, auto design selection, and the paper's
 * headline gate counts.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "common/error.hpp"
#include "core/asserted_program.hpp"
#include "core/runner.hpp"
#include "linalg/gram_schmidt.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

/** Prepare `psi` as the program and assert `set` with `design`. */
double
errorProbability(const CVector& program_state, const StateSet& set,
                 AssertionDesign design)
{
    AssertedProgram prog(prepareState(program_state));
    std::vector<int> qubits;
    for (int q = 0; q < prog.numProgramQubits(); ++q) qubits.push_back(q);
    prog.assertState(qubits, set, design);
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    return outcome.slot_error_prob[0];
}

class DesignTest : public ::testing::TestWithParam<AssertionDesign>
{};

TEST_P(DesignTest, CorrectPureStatePasses)
{
    Rng rng(300);
    for (int n : {1, 2, 3}) {
        CVector psi = randomState(n, rng);
        EXPECT_NEAR(errorProbability(psi, StateSet::pure(psi), GetParam()),
                    0.0, 1e-7)
            << "n = " << n;
    }
}

TEST_P(DesignTest, OrthogonalPureStateAlwaysFails)
{
    Rng rng(301);
    for (int n : {1, 2, 3}) {
        CVector psi = randomState(n, rng);
        auto basis = completeBasis({psi}, size_t(1) << n);
        EXPECT_NEAR(errorProbability(basis[1], StateSet::pure(psi),
                                     GetParam()),
                    1.0, 1e-7)
            << "n = " << n;
    }
}

TEST_P(DesignTest, WrongStateFailsWithOverlapProbability)
{
    // Error probability is exactly 1 - |<psi|phi>|^2 for pure assertion.
    Rng rng(302);
    for (int trial = 0; trial < 3; ++trial) {
        CVector asserted = randomState(2, rng);
        CVector actual = randomState(2, rng);
        const double overlap = fidelity(asserted, actual);
        EXPECT_NEAR(errorProbability(actual, StateSet::pure(asserted),
                                     GetParam()),
                    1.0 - overlap, 1e-7)
            << "trial " << trial;
    }
}

TEST_P(DesignTest, MemberOfApproximateSetPasses)
{
    // Membership: any state in the span passes, including combinations.
    std::vector<CVector> set = {CVector::basisState(8, 0),
                                CVector::basisState(8, 7)};
    EXPECT_NEAR(errorProbability(algos::ghzVector(3),
                                 StateSet::approximate(set), GetParam()),
                0.0, 1e-7);
    EXPECT_NEAR(errorProbability(CVector::basisState(8, 7),
                                 StateSet::approximate(set), GetParam()),
                0.0, 1e-7);
}

TEST_P(DesignTest, NonMemberOfApproximateSetFails)
{
    std::vector<CVector> set = {CVector::basisState(8, 0),
                                CVector::basisState(8, 7)};
    // |011> is orthogonal to the span: always caught.
    EXPECT_NEAR(errorProbability(CVector::basisState(8, 3),
                                 StateSet::approximate(set), GetParam()),
                1.0, 1e-7);
    // A half-in/half-out state is caught with probability 1/2.
    CVector half(8);
    half[0] = half[3] = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(errorProbability(half, StateSet::approximate(set),
                                 GetParam()),
                0.5, 1e-7);
}

TEST_P(DesignTest, RankRegimeSweep)
{
    // Every rank 1..2^n-1 must be assertable; states inside the subspace
    // pass, orthogonal states fail.
    const int n = 3;
    const size_t dim = 8;
    Rng rng(303);
    for (size_t t = 1; t < dim; ++t) {
        std::vector<CVector> seed;
        for (size_t i = 0; i < t; ++i) seed.push_back(randomState(n, rng));
        std::vector<CVector> basis = orthonormalize(seed);
        while (basis.size() < t) {
            basis.push_back(randomState(n, rng));
            basis = orthonormalize(basis);
        }
        const StateSet set = StateSet::approximate(basis);

        // A random superposition inside the subspace.
        CVector inside(dim);
        for (const CVector& b : basis) {
            inside += b * Complex(rng.normal(), rng.normal());
        }
        inside = inside.normalized();
        EXPECT_NEAR(errorProbability(inside, set, GetParam()), 0.0, 1e-6)
            << "t = " << t;

        // A state in the orthogonal complement.
        const std::vector<CVector> full = completeBasis(basis, dim);
        EXPECT_NEAR(errorProbability(full[t], set, GetParam()), 1.0, 1e-6)
            << "t = " << t;
    }
}

TEST_P(DesignTest, FullRankIsUnassertable)
{
    std::vector<CVector> everything;
    for (size_t i = 0; i < 4; ++i) {
        everything.push_back(CVector::basisState(4, i));
    }
    AssertedProgram prog(algos::bellPrep(algos::BellKind::kPhiPlus));
    EXPECT_THROW(prog.assertState({0, 1},
                                  StateSet::approximate(everything),
                                  GetParam()),
                 UserError);
}

TEST_P(DesignTest, NonDestructiveOnPass)
{
    // Asserting the correct state twice: the second assertion must also
    // pass with certainty (the state survived the first).
    Rng rng(304);
    CVector psi = randomState(2, rng);
    AssertedProgram prog(prepareState(psi));
    prog.assertState({0, 1}, StateSet::pure(psi), GetParam());
    prog.assertState({0, 1}, StateSet::pure(psi), GetParam());
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_NEAR(outcome.slot_error_prob[0], 0.0, 1e-7);
    EXPECT_NEAR(outcome.slot_error_prob[1], 0.0, 1e-7);
    EXPECT_NEAR(outcome.pass_prob, 1.0, 1e-7);
}

TEST_P(DesignTest, MixedAssertionPreservesEntanglement)
{
    // GHZ program; assert the reduced state of qubits (1, 2); then a
    // precise 3-qubit assertion must still pass: the entanglement with
    // qubit 0 survived the mixed assertion.
    const CVector ghz = algos::ghzVector(3);
    const CMatrix rho23 = partialTrace(densityFromPure(ghz), {1, 2});

    AssertedProgram prog(algos::ghzPrep(3));
    prog.assertState({1, 2}, StateSet::mixed(rho23), GetParam());
    prog.assertState({0, 1, 2}, StateSet::pure(ghz),
                     AssertionDesign::kSwap);
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_NEAR(outcome.slot_error_prob[0], 0.0, 1e-7);
    EXPECT_NEAR(outcome.slot_error_prob[1], 0.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignTest,
    ::testing::Values(AssertionDesign::kSwap, AssertionDesign::kOr,
                      AssertionDesign::kNdd, AssertionDesign::kProq),
    [](const ::testing::TestParamInfo<AssertionDesign>& param_info) {
        switch (param_info.param) {
          case AssertionDesign::kSwap: return "Swap";
          case AssertionDesign::kOr: return "Or";
          case AssertionDesign::kNdd: return "Ndd";
          case AssertionDesign::kProq: return "Proq";
          default: return "Other";
        }
    });

TEST(SwapPlacementTest, AllFourVariantsAgree)
{
    Rng rng(305);
    const CVector psi = randomState(2, rng);
    const CVector wrong = randomState(2, rng);
    const double expected = 1.0 - fidelity(psi, wrong);
    for (SwapPlacement placement :
         {SwapPlacement::kInvBeforePrepAfter,
          SwapPlacement::kInvBeforePrepBefore,
          SwapPlacement::kInvAfterPrepBefore,
          SwapPlacement::kInvAfterPrepAfter}) {
        AssertedProgram prog(prepareState(wrong));
        prog.assertState({0, 1}, StateSet::pure(psi),
                         AssertionDesign::kSwap, placement);
        const AssertionOutcomeExact outcome = runAssertedExact(prog);
        EXPECT_NEAR(outcome.slot_error_prob[0], expected, 1e-7);
    }
}

TEST(SwapPlacementTest, CorrectionProperty)
{
    // The SWAP design "corrects" the tested qubits to the asserted
    // state even when the assertion fails (Sec. IV-E contrast): a
    // follow-up assertion of the same state always passes.
    Rng rng(306);
    const CVector psi = randomState(2, rng);
    const CVector wrong = randomState(2, rng);
    AssertedProgram prog(prepareState(wrong));
    prog.assertState({0, 1}, StateSet::pure(psi), AssertionDesign::kSwap);
    prog.assertState({0, 1}, StateSet::pure(psi), AssertionDesign::kSwap);
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_GT(outcome.slot_error_prob[0], 0.1);
    EXPECT_NEAR(outcome.slot_error_prob[1], 0.0, 1e-7);
}

TEST(SwapPlacementTest, NddDoesNotCorrect)
{
    // NDD projects instead of replacing: after a failed NDD assertion
    // the state is the projection onto the incorrect subspace, so a
    // follow-up assertion fails deterministically on that branch.
    CVector psi = CVector::basisState(4, 0);
    CVector wrong(4);
    wrong[0] = std::sqrt(0.5);
    wrong[3] = std::sqrt(0.5);
    AssertedProgram prog(prepareState(wrong));
    prog.assertState({0, 1}, StateSet::pure(psi), AssertionDesign::kNdd);
    prog.assertState({0, 1}, StateSet::pure(psi), AssertionDesign::kNdd);
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_NEAR(outcome.slot_error_prob[0], 0.5, 1e-7);
    // Second slot errors exactly when the first did.
    EXPECT_NEAR(outcome.slot_error_prob[1], 0.5, 1e-7);
}

TEST(AutoSelectionTest, PicksCheapestDesign)
{
    const StateSet parity_set = StateSet::approximate(
        {algos::ghzVector(3),
         [] {
             CVector v(8);
             v[1] = v[6] = 1.0 / std::sqrt(2.0);
             return v;
         }(),
         [] {
             CVector v(8);
             v[2] = v[5] = 1.0 / std::sqrt(2.0);
             return v;
         }(),
         [] {
             CVector v(8);
             v[3] = v[4] = 1.0 / std::sqrt(2.0);
             return v;
         }()});

    AssertedProgram prog(algos::ghzPrep(3));
    prog.assertState({0, 1, 2}, parity_set, AssertionDesign::kAuto);
    const auto& slot = prog.slots()[0];
    // The parity set's NDD circuit costs 3 CX; nothing beats it.
    EXPECT_EQ(slot.design, AssertionDesign::kNdd);
    EXPECT_EQ(slot.cost.cx, 3);

    int best = estimateAssertionCost(parity_set, AssertionDesign::kSwap).cx;
    best = std::min(best,
                    estimateAssertionCost(parity_set,
                                          AssertionDesign::kOr).cx);
    EXPECT_LE(slot.cost.cx, best);
}

TEST(CostTest, PaperTableOneNumbers)
{
    const CVector ghz = algos::ghzVector(3);
    const CMatrix rho23 = partialTrace(densityFromPure(ghz), {1, 2});

    CircuitCost precise =
        estimateAssertionCost(StateSet::pure(ghz), AssertionDesign::kSwap);
    EXPECT_EQ(precise.cx, 10);
    EXPECT_EQ(precise.sg, 2);
    EXPECT_EQ(precise.ancilla, 3);
    EXPECT_EQ(precise.measure, 3);

    CircuitCost mixed = estimateAssertionCost(StateSet::mixed(rho23),
                                              AssertionDesign::kSwap);
    EXPECT_EQ(mixed.cx, 4);
    EXPECT_EQ(mixed.sg, 0);
    EXPECT_EQ(mixed.ancilla, 1);
    EXPECT_EQ(mixed.measure, 1);

    CircuitCost approx2 = estimateAssertionCost(
        StateSet::approximate(
            {CVector::basisState(8, 0), CVector::basisState(8, 7)}),
        AssertionDesign::kSwap);
    EXPECT_EQ(approx2.cx, 8);

    CircuitCost approx4 = estimateAssertionCost(
        StateSet::approximate(
            {CVector::basisState(8, 0), CVector::basisState(8, 3),
             CVector::basisState(8, 4), CVector::basisState(8, 7)}),
        AssertionDesign::kSwap);
    EXPECT_EQ(approx4.cx, 4);

    CircuitCost proq =
        estimateAssertionCost(StateSet::pure(ghz), AssertionDesign::kProq);
    EXPECT_EQ(proq.cx, 4);
    EXPECT_EQ(proq.sg, 2);
    EXPECT_EQ(proq.ancilla, 0);
    EXPECT_EQ(proq.measure, 3);
}

TEST(AssertedProgramTest, SlotBookkeeping)
{
    AssertedProgram prog(algos::ghzPrep(3));
    const int s0 = prog.assertState({0, 1, 2},
                                    StateSet::pure(algos::ghzVector(3)),
                                    AssertionDesign::kSwap);
    const int s1 = prog.assertState(
        {1, 2},
        StateSet::mixed(partialTrace(
            densityFromPure(algos::ghzVector(3)), {1, 2})),
        AssertionDesign::kSwap);
    prog.measureProgram();

    EXPECT_EQ(s0, 0);
    EXPECT_EQ(s1, 1);
    ASSERT_EQ(prog.slots().size(), 2u);
    EXPECT_EQ(prog.slots()[0].ancillas.size(), 3u);
    EXPECT_EQ(prog.slots()[1].ancillas.size(), 1u);
    EXPECT_EQ(prog.programClbits().size(), 3u);
    EXPECT_EQ(prog.assertionClbits().size(), 4u);

    // All clbits distinct.
    std::vector<int> all = prog.assertionClbits();
    all.insert(all.end(), prog.programClbits().begin(),
               prog.programClbits().end());
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(AssertedProgramTest, Validation)
{
    AssertedProgram prog(algos::ghzPrep(3));
    EXPECT_THROW(prog.assertState({0}, StateSet::pure(algos::ghzVector(3))),
                 UserError);
    EXPECT_THROW(prog.assertState({0, 1, 5},
                                  StateSet::pure(algos::ghzVector(3))),
                 UserError);

    QuantumCircuit measured(1, 1);
    measured.measure(0, 0);
    EXPECT_THROW(AssertedProgram{measured}, UserError);
}

TEST(AssertedProgramTest, PostSelectionFiltersErrors)
{
    // Program in superposition of correct/incorrect: post-selected
    // program counts contain only the asserted state.
    CVector half(4);
    half[0] = half[1] = 1.0 / std::sqrt(2.0); // (|00> + |01>)/sqrt2
    AssertedProgram prog(prepareState(half));
    prog.assertState({0, 1}, StateSet::pure(CVector::basisState(4, 0)),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_NEAR(outcome.slot_error_prob[0], 0.5, 1e-7);
    EXPECT_NEAR(outcome.program_dist_passed.probability("00"), 0.5, 1e-7);
    EXPECT_NEAR(outcome.program_dist_passed.probability("01"), 0.0, 1e-7);
}

TEST(AssertedProgramTest, SampledRunAgreesWithExact)
{
    AssertedProgram prog(algos::ghzPrep(3, /*bug=*/2));
    prog.assertState({0, 1, 2}, StateSet::pure(algos::ghzVector(3)),
                     AssertionDesign::kSwap);
    prog.measureProgram();

    const AssertionOutcomeExact exact = runAssertedExact(prog);
    SimOptions options;
    options.shots = 20000;
    options.seed = 424242;
    const AssertionOutcome sampled = runAsserted(prog, options);
    EXPECT_NEAR(sampled.slot_error_rate[0], exact.slot_error_prob[0],
                0.02);
    EXPECT_NEAR(sampled.pass_rate, exact.pass_prob, 0.02);
}

} // namespace
} // namespace qa
