/**
 * @file
 * Noise-model tests: channel semantics, trajectory-vs-exact agreement
 * per channel family, and the noise behaviours the Sec. IX-B
 * reproduction depends on (asymmetric readout justifying the |0>=pass
 * convention, error-rate floors, filtering).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "common/error.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

TEST(NoiseChannelTest, TrajectoryMatchesExactPerChannel)
{
    // For each channel family, stochastic trajectories through the
    // statevector backend must converge to the exact DM channel.
    struct Case
    {
        const char* name;
        KrausChannel channel;
    };
    const std::vector<Case> cases = {
        {"depolarizing", KrausChannel::depolarizing(0.15)},
        {"amplitude damping", KrausChannel::amplitudeDamping(0.25)},
        {"phase damping", KrausChannel::phaseDamping(0.3)},
        {"bit flip", KrausChannel::bitFlip(0.2)},
        {"phase flip", KrausChannel::phaseFlip(0.2)},
    };
    for (const Case& test_case : cases) {
        // Start from |+> so both diagonal and coherence effects show.
        DensityState exact(densityFromPure(
            CVector{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)}));
        exact.applyKraus(test_case.channel, 0);

        Rng rng(99);
        CMatrix averaged(2, 2);
        const int trajectories = 60000;
        for (int t = 0; t < trajectories; ++t) {
            Statevector sv(
                CVector{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)});
            sv.applyKrausTrajectory(test_case.channel, 0, rng);
            averaged += sv.reducedDensity(0);
        }
        averaged *= Complex(1.0 / trajectories, 0.0);
        for (size_t r = 0; r < 2; ++r) {
            for (size_t c = 0; c < 2; ++c) {
                EXPECT_NEAR(std::abs(averaged(r, c) - exact.rho()(r, c)),
                            0.0, 0.01)
                    << test_case.name;
            }
        }
    }
}

TEST(NoiseChannelTest, PhaseDampingKillsCoherenceOnly)
{
    DensityState state(densityFromPure(
        CVector{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)}));
    state.applyKraus(KrausChannel::phaseDamping(1.0), 0);
    EXPECT_NEAR(state.rho()(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(state.rho()(1, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(state.rho()(0, 1)), 0.0, 1e-12);
}

TEST(NoiseModelTest, AsymmetricReadoutFavoursZeroConvention)
{
    // The paper's rationale for |0> = pass: |1> reads out worse. With
    // the melbourne-like model, a |1>-flagging convention would have a
    // strictly higher false-pass rate than the |0> convention's
    // false-fail rate asymmetry.
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    EXPECT_GT(noise.readout_p10, noise.readout_p01);

    QuantumCircuit one(1, 1);
    one.x(0);
    one.measure(0, 0);
    const Distribution d1 = exactDistributionDM(one, &noise);
    QuantumCircuit zero(1, 1);
    zero.measure(0, 0);
    const Distribution d0 = exactDistributionDM(zero, &noise);
    // Reading |1> wrongly (assertion error lost) is more likely than
    // reading |0> wrongly (spurious error).
    EXPECT_GT(d1.probability("0"), d0.probability("1"));
}

TEST(NoiseModelTest, AssertionErrorFloorGrowsWithCircuitSize)
{
    // Under fixed noise, bigger instances of the SAME design have a
    // higher false-positive floor -- the paper's reason to prize cheap
    // assertion circuits. (Across designs the floor also depends on the
    // measurement count, so the comparison is only monotone within a
    // design family.)
    const NoiseModel noise = NoiseModel::depolarizing(0.002, 0.02);
    auto floorFor = [&](int n) {
        AssertedProgram prog(algos::ghzPrep(n));
        std::vector<int> qubits;
        for (int q = 0; q < n; ++q) qubits.push_back(q);
        prog.assertState(qubits, StateSet::pure(algos::ghzVector(n)),
                         AssertionDesign::kSwap);
        SimOptions options;
        options.shots = 8192;
        options.seed = 55;
        options.noise = &noise;
        return runAsserted(prog, options).slot_error_rate[0];
    };
    const double floor3 = floorFor(3);
    const double floor5 = floorFor(5);
    EXPECT_GT(floor3, 0.01); // a floor exists at all
    EXPECT_GT(floor5, floor3 + 0.02);
}

TEST(NoiseModelTest, FilteringNeverHurtsFidelityOfKeptShots)
{
    // Post-selected GHZ output under noise must have higher ideal-mass
    // than the unfiltered output.
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    AssertedProgram prog(algos::ghzPrep(3));
    prog.assertState({0, 1, 2}, StateSet::pure(algos::ghzVector(3)),
                     AssertionDesign::kNdd);
    prog.measureProgram();
    SimOptions options;
    options.shots = 16384;
    options.seed = 66;
    options.noise = &noise;
    const AssertionOutcome out = runAsserted(prog, options);

    auto idealMass = [](const Counts& counts) {
        const Distribution d = counts.toDistribution();
        return d.probability("000") + d.probability("111");
    };
    EXPECT_GT(idealMass(out.program_counts_passed),
              idealMass(out.program_counts) + 0.01);
}

TEST(NoiseModelTest, ExactNoisyBranchingConservesProbability)
{
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    AssertedProgram prog(algos::bellPrep(algos::BellKind::kPhiPlus));
    prog.assertState({0, 1},
                     StateSet::pure(algos::bellVector(
                         algos::BellKind::kPhiPlus)),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    const AssertionOutcomeExact out = runAssertedExact(prog, &noise);
    double total = 0.0;
    for (const auto& [bits, p] : out.raw.probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

/** The validation diagnostic for a model, empty when it passes. */
std::string
validationDiagnostic(const NoiseModel& noise)
{
    try {
        noise.validate();
    } catch (const UserError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kInvalidNoiseModel) << e.what();
        return e.what();
    }
    return "";
}

TEST(NoiseValidationTest, BuiltinModelsValidate)
{
    EXPECT_EQ(validationDiagnostic(NoiseModel{}), "");
    EXPECT_EQ(validationDiagnostic(NoiseModel::ibmqMelbourneLike()), "");
    EXPECT_EQ(validationDiagnostic(NoiseModel::depolarizing(0.01, 0.03)),
              "");
}

TEST(NoiseValidationTest, ReadoutProbabilitiesMustBeProbabilities)
{
    NoiseModel noise;
    noise.readout_p01 = 1.2;
    std::string msg = validationDiagnostic(noise);
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("readout_p01"), std::string::npos) << msg;

    noise = NoiseModel{};
    noise.readout_p10 = -0.1;
    msg = validationDiagnostic(noise);
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("readout_p10"), std::string::npos) << msg;
}

TEST(NoiseValidationTest, NonTracePreservingChannelIsNamed)
{
    // KrausChannel::raw skips the constructor's TP check, standing in
    // for a channel assembled from bad calibration data.
    CMatrix half = CMatrix::identity(2);
    half(0, 0) = 0.5;
    half(1, 1) = 0.5;
    const KrausChannel bad =
        KrausChannel::raw("bad_calibration", {half});
    EXPECT_FALSE(bad.isTracePreserving());

    NoiseModel noise;
    noise.noise_1q.push_back(bad);
    std::string msg = validationDiagnostic(noise);
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("bad_calibration"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1q"), std::string::npos) << msg;

    NoiseModel noise2q;
    noise2q.noise_2q.push_back(bad);
    msg = validationDiagnostic(noise2q);
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("2q"), std::string::npos) << msg;
}

TEST(NoiseValidationTest, EngineValidatesOnUse)
{
    // The shot engine and the exact backend both refuse to run with an
    // invalid model, so bad calibration fails fast instead of skewing
    // results.
    NoiseModel noise = NoiseModel::depolarizing(0.01, 0.03);
    noise.readout_p01 = 2.0;

    QuantumCircuit qc(1, 1);
    qc.h(0);
    qc.measure(0, 0);
    SimOptions options;
    options.shots = 10;
    options.noise = &noise;
    EXPECT_THROW(runShots(qc, options), UserError);
    EXPECT_THROW(exactDistributionDM(qc, &noise), UserError);
}

} // namespace
} // namespace qa
