/**
 * @file
 * Backend subsystem tests: circuit/noise analysis, Pauli-channel
 * recognition, matrix-level Clifford recognition against dense
 * simulation, router capability edges, cross-backend distributional
 * equivalence (chi-square at 4096 shots, deterministic seeds),
 * per-backend bit-determinism across thread counts, resolved-backend
 * cache keys, and insertion-order robustness of the Counts helpers.
 */
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "backend/backend.hpp"
#include "backend/router.hpp"
#include "baselines/chi_square.hpp"
#include "common/error.hpp"
#include "core/runner.hpp"
#include "serve/job.hpp"
#include "sim/engine.hpp"
#include "stab/clifford.hpp"
#include "stab/tableau.hpp"
#include "synth/state_prep.hpp"

namespace qa
{
namespace
{

using namespace algos;
using backend::analyzeCircuit;
using backend::BackendChoice;
using backend::CircuitClass;

/** GHZ state preparation with terminal measurement of every qubit. */
QuantumCircuit
ghzCircuit(int n)
{
    QuantumCircuit qc(n, n);
    qc.h(0);
    for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    qc.measureAll();
    return qc;
}

/**
 * Chi-square check of observed counts against the empirical frequencies
 * of a reference histogram (cells unioned over both). Loose threshold:
 * these are sanity gates against gross distribution bugs, not precision
 * statistics.
 */
void
expectSameDistribution(const Counts& observed, const Counts& reference)
{
    std::vector<std::string> keys;
    for (const auto& [bits, n] : observed.map) keys.push_back(bits);
    for (const auto& [bits, n] : reference.map) {
        if (observed.map.find(bits) == observed.map.end()) {
            keys.push_back(bits);
        }
    }
    std::vector<long> obs;
    std::vector<double> expected;
    for (const std::string& key : keys) {
        const auto o = observed.map.find(key);
        const auto r = reference.map.find(key);
        obs.push_back(o == observed.map.end() ? 0 : long(o->second));
        expected.push_back(
            r == reference.map.end()
                ? 0.0
                : double(r->second) / double(reference.shots));
    }
    const ChiSquareResult chi = chiSquareTest(obs, expected);
    EXPECT_GT(chi.p_value, 1e-4)
        << "distributions differ: chi2=" << chi.statistic
        << " dof=" << chi.dof;
}

Counts
runOn(BackendKind kind, const QuantumCircuit& qc, const NoiseModel* noise,
      int shots = 4096, int threads = 1)
{
    SimOptions options;
    options.shots = shots;
    options.seed = 321;
    options.noise = noise;
    options.num_threads = threads;
    return backend::backendFor(kind).runShots(qc, options);
}

// ---------------------------------------------------------------------
// Analyzer

TEST(AnalyzerTest, GhzIsTerminalClifford)
{
    const backend::CircuitProfile profile = analyzeCircuit(ghzCircuit(4));
    EXPECT_EQ(profile.klass, CircuitClass::kClifford);
    EXPECT_EQ(profile.non_clifford_gates, 0);
    EXPECT_TRUE(profile.terminal_measure_only);
    EXPECT_EQ(profile.terminal_measures.size(), 4u);
    EXPECT_EQ(profile.gates, 4u);
    EXPECT_EQ(profile.measures, 4u);
}

TEST(AnalyzerTest, TGateCountsAsNonClifford)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.t(0);
    qc.cx(0, 1);
    qc.measureAll();
    const backend::CircuitProfile profile = analyzeCircuit(qc);
    EXPECT_EQ(profile.klass, CircuitClass::kCliffordPlusFew);
    EXPECT_EQ(profile.non_clifford_gates, 1);
    ASSERT_EQ(profile.non_clifford_names.size(), 1u);
    EXPECT_EQ(profile.non_clifford_names[0], "t");
}

TEST(AnalyzerTest, CliffordAngleRotationRecognizedByMatrix)
{
    // rz(pi/2) is S up to global phase: Clifford, but only the matrix
    // recognizer can know that — the name check cannot.
    QuantumCircuit qc(1, 1);
    qc.rz(0, M_PI / 2.0);
    qc.measureAll();
    EXPECT_EQ(analyzeCircuit(qc).non_clifford_gates, 0);

    QuantumCircuit generic(1, 1);
    generic.rz(0, 0.3);
    generic.measureAll();
    EXPECT_EQ(analyzeCircuit(generic).non_clifford_gates, 1);
}

TEST(AnalyzerTest, MidCircuitMeasureAndResetBreakTerminalShape)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.measure(0, 0);
    qc.cx(0, 1);
    qc.measure(1, 1);
    EXPECT_FALSE(analyzeCircuit(qc).terminal_measure_only);

    QuantumCircuit with_reset(1, 1);
    with_reset.h(0);
    with_reset.reset(0);
    with_reset.measure(0, 0);
    EXPECT_FALSE(analyzeCircuit(with_reset).terminal_measure_only);
}

TEST(AnalyzerTest, PauliChannelRecognition)
{
    const auto depol =
        backend::recognizePauliChannel(KrausChannel::depolarizing(0.1));
    ASSERT_TRUE(depol.has_value());
    ASSERT_EQ(depol->weights.size(), 4u);
    double total = 0.0;
    for (double w : depol->weights) total += w;
    EXPECT_NEAR(total, 1.0, 1e-9);

    const auto flip =
        backend::recognizePauliChannel(KrausChannel::bitFlip(0.25));
    ASSERT_TRUE(flip.has_value());
    ASSERT_EQ(flip->weights.size(), 2u);

    EXPECT_FALSE(
        backend::recognizePauliChannel(KrausChannel::amplitudeDamping(0.1))
            .has_value());
    EXPECT_FALSE(
        backend::recognizePauliChannel(KrausChannel::phaseDamping(0.1))
            .has_value());
}

TEST(AnalyzerTest, NoiseProfiles)
{
    EXPECT_FALSE(backend::analyzeNoise(nullptr).enabled);

    const NoiseModel depol = NoiseModel::depolarizing(1e-3, 1e-2);
    const backend::NoiseProfile dp = backend::analyzeNoise(&depol);
    EXPECT_TRUE(dp.enabled);
    EXPECT_TRUE(dp.kraus);
    EXPECT_TRUE(dp.pauli_only);

    const NoiseModel melbourne = NoiseModel::ibmqMelbourneLike();
    const backend::NoiseProfile mp = backend::analyzeNoise(&melbourne);
    EXPECT_TRUE(mp.enabled);
    EXPECT_TRUE(mp.kraus);
    EXPECT_FALSE(mp.pauli_only); // amplitude damping is not a Pauli mix
}

// ---------------------------------------------------------------------
// Clifford recognition vs dense simulation

TEST(CliffordActionTest, RecognizedGatesMatchDenseEvolution)
{
    // A Clifford-angle circuit the name check cannot classify: evolve
    // it both on the tableau (via recognized actions) and on the dense
    // statevector, then compare the states.
    QuantumCircuit qc(3);
    qc.h(0);
    qc.rz(0, M_PI / 2.0);  // S up to phase
    qc.cx(0, 1);
    qc.ry(1, M_PI / 2.0);  // maps Z -> X: Clifford
    qc.rx(2, M_PI);        // X up to phase
    qc.cz(1, 2);
    qc.sdg(1);

    StabilizerTableau tableau(3);
    Statevector dense(3);
    for (const Instruction& instr : qc.instructions()) {
        const auto action = recognizeClifford(instr);
        ASSERT_TRUE(action.has_value()) << instr.name;
        tableau.applyClifford(*action, instr.qubits);
        dense.applyGate(instr);
    }
    const CVector from_tableau = tableau.toStatevector();
    const CVector& from_dense = dense.amplitudes();
    // Compare up to global phase via |<a|b>| = 1.
    EXPECT_NEAR(std::abs(from_tableau.inner(from_dense)), 1.0, 1e-9);
}

// ---------------------------------------------------------------------
// Router capability edges

TEST(RouterTest, CliffordCircuitRoutesToStabilizer)
{
    const BackendChoice choice =
        backend::routeShots(ghzCircuit(4), SimOptions{});
    EXPECT_EQ(choice.backend, BackendKind::kStabilizer);
    EXPECT_TRUE(choice.capable);
    EXPECT_FALSE(choice.explicit_request);
    EXPECT_EQ(choice.klass, CircuitClass::kClifford);
}

TEST(RouterTest, TGateFallsBackToStatevector)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.t(0);
    qc.cx(0, 1);
    qc.measureAll();
    const BackendChoice choice = backend::routeShots(qc, SimOptions{});
    EXPECT_EQ(choice.backend, BackendKind::kStatevector);
    EXPECT_TRUE(choice.capable);
    EXPECT_EQ(choice.non_clifford_gates, 1);
}

TEST(RouterTest, PauliNoiseKeepsStabilizer)
{
    const NoiseModel depol = NoiseModel::depolarizing(1e-3, 1e-2);
    SimOptions options;
    options.noise = &depol;
    const BackendChoice choice =
        backend::routeShots(ghzCircuit(4), options);
    EXPECT_EQ(choice.backend, BackendKind::kStabilizer);
}

TEST(RouterTest, NonPauliNoiseForcesDensityOnTerminalCircuit)
{
    const NoiseModel melbourne = NoiseModel::ibmqMelbourneLike();
    SimOptions options;
    options.noise = &melbourne;
    options.shots = 4096;
    const BackendChoice choice =
        backend::routeShots(ghzCircuit(4), options);
    EXPECT_EQ(choice.backend, BackendKind::kDensityMatrix);
    EXPECT_TRUE(choice.capable);
}

TEST(RouterTest, MidCircuitMeasurementExcludesDensity)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.t(0);
    qc.measure(0, 0);
    qc.cx(0, 1);
    qc.measure(1, 1);
    const NoiseModel melbourne = NoiseModel::ibmqMelbourneLike();
    SimOptions options;
    options.noise = &melbourne;
    const BackendChoice choice = backend::routeShots(qc, options);
    EXPECT_EQ(choice.backend, BackendKind::kStatevector);
}

TEST(RouterTest, NaiveFlagForcesStatevector)
{
    SimOptions options;
    options.naive = true;
    const BackendChoice choice =
        backend::routeShots(ghzCircuit(3), options);
    EXPECT_EQ(choice.backend, BackendKind::kStatevector);
    EXPECT_TRUE(choice.capable);
}

TEST(RouterTest, ExplicitRequestIsHonoredAndValidated)
{
    QuantumCircuit t_circuit(1, 1);
    t_circuit.t(0);
    t_circuit.measureAll();

    SimOptions options;
    options.backend = BackendRequest::kStatevector;
    BackendChoice choice = backend::routeShots(ghzCircuit(3), options);
    EXPECT_EQ(choice.backend, BackendKind::kStatevector);
    EXPECT_TRUE(choice.explicit_request);
    EXPECT_TRUE(choice.capable);

    options.backend = BackendRequest::kStabilizer;
    choice = backend::routeShots(t_circuit, options);
    EXPECT_EQ(choice.backend, BackendKind::kStabilizer);
    EXPECT_TRUE(choice.explicit_request);
    EXPECT_FALSE(choice.capable);
    EXPECT_NE(choice.reason.find("non-Clifford"), std::string::npos);

    // prepareRun surfaces the incapable explicit request as a typed
    // kBadRequest instead of running it.
    try {
        backend::prepareRun(t_circuit, options);
        FAIL() << "expected kBadRequest";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
    }

    QuantumCircuit mid(2, 2);
    mid.h(0);
    mid.measure(0, 0);
    mid.cx(0, 1);
    mid.measure(1, 1);
    options.backend = BackendRequest::kDensityMatrix;
    choice = backend::routeShots(mid, options);
    EXPECT_EQ(choice.backend, BackendKind::kDensityMatrix);
    EXPECT_FALSE(choice.capable);
}

TEST(RouterTest, RoutingIsDeterministic)
{
    SimOptions options;
    options.shots = 4096;
    const BackendChoice a = backend::routeShots(ghzCircuit(5), options);
    for (int i = 0; i < 5; ++i) {
        const BackendChoice b =
            backend::routeShots(ghzCircuit(5), options);
        EXPECT_EQ(a.backend, b.backend);
        EXPECT_EQ(a.reason, b.reason);
    }
}

TEST(RouterTest, ExplainReportNamesTheChoice)
{
    const std::string report =
        backend::explainRouting(ghzCircuit(4), SimOptions{});
    EXPECT_NE(report.find("chosen: stabilizer"), std::string::npos);
    EXPECT_NE(report.find("class: clifford"), std::string::npos);
}

// ---------------------------------------------------------------------
// Cross-backend distributional equivalence

TEST(CrossBackendTest, GhzCountsAgreeWithExactDistribution)
{
    const QuantumCircuit qc = ghzCircuit(5);
    const Counts sv = runOn(BackendKind::kStatevector, qc, nullptr);
    const Counts stab = runOn(BackendKind::kStabilizer, qc, nullptr);

    for (const Counts* counts : {&sv, &stab}) {
        ASSERT_EQ(counts->shots, 4096);
        std::vector<long> obs = {0, 0};
        for (const auto& [bits, n] : counts->map) {
            ASSERT_TRUE(bits == "00000" || bits == "11111") << bits;
            obs[bits == "11111" ? 1 : 0] += long(n);
        }
        const ChiSquareResult chi = chiSquareTest(obs, {0.5, 0.5});
        EXPECT_GT(chi.p_value, 1e-4);
    }
    expectSameDistribution(stab, sv);
}

TEST(CrossBackendTest, MidCircuitMeasurementAgrees)
{
    QuantumCircuit qc(2, 3);
    qc.h(0);
    qc.measure(0, 0); // collapses the superposition mid-circuit
    qc.cx(0, 1);
    qc.measure(0, 1);
    qc.measure(1, 2);
    const Counts sv = runOn(BackendKind::kStatevector, qc, nullptr);
    const Counts stab = runOn(BackendKind::kStabilizer, qc, nullptr);
    EXPECT_EQ(sv.map.size(), 2u);
    EXPECT_EQ(stab.map.size(), 2u);
    expectSameDistribution(stab, sv);
}

TEST(CrossBackendTest, ResetAgreesDeterministically)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    qc.reset(0);
    qc.measureAll();
    const Counts sv = runOn(BackendKind::kStatevector, qc, nullptr);
    const Counts stab = runOn(BackendKind::kStabilizer, qc, nullptr);
    // Qubit 0 always reads 0 after the reset; qubit 1 stays random.
    for (const Counts* counts : {&sv, &stab}) {
        for (const auto& [bits, n] : counts->map) {
            EXPECT_EQ(bits[0], '0') << bits;
        }
    }
    expectSameDistribution(stab, sv);
}

TEST(CrossBackendTest, PauliNoiseAgrees)
{
    const NoiseModel depol = NoiseModel::depolarizing(5e-3, 2e-2);
    const QuantumCircuit qc = ghzCircuit(4);
    const Counts sv = runOn(BackendKind::kStatevector, qc, &depol);
    const Counts stab = runOn(BackendKind::kStabilizer, qc, &depol);
    expectSameDistribution(stab, sv);
}

TEST(CrossBackendTest, ReadoutErrorAgrees)
{
    QuantumCircuit qc(1, 1);
    qc.measureAll(); // |0> always; readout flips to 1 w.p. p01
    NoiseModel noise;
    noise.readout_p01 = 0.2;
    const Counts sv = runOn(BackendKind::kStatevector, qc, &noise);
    const Counts stab = runOn(BackendKind::kStabilizer, qc, &noise);
    for (const Counts* counts : {&sv, &stab}) {
        std::vector<long> obs = {0, 0};
        for (const auto& [bits, n] : counts->map) {
            obs[bits == "1" ? 1 : 0] += long(n);
        }
        const ChiSquareResult chi = chiSquareTest(obs, {0.8, 0.2});
        EXPECT_GT(chi.p_value, 1e-4);
    }
}

TEST(CrossBackendTest, DensityMatrixAgreesUnderNonPauliNoise)
{
    const NoiseModel melbourne = NoiseModel::ibmqMelbourneLike();
    const QuantumCircuit qc = ghzCircuit(3);
    const Counts sv = runOn(BackendKind::kStatevector, qc, &melbourne);
    const Counts dm = runOn(BackendKind::kDensityMatrix, qc, &melbourne);
    expectSameDistribution(dm, sv);
}

// ---------------------------------------------------------------------
// Determinism across thread counts (per resolved backend)

TEST(BackendDeterminismTest, StabilizerCountsThreadInvariant)
{
    const NoiseModel depol = NoiseModel::depolarizing(1e-3, 1e-2);
    QuantumCircuit qc = ghzCircuit(4);
    qc.reset(2); // keep a mid-circuit stochastic op in play
    qc.measureAll();
    const Counts one = runOn(BackendKind::kStabilizer, qc, &depol, 512, 1);
    const Counts four = runOn(BackendKind::kStabilizer, qc, &depol, 512, 4);
    EXPECT_EQ(one.map, four.map);
}

TEST(BackendDeterminismTest, DensityCountsThreadInvariant)
{
    const NoiseModel melbourne = NoiseModel::ibmqMelbourneLike();
    const QuantumCircuit qc = ghzCircuit(3);
    const Counts one =
        runOn(BackendKind::kDensityMatrix, qc, &melbourne, 512, 1);
    const Counts four =
        runOn(BackendKind::kDensityMatrix, qc, &melbourne, 512, 4);
    EXPECT_EQ(one.map, four.map);
}

TEST(BackendDeterminismTest, AutoRouteMatchesExplicitBackend)
{
    // qa::runShots auto-routes GHZ to the stabilizer backend; forcing
    // the same backend must reproduce the same counts bit-for-bit.
    const QuantumCircuit qc = ghzCircuit(4);
    SimOptions options;
    options.shots = 512;
    options.seed = 99;
    const Counts routed = runShots(qc, options);
    options.backend = BackendRequest::kStabilizer;
    const Counts forced = runShots(qc, options);
    EXPECT_EQ(routed.map, forced.map);
}

// ---------------------------------------------------------------------
// Serve integration: cache keys, results, policy outcomes

TEST(BackendCacheKeyTest, AutoAndExplicitSameBackendShareKey)
{
    serve::JobSpec auto_spec;
    auto_spec.circuit = ghzCircuit(3);
    serve::JobSpec explicit_spec = auto_spec;
    explicit_spec.backend = BackendRequest::kStabilizer;
    EXPECT_EQ(serve::jobKey(auto_spec), serve::jobKey(explicit_spec));

    serve::JobSpec forced_spec = auto_spec;
    forced_spec.backend = BackendRequest::kStatevector;
    EXPECT_NE(serve::jobKey(auto_spec), serve::jobKey(forced_spec));
}

TEST(BackendCacheKeyTest, JobKeyNeverThrowsOnIncapableRequest)
{
    serve::JobSpec spec;
    QuantumCircuit qc(1, 1);
    qc.t(0);
    qc.measureAll();
    spec.circuit = qc;
    spec.backend = BackendRequest::kStabilizer;
    EXPECT_NO_THROW(serve::jobKey(spec));
    // Executing it is the typed failure.
    EXPECT_THROW(serve::executeJob(spec), UserError);
}

TEST(BackendResultTest, JobResultRecordsResolvedBackend)
{
    serve::JobSpec spec;
    spec.circuit = ghzCircuit(3);
    spec.shots = 256;
    const serve::JobResult clifford = serve::executeJob(spec);
    EXPECT_EQ(clifford.backend.backend, BackendKind::kStabilizer);
    EXPECT_FALSE(clifford.backend.explicit_request);

    QuantumCircuit qc(1, 1);
    qc.t(0);
    qc.measureAll();
    spec.circuit = qc;
    const serve::JobResult general = serve::executeJob(spec);
    EXPECT_EQ(general.backend.backend, BackendKind::kStatevector);
}

TEST(BackendResultTest, PolicyOutcomeRecordsBackend)
{
    AssertedProgram prog(prepareState(ghzVector(3)));
    prog.assertState({0, 1, 2}, StateSet::pure(ghzVector(3)),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    SimOptions options;
    options.shots = 256;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kDiscard;
    const PolicyOutcome outcome = runAssertedPolicy(prog, options, popts);
    EXPECT_EQ(outcome.backend.backend, BackendKind::kStabilizer);
    EXPECT_GT(outcome.shots_accepted, 0);
}

// ---------------------------------------------------------------------
// Counts helpers: insertion order must never matter

TEST(CountsOrderTest, MergeAndMarginalIgnoreInsertionOrder)
{
    const std::vector<std::pair<std::string, int>> entries = {
        {"000", 7}, {"101", 3}, {"011", 5}, {"110", 2}, {"001", 11}};
    Counts forward, shuffled;
    for (const auto& [bits, n] : entries) {
        forward.map[bits] = n;
        forward.shots += n;
    }
    std::vector<std::pair<std::string, int>> reversed(entries.rbegin(),
                                                      entries.rend());
    std::rotate(reversed.begin(), reversed.begin() + 2, reversed.end());
    for (const auto& [bits, n] : reversed) {
        shuffled.map[bits] = n;
        shuffled.shots += n;
    }
    EXPECT_EQ(forward.map, shuffled.map);

    Counts extra;
    extra.map = {{"101", 4}, {"111", 6}};
    extra.shots = 10;
    Counts merged_a = forward;
    mergeCounts(merged_a, extra);
    Counts merged_b = shuffled;
    mergeCounts(merged_b, extra);
    EXPECT_EQ(merged_a.map, merged_b.map);
    EXPECT_EQ(merged_a.shots, merged_b.shots);
    EXPECT_EQ(merged_a.map.at("101"), 7);

    const Counts marg_a = marginalCounts(merged_a, {0, 2});
    const Counts marg_b = marginalCounts(merged_b, {0, 2});
    EXPECT_EQ(marg_a.map, marg_b.map);
}

} // namespace
} // namespace qa
