/**
 * @file
 * Tests for the fault-injection subsystem: fault transform semantics,
 * fault-site validation, campaign determinism across thread counts,
 * analytic detection rates on GHZ/Bell, and debugger localization
 * campaigns.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "common/error.hpp"
#include "inject/campaign.hpp"
#include "inject/fault.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace
{

using namespace algos;

ErrorCode
injectErrorCode(const QuantumCircuit& qc, const FaultSpec& fault)
{
    try {
        injectFault(qc, fault);
    } catch (const UserError& e) {
        return e.code();
    }
    return ErrorCode::kGeneric;
}

TEST(FaultTest, PauliInsertionAfterAddressedGate)
{
    const QuantumCircuit ghz = ghzPrep(3);
    FaultSpec fault;
    fault.kind = FaultKind::kPauliX;
    fault.instr_index = 1; // first cx
    fault.qubit = 1;
    const QuantumCircuit faulted = injectFault(ghz, fault);
    ASSERT_EQ(faulted.size(), ghz.size() + 1);
    EXPECT_EQ(faulted.instructions()[1].name, "cx");
    EXPECT_EQ(faulted.instructions()[2].name, "x");
    EXPECT_EQ(faulted.instructions()[2].qubits[0], 1);
    EXPECT_EQ(fault.describe(), "X@1/q1");
}

TEST(FaultTest, GateDropAndDuplicate)
{
    const QuantumCircuit ghz = ghzPrep(3);
    FaultSpec drop;
    drop.kind = FaultKind::kGateDrop;
    drop.instr_index = 2;
    const QuantumCircuit dropped = injectFault(ghz, drop);
    EXPECT_EQ(dropped.size(), ghz.size() - 1);
    EXPECT_EQ(drop.describe(), "drop@2");

    FaultSpec dup;
    dup.kind = FaultKind::kGateDuplicate;
    dup.instr_index = 2;
    const QuantumCircuit duped = injectFault(ghz, dup);
    ASSERT_EQ(duped.size(), ghz.size() + 1);
    EXPECT_EQ(duped.instructions()[2].name,
              duped.instructions()[3].name);
    EXPECT_EQ(duped.instructions()[2].qubits,
              duped.instructions()[3].qubits);
    // cx twice = identity: dropping and duplicating a cx agree.
    EXPECT_TRUE(finalState(duped).amplitudes().equalsUpToPhase(
        finalState(dropped).amplitudes(), 1e-10));
}

TEST(FaultTest, BitFlipAtPiMatchesPauliX)
{
    const QuantumCircuit ghz = ghzPrep(3);
    FaultSpec x;
    x.kind = FaultKind::kPauliX;
    x.instr_index = 2;
    x.qubit = 2;
    FaultSpec flip;
    flip.kind = FaultKind::kBitFlip;
    flip.instr_index = 2;
    flip.qubit = 2;
    flip.angle = M_PI;
    EXPECT_TRUE(finalState(injectFault(ghz, x))
                    .amplitudes()
                    .equalsUpToPhase(
                        finalState(injectFault(ghz, flip)).amplitudes(),
                        1e-10));
}

TEST(FaultTest, InvalidSitesRaiseTypedErrors)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.measure(0, 0);

    FaultSpec past;
    past.kind = FaultKind::kGateDrop;
    past.instr_index = 99;
    EXPECT_EQ(injectErrorCode(qc, past), ErrorCode::kBadFaultSite);

    FaultSpec on_measure;
    on_measure.kind = FaultKind::kGateDrop;
    on_measure.instr_index = 1;
    EXPECT_EQ(injectErrorCode(qc, on_measure), ErrorCode::kBadFaultSite);

    FaultSpec bad_qubit;
    bad_qubit.kind = FaultKind::kPauliX;
    bad_qubit.instr_index = 0;
    bad_qubit.qubit = 7;
    EXPECT_EQ(injectErrorCode(qc, bad_qubit),
              ErrorCode::kUnsupportedFault);

    FaultSpec no_qubit;
    no_qubit.kind = FaultKind::kPauliZ;
    no_qubit.instr_index = 0;
    EXPECT_EQ(injectErrorCode(qc, no_qubit),
              ErrorCode::kUnsupportedFault);
}

TEST(FaultTest, EnumerationCoversGatesTimesKindsTimesQubits)
{
    // GHZ(3) = one 1q gate + two cx: X/Y/Z give 3 * (1 + 2 + 2) = 15
    // qubit-targeted faults; drop gives one per gate.
    const QuantumCircuit ghz = ghzPrep(3);
    const auto pauli = enumerateFaultSites(
        ghz,
        {FaultKind::kPauliX, FaultKind::kPauliY, FaultKind::kPauliZ});
    EXPECT_EQ(pauli.size(), 15u);
    const auto drops = enumerateFaultSites(ghz, {FaultKind::kGateDrop});
    EXPECT_EQ(drops.size(), 3u);

    // Measurements are not fault sites.
    QuantumCircuit qc(1, 1);
    qc.h(0);
    qc.measure(0, 0);
    EXPECT_EQ(enumerateFaultSites(qc, {FaultKind::kPauliX}).size(), 1u);
}

TEST(FaultTest, StageEnumerationTagsStages)
{
    std::vector<QuantumCircuit> stages;
    QuantumCircuit s0(2), s1(2);
    s0.h(0);
    s1.cx(0, 1);
    stages.push_back(s0);
    stages.push_back(s1);
    const auto faults =
        enumerateStageFaultSites(stages, {FaultKind::kPauliX});
    ASSERT_EQ(faults.size(), 3u);
    EXPECT_EQ(faults[0].stage, 0);
    EXPECT_EQ(faults[1].stage, 1);
    EXPECT_EQ(faults[2].stage, 1);
    EXPECT_EQ(faults[1].describe(), "X@0/q0[stage 1]");
}

/** Field-by-field exact equality of two campaign reports. */
void
expectReportsIdentical(const CampaignReport& a, const CampaignReport& b)
{
    EXPECT_EQ(a.baseline_slot_error, b.baseline_slot_error);
    EXPECT_EQ(a.num_faults, b.num_faults);
    EXPECT_EQ(a.num_detected, b.num_detected);
    EXPECT_EQ(a.num_corrupting, b.num_corrupting);
    EXPECT_EQ(a.num_silent_corrupting, b.num_silent_corrupting);
    EXPECT_EQ(a.slot_detections, b.slot_detections);
    EXPECT_EQ(a.slot_coverage, b.slot_coverage);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].slot_error, b.records[i].slot_error) << i;
        EXPECT_EQ(a.records[i].detecting_slot,
                  b.records[i].detecting_slot)
            << i;
        EXPECT_EQ(a.records[i].detected, b.records[i].detected) << i;
        EXPECT_EQ(a.records[i].output_corrupted,
                  b.records[i].output_corrupted)
            << i;
    }
}

TEST(CampaignTest, SeededSweepIsThreadCountInvariant)
{
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        ghzPrep(3), AssertionDesign::kSwap);
    CampaignOptions options;
    options.shots = 256;
    options.seed = 777;
    options.kinds = {FaultKind::kPauliX, FaultKind::kPauliZ,
                     FaultKind::kGateDrop};

    options.num_threads = 1;
    const CampaignReport serial = runner.run(options);
    options.num_threads = 4;
    const CampaignReport four = runner.run(options);
    options.num_threads = 0; // hardware concurrency
    const CampaignReport hardware = runner.run(options);

    expectReportsIdentical(serial, four);
    expectReportsIdentical(serial, hardware);

    // And re-running with the same seed reproduces the report exactly.
    const CampaignReport again = runner.run(options);
    expectReportsIdentical(hardware, again);
}

TEST(CampaignTest, GhzSinglePauliAnalyticDetectionRates)
{
    // Exact backend: every single Pauli fault on GHZ(3) yields a state
    // orthogonal to GHZ (slot error prob 1), except X right after the
    // initial Hadamard-equivalent on q0, which fixes |+> and is benign.
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        ghzPrep(3), AssertionDesign::kSwap);
    CampaignOptions options;
    options.shots = 0; // exact
    const CampaignReport report = runner.run(options);

    ASSERT_EQ(report.num_faults, 15);
    EXPECT_EQ(report.num_detected, 14);
    EXPECT_NEAR(report.coverage(), 14.0 / 15.0, 1e-12);
    ASSERT_EQ(report.baseline_slot_error.size(), 1u);
    EXPECT_NEAR(report.baseline_slot_error[0], 0.0, 1e-9);

    for (const FaultRecord& record : report.records) {
        const bool benign = record.fault.kind == FaultKind::kPauliX &&
                            record.fault.instr_index == 0;
        if (benign) {
            EXPECT_FALSE(record.detected) << record.fault.describe();
            EXPECT_NEAR(record.slot_error[0], 0.0, 1e-9);
            EXPECT_FALSE(record.output_corrupted);
        } else {
            EXPECT_TRUE(record.detected) << record.fault.describe();
            EXPECT_EQ(record.detecting_slot, 0);
            EXPECT_NEAR(record.slot_error[0], 1.0, 1e-9)
                << record.fault.describe();
        }
    }
    // A phase flip is invisible in the computational-basis output but
    // the assertion still catches it: coverage beats output comparison.
    int z_detected_not_corrupting = 0;
    for (const FaultRecord& record : report.records) {
        if (record.fault.kind == FaultKind::kPauliZ && record.detected &&
            !record.output_corrupted) {
            ++z_detected_not_corrupting;
        }
    }
    EXPECT_EQ(z_detected_not_corrupting, 5);
    EXPECT_EQ(report.num_silent_corrupting, 0);
}

TEST(CampaignTest, BellAnalyticDetectionRates)
{
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        bellPrep(BellKind::kPhiPlus), AssertionDesign::kSwap);
    CampaignOptions options;
    options.shots = 0;
    options.kinds = {FaultKind::kPauliX, FaultKind::kPauliZ};
    const CampaignReport report = runner.run(options);

    // h q0; cx q0,q1 -> X/Z on each touched qubit: 6 faults. X after h
    // on q0 is benign (|+> invariant); the other five flip the Bell
    // state to an orthogonal one.
    ASSERT_EQ(report.num_faults, 6);
    EXPECT_EQ(report.num_detected, 5);
    for (const FaultRecord& record : report.records) {
        const bool benign = record.fault.kind == FaultKind::kPauliX &&
                            record.fault.instr_index == 0;
        EXPECT_EQ(record.detected, !benign) << record.fault.describe();
        EXPECT_NEAR(record.slot_error[0], benign ? 0.0 : 1.0, 1e-9)
            << record.fault.describe();
    }
}

TEST(CampaignTest, SampledSweepMatchesAnalyticRates)
{
    // With enough shots the sampled campaign agrees with the exact one.
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        ghzPrep(3), AssertionDesign::kSwap);
    CampaignOptions options;
    options.shots = 512;
    options.seed = 2024;
    const CampaignReport report = runner.run(options);
    ASSERT_EQ(report.num_faults, 15);
    EXPECT_EQ(report.num_detected, 14);
    for (const FaultRecord& record : report.records) {
        const bool benign = record.fault.kind == FaultKind::kPauliX &&
                            record.fault.instr_index == 0;
        // Orthogonal states flag every shot; benign faults flag none.
        EXPECT_NEAR(record.slot_error[0], benign ? 0.0 : 1.0, 1e-12)
            << record.fault.describe();
    }
}

TEST(CampaignTest, SummaryRendersKindAndSlotTables)
{
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        bellPrep(BellKind::kPhiPlus), AssertionDesign::kSwap);
    CampaignOptions options;
    options.shots = 0;
    const CampaignReport report = runner.run(options);
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("Fault kind"), std::string::npos);
    EXPECT_NE(summary.find("total"), std::string::npos);
    EXPECT_NE(summary.find("Slot"), std::string::npos);
}

TEST(CampaignTest, AsserterMustInsertSlots)
{
    CampaignRunner runner(ghzPrep(2), [](const QuantumCircuit& c) {
        return AssertedProgram(c); // no slots
    });
    EXPECT_THROW(runner.run(CampaignOptions{}), UserError);
}

TEST(LocalizationTest, StagedGhzFaultsLocalizeToTheirStage)
{
    // GHZ(3) as three stages; every detected X fault must be blamed on
    // the stage it was injected into.
    std::vector<QuantumCircuit> stages;
    QuantumCircuit s0(3), s1(3), s2(3);
    s0.h(0);
    s1.cx(0, 1);
    s2.cx(1, 2);
    stages.push_back(s0);
    stages.push_back(s1);
    stages.push_back(s2);

    const LocalizationReport report = checkLocalization(
        stages, {FaultKind::kPauliX}, AssertionDesign::kSwap,
        /*bisect=*/false);
    EXPECT_EQ(report.num_faults, 5);
    // X after h on q0 fixes |+> and stays invisible; the other four
    // faults corrupt the post-stage state and localize exactly.
    EXPECT_EQ(report.num_detected, 4);
    EXPECT_EQ(report.num_localized, 4);
    EXPECT_NEAR(report.localizationRate(), 1.0, 1e-12);
    EXPECT_GT(report.evaluations, 0);

    // Bisection reaches the same verdicts with fewer evaluations.
    const LocalizationReport bisect = checkLocalization(
        stages, {FaultKind::kPauliX}, AssertionDesign::kSwap,
        /*bisect=*/true);
    EXPECT_EQ(bisect.num_detected, report.num_detected);
    EXPECT_EQ(bisect.num_localized, report.num_localized);
    EXPECT_LE(bisect.evaluations, report.evaluations);
}

} // namespace
} // namespace qa
