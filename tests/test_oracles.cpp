/**
 * @file
 * Tests for the Sec. VIII phase-kickback workloads: Bernstein-Vazirani
 * (with assertion-based oracle debugging) and superdense coding (with
 * mid-protocol Bell assertion).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/grover.hpp"
#include "algos/oracles.hpp"
#include "algos/states.hpp"
#include "common/error.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace
{

using namespace algos;

TEST(BernsteinVaziraniTest, RecoversEveryMask)
{
    for (int n : {2, 3, 4}) {
        for (uint64_t mask = 0; mask < (uint64_t(1) << n); ++mask) {
            QuantumCircuit qc = bernsteinVazirani(n, mask);
            const CVector state = finalState(qc).amplitudes();
            // Input register must read `mask` deterministically; mask
            // bit q corresponds to qubit q (MSB-first index).
            uint64_t expected_index = 0;
            for (int q = 0; q < n; ++q) {
                if ((mask >> q) & 1) {
                    expected_index |= uint64_t(1) << (n - q);
                }
            }
            double weight = std::norm(state[expected_index]) +
                            std::norm(state[expected_index | 1]);
            EXPECT_NEAR(weight, 1.0, 1e-9)
                << "n=" << n << " mask=" << mask;
        }
    }
}

TEST(BernsteinVaziraniTest, BuggyOracleChangesAnswer)
{
    const int n = 3;
    const uint64_t mask = 0b101;
    const QuantumCircuit good = bernsteinVazirani(n, mask);
    const QuantumCircuit bad = bernsteinVazirani(n, mask, /*drop=*/2);
    EXPECT_FALSE(finalState(bad).amplitudes().equalsUpToPhase(
        finalState(good).amplitudes(), 1e-6));
}

TEST(BernsteinVaziraniTest, AssertionCatchesDroppedOracleBit)
{
    // Precise assertion of the expected pre-measurement state: the
    // dropped-CX oracle bug flips one answer bit, which the assertion
    // sees deterministically.
    const int n = 3;
    const uint64_t mask = 0b110;
    const CVector expected = bernsteinVaziraniFinalState(n, mask);

    AssertedProgram clean(bernsteinVazirani(n, mask));
    clean.assertState({0, 1, 2, 3}, StateSet::pure(expected),
                      AssertionDesign::kSwap);
    EXPECT_NEAR(runAssertedExact(clean).slot_error_prob[0], 0.0, 1e-7);

    AssertedProgram buggy(bernsteinVazirani(n, mask, /*drop=*/1));
    buggy.assertState({0, 1, 2, 3}, StateSet::pure(expected),
                      AssertionDesign::kSwap);
    EXPECT_NEAR(runAssertedExact(buggy).slot_error_prob[0], 1.0, 1e-7);
}

TEST(BernsteinVaziraniTest, ApproximateAssertionOverAllMasks)
{
    // With no knowledge of the hidden mask, assert membership in the
    // set of ALL valid BV outputs -- any genuine linear oracle passes,
    // while the dropped-bit bug... also yields a valid (different)
    // linear function, so it passes too: the Bloom-filter limitation.
    const int n = 2;
    std::vector<CVector> valid;
    for (uint64_t mask = 0; mask < 4; ++mask) {
        valid.push_back(bernsteinVaziraniFinalState(n, mask));
    }
    const StateSet set = StateSet::approximate(valid);

    AssertedProgram prog(bernsteinVazirani(n, 0b11, /*drop=*/0));
    prog.assertState({0, 1, 2}, set, AssertionDesign::kSwap);
    EXPECT_NEAR(runAssertedExact(prog).slot_error_prob[0], 0.0, 1e-7);
}

TEST(SuperdenseTest, DeliversBothBits)
{
    for (int b1 : {0, 1}) {
        for (int b0 : {0, 1}) {
            const auto probs = finalState(superdenseProgram(b1, b0))
                                   .basisProbabilities(1e-9);
            ASSERT_EQ(probs.size(), 1u);
            EXPECT_EQ(probs.begin()->first,
                      uint64_t(b1) << 1 | uint64_t(b0));
        }
    }
}

TEST(SuperdenseTest, MidProtocolBellAssertion)
{
    // Assert the shared resource after stage 0, non-destructively, for
    // every message: the protocol still delivers afterwards.
    for (int b1 : {0, 1}) {
        for (int b0 : {0, 1}) {
            QuantumCircuit program(2);
            std::vector<int> ident{0, 1};
            program.compose(superdenseStage(0, b1, b0), ident);
            AssertedProgram prog(program);
            prog.assertState(
                {0, 1},
                StateSet::pure(bellVector(BellKind::kPhiPlus)),
                AssertionDesign::kNdd);
            prog.append(superdenseStage(1, b1, b0));
            prog.append(superdenseStage(2, b1, b0));
            prog.measureProgram();
            const AssertionOutcomeExact out = runAssertedExact(prog);
            EXPECT_NEAR(out.slot_error_prob[0], 0.0, 1e-9);
            const std::string expected = {b1 ? '1' : '0',
                                          b0 ? '1' : '0'};
            EXPECT_NEAR(out.program_dist.probability(expected), 1.0,
                        1e-9);
        }
    }
}

TEST(SuperdenseTest, EncodingStatesAreTheFourBellStates)
{
    // After encoding, the pair is in one of the four orthogonal Bell
    // states -- the approximate "Bell set" assertion passes for every
    // message but is rank 4 = 2^n and hence unassertable (the paper's
    // t = 2^n corner case, hit in the wild!).
    std::vector<CVector> bells = {
        bellVector(BellKind::kPhiPlus), bellVector(BellKind::kPhiMinus),
        bellVector(BellKind::kPsiPlus), bellVector(BellKind::kPsiMinus)};
    AssertedProgram prog(superdenseProgram(1, 0));
    EXPECT_THROW(prog.assertState({0, 1}, StateSet::approximate(bells),
                                  AssertionDesign::kSwap),
                 UserError);
}

TEST(GroverTest, MatchesClosedFormEveryIteration)
{
    for (int n : {2, 3, 4}) {
        const uint64_t target = uint64_t(1) << (n - 1) | 1;
        const int iters = groverOptimalIterations(n);
        for (int k = 0; k <= iters; ++k) {
            const CVector got =
                finalState(groverProgram(n, target, k)).amplitudes();
            const CVector want = groverExpectedState(n, target, k);
            EXPECT_TRUE(got.equalsUpToPhase(want, 1e-7))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(GroverTest, OptimalIterationsAmplifyTarget)
{
    const int n = 4;
    const uint64_t target = 11;
    const CVector fin =
        finalState(groverProgram(n, target, groverOptimalIterations(n)))
            .amplitudes();
    EXPECT_GT(std::norm(fin[target]), 0.9);
}

TEST(GroverTest, PerIterationAssertionLocalizesBugs)
{
    // Assert the closed-form state after each iteration; the
    // wrong-mark bug diverges at iteration 1, the dropped diffusion
    // phase also from iteration 1 but with a different signature.
    const int n = 3;
    const uint64_t target = 5;
    auto slotError = [&](GroverBug bug, int iterations) {
        AssertedProgram prog(groverProgram(n, target, iterations, bug));
        std::vector<int> qubits{0, 1, 2};
        prog.assertState(
            qubits,
            StateSet::pure(groverExpectedState(n, target, iterations)),
            AssertionDesign::kSwap);
        return runAssertedExact(prog).slot_error_prob[0];
    };
    for (int k = 0; k <= 2; ++k) {
        EXPECT_NEAR(slotError(GroverBug::kNone, k), 0.0, 1e-7) << k;
    }
    EXPECT_NEAR(slotError(GroverBug::kWrongMark, 0), 0.0, 1e-7);
    EXPECT_GT(slotError(GroverBug::kWrongMark, 1), 0.05);
    EXPECT_NEAR(slotError(GroverBug::kMissingDiffusionPhase, 0), 0.0,
                1e-7);
    EXPECT_GT(slotError(GroverBug::kMissingDiffusionPhase, 1), 0.05);
}

TEST(GroverTest, ApproximateAssertionOnMarkedSubspace)
{
    // With limited knowledge ("the state stays inside the span of the
    // uniform state and the target"), approximate assertion accepts
    // every correct iteration count at once.
    const int n = 3;
    const uint64_t target = 6;
    const StateSet set = StateSet::approximate(
        {groverExpectedState(n, target, 0),
         CVector::basisState(8, target)});
    for (int k = 0; k <= 2; ++k) {
        AssertedProgram prog(groverProgram(n, target, k));
        prog.assertState({0, 1, 2}, set, AssertionDesign::kSwap);
        EXPECT_NEAR(runAssertedExact(prog).slot_error_prob[0], 0.0, 1e-6)
            << "k=" << k;
    }
    // The wrong-mark bug leaves the plane: caught.
    AssertedProgram buggy(
        groverProgram(n, target, 2, GroverBug::kWrongMark));
    buggy.assertState({0, 1, 2}, set, AssertionDesign::kSwap);
    EXPECT_GT(runAssertedExact(buggy).slot_error_prob[0], 0.01);
}

} // namespace
} // namespace qa
