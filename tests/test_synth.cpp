/**
 * @file
 * Unit and property tests for the synthesis stack: ZYZ/ABC, GF(2)
 * CNOT synthesis, affine compression, multiplexed rotations, diagonal
 * synthesis, tensor factorization, state preparation, multi-controlled
 * gates, and general two-level unitary synthesis.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/cnot_synth.hpp"
#include "synth/factorize.hpp"
#include "synth/mcgates.hpp"
#include "synth/multiplex.hpp"
#include "synth/state_prep.hpp"
#include "synth/unitary_synth.hpp"
#include "synth/zyz.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

TEST(ZyzTest, RoundTripRandomUnitaries)
{
    Rng rng(101);
    for (int trial = 0; trial < 20; ++trial) {
        CMatrix u = randomUnitary(2, rng);
        ZyzAngles a = zyzDecompose(u);
        EXPECT_TRUE(zyzCompose(a).approxEquals(u, 1e-9)) << trial;
    }
}

TEST(ZyzTest, KnownGates)
{
    ZyzAngles h = zyzDecompose(gates::h());
    EXPECT_NEAR(h.gamma, M_PI / 2, 1e-9);
    ZyzAngles z = zyzDecompose(gates::z());
    EXPECT_NEAR(std::abs(z.gamma), 0.0, 1e-9);
    ZyzAngles x = zyzDecompose(gates::x());
    EXPECT_NEAR(x.gamma, M_PI, 1e-9);
}

TEST(ZyzTest, EmitSingleQubitRealizesMatrix)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        CMatrix u = randomUnitary(2, rng);
        QuantumCircuit qc(1);
        emitSingleQubit(qc, 0, u);
        EXPECT_LE(qc.size(), 1u); // always a single gate (or none)
        EXPECT_TRUE(circuitUnitary(qc).equalsUpToPhase(u, 1e-9));
    }
}

TEST(ZyzTest, EmitSingleQubitSkipsIdentity)
{
    QuantumCircuit qc(1);
    emitSingleQubit(qc, 0, CMatrix::identity(2) * kI);
    EXPECT_EQ(qc.size(), 0u);
}

TEST(ZyzTest, ControlledSingleQubitExactIncludingPhase)
{
    Rng rng(13);
    for (int trial = 0; trial < 20; ++trial) {
        CMatrix u = randomUnitary(2, rng);
        QuantumCircuit qc(2);
        emitControlledSingleQubit(qc, 0, 1, u);
        test::expectMatrixNear(circuitUnitary(qc), gates::controlled(u),
                               1e-8);
        EXPECT_LE(qc.countCx() + qc.countGates("cz"), 2);
    }
}

TEST(ZyzTest, ControlledPauliShortcuts)
{
    QuantumCircuit qc(2);
    emitControlledSingleQubit(qc, 0, 1, gates::x());
    EXPECT_EQ(qc.countCx(), 1);
    QuantumCircuit qz(2);
    emitControlledSingleQubit(qz, 0, 1, gates::z());
    EXPECT_EQ(qz.countGates("cz"), 1);
}

TEST(ZyzTest, SqrtUnitarySquares)
{
    Rng rng(19);
    for (int trial = 0; trial < 20; ++trial) {
        CMatrix u = randomUnitary(2, rng);
        CMatrix v = sqrtUnitary2x2(u);
        EXPECT_TRUE((v * v).approxEquals(u, 1e-9)) << trial;
        EXPECT_TRUE(v.isUnitary(1e-9));
    }
    // Edge cases: +/- identity.
    CMatrix mi = CMatrix::identity(2) * Complex(-1.0, 0.0);
    CMatrix v = sqrtUnitary2x2(mi);
    EXPECT_TRUE((v * v).approxEquals(mi, 1e-9));
}

TEST(LinearFunctionTest, ApplyInverseCompose)
{
    // out0 = x0^x1, out1 = x1: CNOT(1 -> 0) in mask space.
    LinearFunction f(2, {0b11, 0b10});
    EXPECT_EQ(f.apply(0b01), 0b01u);
    EXPECT_EQ(f.apply(0b10), 0b11u);
    LinearFunction inv = f.inverse();
    for (uint64_t x = 0; x < 4; ++x) {
        EXPECT_EQ(inv.apply(f.apply(x)), x);
    }
    LinearFunction composed = f.compose(inv);
    for (uint64_t x = 0; x < 4; ++x) {
        EXPECT_EQ(composed.apply(x), x);
    }
}

TEST(LinearFunctionTest, SingularDetection)
{
    LinearFunction singular(2, {0b11, 0b11});
    EXPECT_FALSE(singular.isInvertible());
    EXPECT_THROW(singular.inverse(), UserError);
}

TEST(CnotSynthTest, RandomInvertibleRoundTrip)
{
    Rng rng(31);
    for (int n : {2, 3, 4, 5}) {
        for (int trial = 0; trial < 5; ++trial) {
            // Random invertible matrix via random row operations.
            LinearFunction f = LinearFunction::identity(n);
            std::vector<uint64_t> rows = f.rows();
            for (int k = 0; k < 3 * n; ++k) {
                int a = int(rng.index(n));
                int b = int(rng.index(n));
                if (a != b) rows[a] ^= rows[b];
            }
            LinearFunction g(n, rows);
            QuantumCircuit qc = synthesizeLinear(g);
            // Validate by simulating every basis state.
            for (uint64_t mask = 0; mask < (uint64_t(1) << n); ++mask) {
                Statevector sv(n);
                for (int q = 0; q < n; ++q) {
                    if ((mask >> q) & 1) sv.applyMatrix(gates::x(), {q});
                }
                for (const Instruction& instr : qc.instructions()) {
                    sv.applyGate(instr);
                }
                const uint64_t out_index =
                    sv.basisProbabilities().begin()->first;
                EXPECT_EQ(basisIndexToMask(out_index, n), g.apply(mask));
            }
        }
    }
}

TEST(CnotSynthTest, AffineCompressionRecognizesSubspaces)
{
    auto comp = findAffineCompression({0b000, 0b111}, 3);
    ASSERT_TRUE(comp.has_value());
    EXPECT_EQ(comp->m, 1);
    EXPECT_EQ(comp->check_qubits.size(), 2u);
    EXPECT_EQ(synthesizeLinear(comp->map).countCx(), 2);

    auto comp4 = findAffineCompression({0b000, 0b110, 0b001, 0b111}, 3);
    ASSERT_TRUE(comp4.has_value());
    EXPECT_EQ(comp4->m, 2);
    EXPECT_EQ(synthesizeLinear(comp4->map).countCx(), 1);
}

TEST(CnotSynthTest, AffineCompressionOffset)
{
    // {|01>, |10>}: affine with offset.
    auto comp = findAffineCompression({0b01, 0b10}, 2);
    ASSERT_TRUE(comp.has_value());
    for (uint64_t e : {0b01u, 0b10u}) {
        const uint64_t img = comp->map.apply(e ^ comp->offset);
        for (int f : comp->check_qubits) {
            EXPECT_EQ((img >> f) & 1, 0u);
        }
    }
}

TEST(CnotSynthTest, RejectsNonAffineSets)
{
    EXPECT_FALSE(findAffineCompression({0b00, 0b01, 0b10}, 2).has_value());
    EXPECT_FALSE(
        findAffineCompression({0b000, 0b001, 0b010, 0b111}, 3).has_value());
}

TEST(CnotSynthTest, MaskIndexConversions)
{
    // Qubit 0 is the MSB of the index but bit 0 of the mask.
    EXPECT_EQ(basisIndexToMask(0b100, 3), 0b001u);
    EXPECT_EQ(maskToBasisIndex(0b001, 3), 0b100u);
    for (uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(maskToBasisIndex(basisIndexToMask(i, 4), 4), i);
    }
}

TEST(MultiplexTest, RotationSelectsByControl)
{
    // angles[w]: w indexes controls MSB-first.
    const std::vector<double> angles = {0.1, 0.7, -0.4, 2.0};
    for (uint64_t w = 0; w < 4; ++w) {
        QuantumCircuit qc(3);
        if (w & 2) qc.x(0);
        if (w & 1) qc.x(1);
        muxRotation(qc, RotationAxis::kY, angles, {0, 1}, 2);
        CVector out = finalState(qc).amplitudes();
        QuantumCircuit expect(3);
        if (w & 2) expect.x(0);
        if (w & 1) expect.x(1);
        expect.ry(2, angles[w]);
        EXPECT_TRUE(out.approxEquals(finalState(expect).amplitudes(),
                                     1e-10))
            << "control value " << w;
    }
}

TEST(MultiplexTest, ConstantAnglesShortCircuit)
{
    QuantumCircuit qc(3);
    muxRotation(qc, RotationAxis::kZ, {0.5, 0.5, 0.5, 0.5}, {0, 1}, 2);
    EXPECT_EQ(qc.countCx(), 0);
    EXPECT_EQ(qc.countSingleQubit(), 1);
}

TEST(MultiplexTest, DiagonalSynthesisExact)
{
    Rng rng(43);
    for (int n : {1, 2, 3, 4}) {
        const size_t dim = size_t(1) << n;
        std::vector<double> phases(dim);
        std::vector<Complex> entries(dim);
        for (size_t i = 0; i < dim; ++i) {
            phases[i] = rng.uniform(-M_PI, M_PI);
            entries[i] = Complex(std::cos(phases[i]),
                                 std::sin(phases[i]));
        }
        QuantumCircuit qc(n);
        std::vector<int> qubits;
        for (int q = 0; q < n; ++q) qubits.push_back(q);
        emitDiagonal(qc, phases, qubits);
        EXPECT_TRUE(circuitUnitary(qc).equalsUpToPhase(
            CMatrix::diagonal(entries), 1e-8))
            << "n = " << n;
    }
}

TEST(FactorizeTest, TensorProductsRecognized)
{
    CMatrix xzh = kron(kron(gates::x(), gates::z()), gates::h());
    auto factors = tensorFactorize(xzh);
    ASSERT_TRUE(factors.has_value());
    ASSERT_EQ(factors->size(), 3u);
    CMatrix recon = kron(kron((*factors)[0], (*factors)[1]),
                         (*factors)[2]);
    test::expectMatrixNear(recon, xzh, 1e-9);
}

TEST(FactorizeTest, EntanglingGateRejected)
{
    EXPECT_FALSE(tensorFactorize(gates::cx()).has_value());
    EXPECT_FALSE(tensorFactorize(gates::swap()).has_value());
}

TEST(FactorizeTest, ProductStates)
{
    Rng rng(53);
    CVector a = randomState(1, rng);
    CVector b = randomState(1, rng);
    CVector c = randomState(1, rng);
    auto factors = productStateFactorize(a.tensor(b).tensor(c));
    ASSERT_TRUE(factors.has_value());
    EXPECT_TRUE((*factors)[0].equalsUpToPhase(a, 1e-8));
    EXPECT_TRUE((*factors)[1].equalsUpToPhase(b, 1e-8));
    EXPECT_TRUE((*factors)[2].equalsUpToPhase(c, 1e-8));

    CVector bell(4);
    bell[0] = bell[3] = 1.0 / std::sqrt(2.0);
    EXPECT_FALSE(productStateFactorize(bell).has_value());
}

/** State preparation property test over qubit counts. */
class StatePrepTest : public ::testing::TestWithParam<int>
{};

TEST_P(StatePrepTest, RandomStateRoundTrip)
{
    const int n = GetParam();
    Rng rng(1000 + n);
    for (int trial = 0; trial < 5; ++trial) {
        CVector psi = randomState(n, rng);
        QuantumCircuit qc = prepareState(psi);
        EXPECT_TRUE(finalState(qc).amplitudes().equalsUpToPhase(psi, 1e-7))
            << "n = " << n << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StatePrepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(StatePrepCostTest, SpecialCases)
{
    // Basis state: X only.
    QuantumCircuit basis = prepareState(CVector::basisState(8, 5));
    EXPECT_EQ(basis.countCx(), 0);
    EXPECT_EQ(basis.countGates("x"), 2);

    // GHZ: 1 rotation + n-1 CX.
    CVector ghz(16);
    ghz[0] = ghz[15] = 1.0 / std::sqrt(2.0);
    QuantumCircuit g = prepareState(ghz);
    EXPECT_EQ(g.countCx(), 3);
    EXPECT_EQ(g.countSingleQubit(), 1);

    // Product state: one gate per qubit, no CX.
    Rng rng(77);
    CVector prod = randomState(1, rng)
                       .tensor(randomState(1, rng))
                       .tensor(randomState(1, rng));
    QuantumCircuit p = prepareState(prod);
    EXPECT_EQ(p.countCx(), 0);
    EXPECT_LE(p.countSingleQubit(), 3);
}

TEST(StatePrepCostTest, GeneralScalingIsExponentialNotWorse)
{
    // The multiplexed-rotation path must stay within O(2^n) CX.
    Rng rng(88);
    for (int n : {3, 4, 5}) {
        CVector psi = randomState(n, rng);
        QuantumCircuit qc = prepareState(psi);
        EXPECT_LE(qc.countCx(), 4 * (1 << n) + 8) << "n = " << n;
    }
}

TEST(McGatesTest, McxAllControlCounts)
{
    for (int k = 1; k <= 5; ++k) {
        QuantumCircuit qc(k + 1);
        std::vector<int> controls;
        for (int i = 0; i < k; ++i) controls.push_back(i);
        mcx(qc, controls, k);
        EXPECT_TRUE(circuitUnitary(qc).equalsUpToPhase(
            gates::controlled(gates::x(), k), 1e-7))
            << "k = " << k;
    }
}

TEST(McGatesTest, McxWithDirtyAncillasRestoresThem)
{
    // Dirty ancillas in random states must be restored exactly.
    Rng rng(61);
    const int k = 4;
    QuantumCircuit qc(k + 1 + (k - 2));
    std::vector<int> controls{0, 1, 2, 3};
    std::vector<int> dirty{5, 6};
    mcx(qc, controls, 4, dirty);
    CMatrix u = circuitUnitary(qc);
    CMatrix expected = gates::controlled(gates::x(), k);
    for (int i = 0; i < k - 2; ++i) {
        expected = kron(expected, CMatrix::identity(2));
    }
    EXPECT_TRUE(u.equalsUpToPhase(expected, 1e-7));
}

TEST(McGatesTest, PatternControls)
{
    // Fire on pattern 0b01: control 0 closed, control 1 open.
    QuantumCircuit qc(3);
    mcxPattern(qc, {0, 1}, 0b01, 2);
    Statevector sv(3);
    sv.applyMatrix(gates::x(), {0}); // controls = (1, 0): matches
    for (const Instruction& instr : qc.instructions()) sv.applyGate(instr);
    EXPECT_NEAR(sv.probabilityOne(2), 1.0, 1e-10);

    Statevector miss(3); // controls = (0, 0): no fire
    for (const Instruction& instr : qc.instructions()) {
        miss.applyGate(instr);
    }
    EXPECT_NEAR(miss.probabilityOne(2), 0.0, 1e-10);
}

TEST(McGatesTest, McuExactPhases)
{
    Rng rng(71);
    for (int k = 1; k <= 4; ++k) {
        CMatrix u = randomUnitary(2, rng);
        QuantumCircuit qc(k + 1);
        std::vector<int> controls;
        for (int i = 0; i < k; ++i) controls.push_back(i);
        mcu(qc, controls, k, u);
        test::expectMatrixNear(circuitUnitary(qc),
                               gates::controlled(u, k), 1e-7);
    }
}

TEST(McGatesTest, RejectsOverlappingQubits)
{
    QuantumCircuit qc(3);
    EXPECT_THROW(mcx(qc, {0, 1}, 1), UserError);
    EXPECT_THROW(mcx(qc, {0, 1}, 2, {0}), UserError);
}

/** General unitary synthesis property test. */
class UnitarySynthTest : public ::testing::TestWithParam<int>
{};

TEST_P(UnitarySynthTest, RandomRoundTrip)
{
    const int n = GetParam();
    Rng rng(2000 + n);
    for (int trial = 0; trial < 3; ++trial) {
        CMatrix u = randomUnitary(size_t(1) << n, rng);
        QuantumCircuit qc = synthesizeUnitary(u);
        EXPECT_TRUE(circuitUnitary(qc).equalsUpToPhase(u, 1e-6))
            << "n = " << n << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnitarySynthTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(UnitarySynthTest, FastPathsProduceCheapCircuits)
{
    // Affine permutation: CNOT-only.
    QuantumCircuit cx_ref(2);
    cx_ref.cx(0, 1);
    QuantumCircuit synth = synthesizeUnitary(circuitUnitary(cx_ref));
    EXPECT_EQ(synth.countCx(), 1);
    EXPECT_EQ(synth.countSingleQubit(), 0);

    // Tensor product: no entangling gates at all.
    QuantumCircuit tensor_synth =
        synthesizeUnitary(kron(gates::h(), gates::t()));
    EXPECT_EQ(tensor_synth.countCx(), 0);

    // Diagonal: handled by the multiplexed-Rz network.
    CMatrix zz = kron(gates::z(), gates::z());
    QuantumCircuit diag_synth = synthesizeUnitary(zz);
    EXPECT_TRUE(circuitUnitary(diag_synth).equalsUpToPhase(zz, 1e-9));
    EXPECT_LE(diag_synth.countCx(), 2);
}

TEST(UnitarySynthTest, TwoLevelExact)
{
    Rng rng(97);
    const int n = 3;
    // Random two-level rotation between far-apart states.
    CMatrix w = randomUnitary(2, rng);
    QuantumCircuit qc(n);
    emitTwoLevelInto(qc, {0, 1, 2}, 0b001, 0b110, w);
    CMatrix got = circuitUnitary(qc);
    CMatrix expected = CMatrix::identity(8);
    expected(1, 1) = w(0, 0);
    expected(1, 6) = w(0, 1);
    expected(6, 1) = w(1, 0);
    expected(6, 6) = w(1, 1);
    test::expectMatrixNear(got, expected, 1e-7);
}

TEST(UnitarySynthTest, ControlledUnitaryDispatch)
{
    Rng rng(111);
    // Tensor case.
    CMatrix xx = kron(gates::x(), gates::x());
    QuantumCircuit qt(3);
    emitControlledUnitary(qt, 0, {1, 2}, xx);
    EXPECT_EQ(qt.countCx(), 2);
    EXPECT_TRUE(circuitUnitary(qt).equalsUpToPhase(
        gates::controlled(xx), 1e-8));

    // General case.
    CMatrix u = randomUnitary(4, rng);
    QuantumCircuit qg(3);
    emitControlledUnitary(qg, 0, {1, 2}, u);
    EXPECT_TRUE(circuitUnitary(qg).equalsUpToPhase(
        gates::controlled(u), 1e-6));
}

TEST(UnitarySynthTest, CircuitUnitaryRejectsMeasurement)
{
    QuantumCircuit qc(1, 1);
    qc.measure(0, 0);
    EXPECT_THROW(circuitUnitary(qc), UserError);
}

} // namespace
} // namespace qa
