/**
 * @file
 * Shared helpers for the qassert test suite.
 */
#ifndef QA_TESTS_TEST_UTIL_HPP
#define QA_TESTS_TEST_UTIL_HPP

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace qa
{
namespace test
{

/** EXPECT that two complex numbers agree within eps. */
inline void
expectComplexNear(Complex a, Complex b, double eps = 1e-9)
{
    EXPECT_NEAR(a.real(), b.real(), eps);
    EXPECT_NEAR(a.imag(), b.imag(), eps);
}

/** EXPECT element-wise vector agreement. */
inline void
expectVectorNear(const CVector& a, const CVector& b, double eps = 1e-9)
{
    ASSERT_EQ(a.dim(), b.dim());
    for (size_t i = 0; i < a.dim(); ++i) {
        EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, eps)
            << "index " << i << ": " << a.toString() << " vs "
            << b.toString();
    }
}

/** EXPECT matrix agreement. */
inline void
expectMatrixNear(const CMatrix& a, const CMatrix& b, double eps = 1e-9)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t c = 0; c < a.cols(); ++c) {
            EXPECT_NEAR(std::abs(a(r, c) - b(r, c)), 0.0, eps)
                << "entry (" << r << ", " << c << ")";
        }
    }
}

} // namespace test
} // namespace qa

#endif // QA_TESTS_TEST_UTIL_HPP
