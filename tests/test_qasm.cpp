/**
 * @file
 * Tests for the OpenQASM 2.0 importer: round trips with the exporter,
 * expression evaluation, multi-register flattening, and error paths.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/adder.hpp"
#include "algos/deutsch_jozsa.hpp"
#include "algos/grover.hpp"
#include "algos/oracles.hpp"
#include "algos/qft.hpp"
#include "algos/qpe.hpp"
#include "algos/states.hpp"
#include "algos/teleport.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/unitary_synth.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

TEST(QasmTest, RoundTripThroughExporter)
{
    QuantumCircuit qc(3, 3);
    qc.h(0);
    qc.u3(1, 0.25, -0.5, 1.75);
    qc.u2(2, 0.1, 0.2);
    qc.cx(0, 1);
    qc.cz(1, 2);
    qc.swap(0, 2);
    qc.crz(0, 2, 0.7);
    qc.cp(1, 0, -0.3);
    qc.ccx(0, 1, 2);
    qc.rz(0, M_PI / 8);
    qc.measure(2, 2);

    QuantumCircuit parsed = parseQasm(qc.toQasm());
    ASSERT_EQ(parsed.numQubits(), 3);
    ASSERT_EQ(parsed.numClbits(), 3);
    ASSERT_EQ(parsed.size(), qc.size());
    for (size_t i = 0; i < qc.size(); ++i) {
        EXPECT_EQ(parsed.instructions()[i].name,
                  qc.instructions()[i].name);
        EXPECT_EQ(parsed.instructions()[i].qubits,
                  qc.instructions()[i].qubits);
    }
    // Semantic equality of the gate prefix.
    QuantumCircuit a(3), b(3);
    std::vector<int> ident{0, 1, 2};
    for (const Instruction& instr : qc.instructions()) {
        if (instr.isGate()) a.append(instr);
    }
    for (const Instruction& instr : parsed.instructions()) {
        if (instr.isGate()) b.append(instr);
    }
    EXPECT_TRUE(circuitUnitary(a).equalsUpToPhase(circuitUnitary(b),
                                                  1e-9));
}

TEST(QasmTest, ParameterExpressions)
{
    const char* src = R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[1];
        rz(pi/2) q[0];
        rz(-pi/4) q[0];
        rz(2*pi/8 + 0.5) q[0];
        rz((1 + 1) * pi) q[0];
    )";
    QuantumCircuit qc = parseQasm(src);
    ASSERT_EQ(qc.size(), 4u);
    EXPECT_NEAR(qc.instructions()[0].params[0], M_PI / 2, 1e-12);
    EXPECT_NEAR(qc.instructions()[1].params[0], -M_PI / 4, 1e-12);
    EXPECT_NEAR(qc.instructions()[2].params[0], M_PI / 4 + 0.5, 1e-12);
    EXPECT_NEAR(qc.instructions()[3].params[0], 2 * M_PI, 1e-12);
}

TEST(QasmTest, MultipleRegistersFlatten)
{
    const char* src = R"(
        OPENQASM 2.0;
        qreg a[2];
        qreg b[1];
        creg m[2];
        creg n[1];
        x a[1];
        x b[0];
        measure b[0] -> n[0];
    )";
    QuantumCircuit qc = parseQasm(src);
    EXPECT_EQ(qc.numQubits(), 3);
    EXPECT_EQ(qc.numClbits(), 3);
    EXPECT_EQ(qc.instructions()[0].qubits[0], 1); // a[1]
    EXPECT_EQ(qc.instructions()[1].qubits[0], 2); // b[0] after a[0..1]
    EXPECT_EQ(qc.instructions()[2].cbit, 2);      // n[0] after m[0..1]
}

TEST(QasmTest, CommentsAndWhitespace)
{
    const char* src =
        "OPENQASM 2.0; // header\n"
        "qreg q[2]; // two qubits\n"
        "h q[0];\n"
        "// a full-line comment\n"
        "cx q[0], q[1];\n";
    QuantumCircuit qc = parseQasm(src);
    EXPECT_EQ(qc.size(), 2u);
    // Semantics: a Bell pair.
    CVector bell(4);
    bell[0] = bell[3] = 1.0 / std::sqrt(2.0);
    EXPECT_TRUE(finalState(qc).amplitudes().equalsUpToPhase(bell, 1e-10));
}

TEST(QasmTest, GateAliases)
{
    const char* src = R"(
        OPENQASM 2.0;
        qreg q[2];
        u1(0.5) q[0];
        u(0.1, 0.2, 0.3) q[0];
        cu1(0.4) q[0], q[1];
        CX q[0], q[1];
    )";
    QuantumCircuit qc = parseQasm(src);
    EXPECT_EQ(qc.instructions()[0].name, "p");
    EXPECT_EQ(qc.instructions()[1].name, "u3");
    EXPECT_EQ(qc.instructions()[2].name, "cp");
    EXPECT_EQ(qc.instructions()[3].name, "cx");
}

TEST(QasmTest, ErrorPaths)
{
    EXPECT_THROW(parseQasm("OPENQASM 2.0; creg c[1];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2]; frobnicate q[0];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2]; h q[5];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2]; rx(blah) q[0];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2]; cx q[0];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2]; h q[0]"), UserError); // no ';'
    EXPECT_THROW(parseQasm("qreg q[2]; measure q[0];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2]; qreg q[2]; h q[0];"), UserError);
}

/** Parse and return the diagnostic the parser raises (empty = none). */
std::string
parseDiagnostic(const std::string& src)
{
    try {
        parseQasm(src);
    } catch (const UserError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kQasmSyntax) << e.what();
        return e.what();
    }
    return "";
}

TEST(QasmTest, OutOfRangeIndexNamesLineAndColumn)
{
    const std::string msg =
        parseDiagnostic("OPENQASM 2.0;\nqreg q[2];\nh q[5];\n");
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("index 5 out of range"), std::string::npos) << msg;
    EXPECT_NE(msg.find("q[2]"), std::string::npos) << msg;
}

TEST(QasmTest, MalformedIndexIsRejectedNotParsedAsPrefix)
{
    // std::stoi would silently accept "1x" as 1; the checked parser
    // must reject the whole token with a position.
    const std::string msg = parseDiagnostic("qreg q[2];\nh q[1x];\n");
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'1x'"), std::string::npos) << msg;
}

TEST(QasmTest, OverflowingRegisterSizeIsDiagnosed)
{
    // Would throw raw std::out_of_range from std::stoi before.
    const std::string msg =
        parseDiagnostic("qreg q[99999999999999999999];\nh q[0];\n");
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

TEST(QasmTest, MalformedRegisterSizeIsDiagnosed)
{
    const std::string msg = parseDiagnostic("qreg q[two];\nh q[0];\n");
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("register size"), std::string::npos) << msg;
}

TEST(QasmTest, DuplicateQubitOperandsAreRejected)
{
    const std::string msg = parseDiagnostic("qreg q[2];\ncx q[0], q[0];\n");
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("same qubit twice"), std::string::npos) << msg;
    EXPECT_THROW(parseQasm("qreg q[3]; ccx q[0], q[1], q[1];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2]; swap q[1], q[1];"), UserError);
}

TEST(QasmTest, MalformedGateArgumentsAreDiagnosed)
{
    const std::string msg =
        parseDiagnostic("qreg q[1];\n\nrx(0.3 + ) q[0];\n");
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_THROW(parseQasm("qreg q[1]; rx(0.1 q[0];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[1]; rx(1/0) q[0];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[1]; rx(0.1, 0.2) q[0];"), UserError);
    EXPECT_THROW(parseQasm("qreg q[1]; u3(0.1) q[0];"), UserError);
}

TEST(QasmTest, ColumnPointsAtStatementStart)
{
    // Two statements on one line: the second one's column is past the
    // first, so the diagnostic distinguishes them.
    const std::string msg =
        parseDiagnostic("qreg q[2]; h q[0]; h q[7];\n");
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("line 1, col 20"), std::string::npos) << msg;
}

/**
 * Require parseQasm(c.toQasm()) to reproduce `c` structurally:
 * same registers, same instruction sequence, bit-exact parameters
 * (the exporter prints 17 significant digits precisely so doubles
 * survive the text round trip).
 */
void
expectQasmRoundTrip(const QuantumCircuit& c, const std::string& label)
{
    SCOPED_TRACE(label);
    const QuantumCircuit parsed = parseQasm(c.toQasm());
    ASSERT_EQ(parsed.numQubits(), c.numQubits());
    ASSERT_EQ(parsed.numClbits(), c.numClbits());
    ASSERT_EQ(parsed.size(), c.size());
    for (size_t i = 0; i < c.size(); ++i) {
        const Instruction& want = c.instructions()[i];
        const Instruction& got = parsed.instructions()[i];
        SCOPED_TRACE("instruction " + std::to_string(i) + ": " +
                     want.name);
        ASSERT_EQ(int(got.type), int(want.type));
        EXPECT_EQ(got.name, want.name);
        EXPECT_EQ(got.qubits, want.qubits);
        EXPECT_EQ(got.cbit, want.cbit);
        ASSERT_EQ(got.params.size(), want.params.size());
        for (size_t p = 0; p < want.params.size(); ++p) {
            EXPECT_DOUBLE_EQ(got.params[p], want.params[p]);
        }
    }
}

TEST(QasmTest, EveryAlgoCircuitRoundTrips)
{
    // Property: the exporter/importer pair is lossless for every
    // program the algos library can emit — including the ccrz the
    // controlled adders use, which a prior exporter whitelist missed.
    using namespace algos;
    expectQasmRoundTrip(bellPrep(BellKind::kPhiPlus), "bell phi+");
    expectQasmRoundTrip(bellPrep(BellKind::kPhiMinus), "bell phi-");
    expectQasmRoundTrip(bellPrep(BellKind::kPsiPlus), "bell psi+");
    expectQasmRoundTrip(bellPrep(BellKind::kPsiMinus), "bell psi-");
    expectQasmRoundTrip(ghzPrep(4), "ghz 4");
    expectQasmRoundTrip(ghzPrep(3, 1), "ghz 3 (buggy)");
    expectQasmRoundTrip(wPrep(4), "w 4");
    expectQasmRoundTrip(linearClusterPrep(4), "cluster 4");
    expectQasmRoundTrip(qft(4), "qft 4");
    expectQasmRoundTrip(qft(3, false), "qft 3, no swaps");
    expectQasmRoundTrip(iqft(4), "iqft 4");
    expectQasmRoundTrip(adderProgram(3, 2, 3, 0, false), "adder");
    expectQasmRoundTrip(adderProgram(3, 2, 3, 1, true), "c-adder");
    expectQasmRoundTrip(adderProgram(3, 2, 3, 2, true),
                        "cc-adder (ccrz)");
    expectQasmRoundTrip(adderProgram(3, 2, 3, 2, true, true),
                        "cc-adder (buggy)");
    expectQasmRoundTrip(djFunctionEval(3, DjOracle::kConstantZero),
                        "dj constant-0");
    expectQasmRoundTrip(djFunctionEval(3, DjOracle::kConstantOne),
                        "dj constant-1");
    expectQasmRoundTrip(djFunctionEval(3, DjOracle::kBalancedMask, 5),
                        "dj balanced");
    expectQasmRoundTrip(djFunctionEval(3, DjOracle::kBuggyAnd),
                        "dj buggy-and");
    expectQasmRoundTrip(groverProgram(3, 5, groverOptimalIterations(3)),
                        "grover 3");
    expectQasmRoundTrip(
        groverProgram(3, 5, 1, GroverBug::kMissingDiffusionPhase),
        "grover 3 (buggy)");
    expectQasmRoundTrip(bernsteinVazirani(4, 0b1011), "bv 4");
    expectQasmRoundTrip(bernsteinVazirani(4, 0b1011, 1), "bv 4 (buggy)");
    for (int b1 = 0; b1 < 2; ++b1) {
        for (int b0 = 0; b0 < 2; ++b0) {
            expectQasmRoundTrip(superdenseProgram(b1, b0),
                                "superdense " + std::to_string(b1) +
                                    std::to_string(b0));
        }
    }
    CVector payload(2);
    payload[0] = 0.6;
    payload[1] = Complex(0.0, 0.8);
    expectQasmRoundTrip(teleportProgram(payload), "teleport");
    expectQasmRoundTrip(
        teleportProgram(payload, TeleportBug::kWrongBellPair),
        "teleport (buggy)");
    expectQasmRoundTrip(qpeRyProgram(3, 0.7), "qpe-ry 3");
    expectQasmRoundTrip(qpeRyProgram(3, 0.7, true), "qpe-ry 3 (buggy)");
}

TEST(QasmTest, ParsedProgramIsAssertable)
{
    // End-to-end: import a GHZ program written in QASM, assert it.
    const char* src = R"(
        OPENQASM 2.0;
        qreg q[3];
        u2(0, pi) q[0];
        cx q[0], q[1];
        cx q[1], q[2];
    )";
    QuantumCircuit program = parseQasm(src);
    CVector ghz(8);
    ghz[0] = ghz[7] = 1.0 / std::sqrt(2.0);
    EXPECT_TRUE(finalState(program).amplitudes().equalsUpToPhase(ghz,
                                                                 1e-10));
}

} // namespace
} // namespace qa
