/**
 * @file
 * Tests for the stabilizer substrate: Pauli algebra, the tableau
 * simulator (cross-validated against the dense statevector backend),
 * and stabilizer-state recognition in the synthesis pipeline.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "common/error.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "stab/observables.hpp"
#include "stab/tableau.hpp"
#include "synth/stabilizer_prep.hpp"
#include "synth/state_prep.hpp"
#include "core/runner.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

TEST(PauliTest, LabelsRoundTrip)
{
    for (const char* label : {"+XYZ", "-II", "+iZX", "-iYY"}) {
        EXPECT_EQ(PauliString::fromLabel(label).toString(), label);
    }
    EXPECT_THROW(PauliString::fromLabel("+AB"), UserError);
}

TEST(PauliTest, MultiplicationMatchesMatrices)
{
    const std::vector<std::string> labels = {"+X", "+Y", "+Z", "+I",
                                             "-X", "+iY"};
    for (const auto& a : labels) {
        for (const auto& b : labels) {
            const PauliString pa = PauliString::fromLabel(a);
            const PauliString pb = PauliString::fromLabel(b);
            test::expectMatrixNear((pa * pb).toMatrix(),
                                   pa.toMatrix() * pb.toMatrix(), 1e-12);
        }
    }
    // Multi-qubit random products.
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        PauliString a(3), b(3);
        for (int q = 0; q < 3; ++q) {
            a.setX(q, rng.bernoulli(0.5));
            a.setZ(q, rng.bernoulli(0.5));
            b.setX(q, rng.bernoulli(0.5));
            b.setZ(q, rng.bernoulli(0.5));
        }
        a.setPhase(int(rng.index(4)));
        b.setPhase(int(rng.index(4)));
        test::expectMatrixNear((a * b).toMatrix(),
                               a.toMatrix() * b.toMatrix(), 1e-12);
    }
}

TEST(PauliTest, Commutation)
{
    const PauliString x = PauliString::fromLabel("+X");
    const PauliString z = PauliString::fromLabel("+Z");
    EXPECT_FALSE(x.commutesWith(z));
    EXPECT_TRUE(PauliString::fromLabel("+XX").commutesWith(
        PauliString::fromLabel("+ZZ")));
    EXPECT_TRUE(x.commutesWith(x));
}

TEST(TableauTest, GroundStateStabilizers)
{
    StabilizerTableau tableau(2);
    EXPECT_EQ(tableau.stabilizer(0).toString(), "+ZI");
    EXPECT_EQ(tableau.stabilizer(1).toString(), "+IZ");
    EXPECT_TRUE(tableau.isDeterministic(0));
}

TEST(TableauTest, BellStateStabilizers)
{
    StabilizerTableau tableau(2);
    tableau.applyH(0);
    tableau.applyCx(0, 1);
    // Stabilizer group {XX, ZZ} up to generator choice.
    const PauliString s0 = tableau.stabilizer(0);
    const PauliString s1 = tableau.stabilizer(1);
    const PauliString xx = PauliString::fromLabel("+XX");
    const PauliString zz = PauliString::fromLabel("+ZZ");
    // Both must stabilize the Bell state: verify densely.
    const CVector bell = tableau.toStatevector();
    for (const PauliString& s : {s0, s1, xx, zz}) {
        const CVector image = s.toMatrix() * bell;
        EXPECT_TRUE(image.approxEquals(bell, 1e-9)) << s.toString();
    }
}

TEST(TableauTest, CliffordAgreesWithStatevector)
{
    // Random Clifford circuits: tableau state == dense state.
    Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        const int n = 2 + int(rng.index(3));
        QuantumCircuit qc(n);
        for (int g = 0; g < 20; ++g) {
            const int kind = int(rng.index(6));
            const int a = int(rng.index(n));
            int b = int(rng.index(n));
            if (b == a) b = (b + 1) % n;
            switch (kind) {
              case 0: qc.h(a); break;
              case 1: qc.s(a); break;
              case 2: qc.x(a); break;
              case 3: qc.cx(a, b); break;
              case 4: qc.cz(a, b); break;
              case 5: qc.sdg(a); break;
            }
        }
        ASSERT_TRUE(isCliffordCircuit(qc));
        const CVector via_tableau = runClifford(qc).toStatevector();
        const CVector via_dense = finalState(qc).amplitudes();
        EXPECT_TRUE(via_tableau.equalsUpToPhase(via_dense, 1e-7))
            << "trial " << trial;
    }
}

TEST(TableauTest, MeasurementStatistics)
{
    // Bell pair: first measurement random, second perfectly correlated.
    Rng rng(17);
    int ones = 0;
    for (int shot = 0; shot < 2000; ++shot) {
        StabilizerTableau tableau(2);
        tableau.applyH(0);
        tableau.applyCx(0, 1);
        EXPECT_FALSE(tableau.isDeterministic(0));
        const int first = tableau.measure(0, rng);
        EXPECT_TRUE(tableau.isDeterministic(1));
        EXPECT_EQ(tableau.measure(1, rng), first);
        ones += first;
    }
    EXPECT_NEAR(double(ones) / 2000.0, 0.5, 0.05);
}

TEST(TableauTest, DeterministicMeasurementSign)
{
    // |1>: deterministic outcome 1.
    StabilizerTableau tableau(1);
    tableau.applyX(0);
    Rng rng(1);
    EXPECT_TRUE(tableau.isDeterministic(0));
    EXPECT_EQ(tableau.measure(0, rng), 1);

    // GHZ parity: measuring all three qubits gives even parity... of
    // the |000>/|111> mixture: outcomes correlate perfectly.
    StabilizerTableau ghz(3);
    ghz.applyH(0);
    ghz.applyCx(0, 1);
    ghz.applyCx(1, 2);
    const int a = ghz.measure(0, rng);
    EXPECT_EQ(ghz.measure(1, rng), a);
    EXPECT_EQ(ghz.measure(2, rng), a);
}

TEST(TableauTest, RejectsNonClifford)
{
    StabilizerTableau tableau(1);
    Instruction t_gate;
    t_gate.type = OpType::kGate;
    t_gate.name = "t";
    t_gate.qubits = {0};
    t_gate.matrix = CMatrix::identity(2);
    EXPECT_THROW(tableau.applyGate(t_gate), UserError);

    QuantumCircuit qc(1);
    qc.t(0);
    EXPECT_FALSE(isCliffordCircuit(qc));
}

TEST(StabilizerPrepTest, RecognizesCanonicalStates)
{
    // Bell, GHZ, cluster, |+>^n, i-phased superpositions.
    std::vector<CVector> states = {
        algos::bellVector(algos::BellKind::kPhiPlus),
        algos::bellVector(algos::BellKind::kPsiMinus),
        algos::ghzVector(4),
        algos::linearClusterVector(3),
        algos::linearClusterVector(4),
    };
    {
        CVector iphase(2);
        iphase[0] = 1.0 / std::sqrt(2.0);
        iphase[1] = kI / std::sqrt(2.0);
        states.push_back(iphase); // S|+>
    }
    for (const CVector& psi : states) {
        auto prep = stabilizerPrepFromVector(psi);
        ASSERT_TRUE(prep.has_value()) << psi.toString();
        EXPECT_TRUE(isCliffordCircuit(*prep));
        EXPECT_TRUE(finalState(*prep).amplitudes().equalsUpToPhase(
            psi, 1e-8))
            << psi.toString();
    }
}

TEST(StabilizerPrepTest, RejectsNonStabilizerStates)
{
    // W state: uniform over a non-affine support.
    EXPECT_FALSE(stabilizerPrepFromVector(algos::wVector(3)).has_value());
    // T|+>: off-grid phase.
    CVector tplus(2);
    tplus[0] = 1.0 / std::sqrt(2.0);
    tplus[1] = Complex(std::cos(M_PI / 4), std::sin(M_PI / 4)) /
               std::sqrt(2.0);
    EXPECT_FALSE(stabilizerPrepFromVector(tplus).has_value());
    // Non-uniform magnitudes.
    CVector skew(4);
    skew[0] = std::sqrt(0.7);
    skew[3] = std::sqrt(0.3);
    EXPECT_FALSE(stabilizerPrepFromVector(skew).has_value());
}

TEST(StabilizerPrepTest, RandomCliffordRoundTrip)
{
    // Every random Clifford output state must be recognized and
    // re-prepared exactly.
    Rng rng(23);
    for (int trial = 0; trial < 15; ++trial) {
        const int n = 2 + int(rng.index(3));
        QuantumCircuit qc(n);
        for (int g = 0; g < 15; ++g) {
            const int kind = int(rng.index(5));
            const int a = int(rng.index(n));
            int b = int(rng.index(n));
            if (b == a) b = (b + 1) % n;
            switch (kind) {
              case 0: qc.h(a); break;
              case 1: qc.s(a); break;
              case 2: qc.cx(a, b); break;
              case 3: qc.cz(a, b); break;
              case 4: qc.z(a); break;
            }
        }
        const CVector psi = finalState(qc).amplitudes();
        auto prep = stabilizerPrepFromVector(psi);
        ASSERT_TRUE(prep.has_value()) << "trial " << trial;
        EXPECT_TRUE(finalState(*prep).amplitudes().equalsUpToPhase(
            psi, 1e-7))
            << "trial " << trial;
    }
}

TEST(StabilizerPrepTest, ClusterPrepIsMinimal)
{
    // The recognizer reconstructs the canonical H + CZ cluster prep.
    QuantumCircuit prep =
        *stabilizerPrepFromVector(algos::linearClusterVector(4));
    EXPECT_EQ(prep.countGates("h"), 4);
    EXPECT_EQ(prep.countGates("cz"), 3);
    EXPECT_EQ(prep.countCx(), 0);
}

TEST(StabilizerPrepTest, FeedsPrepareState)
{
    // prepareState now routes cluster states through the Clifford path.
    QuantumCircuit prep = prepareState(algos::linearClusterVector(4));
    EXPECT_TRUE(isCliffordCircuit(prep));
    // Lowered cost: 3 CZ -> 3 CX + Hs, far below the multiplexed path.
    EXPECT_LE(prep.countGates("cz") + prep.countCx(), 4);
}

TEST(StabilizerPrepTest, ClusterStateAssertionCost)
{
    // Asserting a cluster state (Table II's "entanglement" family) now
    // costs O(n) CX via the Clifford prep.
    const CVector cluster = algos::linearClusterVector(4);
    AssertedProgram prog(algos::linearClusterPrep(4));
    prog.assertState({0, 1, 2, 3}, StateSet::pure(cluster),
                     AssertionDesign::kSwap);
    EXPECT_LE(prog.slots()[0].cost.cx, 20);
    EXPECT_NEAR(runAssertedExact(prog).slot_error_prob[0], 0.0, 1e-7);
}

TEST(ObservablesTest, ApplyPauliMatchesDenseMatrix)
{
    Rng rng(31);
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 1 + int(rng.index(3));
        PauliString p(n);
        for (int q = 0; q < n; ++q) {
            p.setX(q, rng.bernoulli(0.5));
            p.setZ(q, rng.bernoulli(0.5));
        }
        p.setPhase(int(rng.index(4)));
        const CVector psi = randomState(n, rng);
        const CVector fast = applyPauli(p, psi);
        const CVector dense = p.toMatrix() * psi;
        EXPECT_TRUE(fast.approxEquals(dense, 1e-10))
            << p.toString() << " trial " << trial;
    }
}

TEST(ObservablesTest, ExpectationValues)
{
    // <+|X|+> = 1, <0|X|0> = 0, <0|Z|0> = 1.
    CVector plus{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)};
    test::expectComplexNear(
        pauliExpectation(PauliString::fromLabel("+X"), plus),
        Complex(1.0), 1e-10);
    test::expectComplexNear(
        pauliExpectation(PauliString::fromLabel("+X"),
                         CVector::basisState(2, 0)),
        Complex(0.0), 1e-10);
    test::expectComplexNear(
        pauliExpectation(PauliString::fromLabel("+Z"),
                         CVector::basisState(2, 0)),
        Complex(1.0), 1e-10);
}

TEST(ObservablesTest, StabilizerMembership)
{
    // GHZ is stabilized by XXX, ZZI, IZZ but not by ZII.
    const CVector ghz = algos::ghzVector(3);
    EXPECT_TRUE(stabilizes(PauliString::fromLabel("+XXX"), ghz));
    EXPECT_TRUE(stabilizes(PauliString::fromLabel("+ZZI"), ghz));
    EXPECT_TRUE(stabilizes(PauliString::fromLabel("+IZZ"), ghz));
    EXPECT_FALSE(stabilizes(PauliString::fromLabel("+ZII"), ghz));
    EXPECT_FALSE(stabilizes(PauliString::fromLabel("-XXX"), ghz));

    // Tableau generators of a prepared state stabilize its vector.
    QuantumCircuit prep = algos::linearClusterPrep(3);
    StabilizerTableau tableau = runClifford(prep);
    const CVector cluster = algos::linearClusterVector(3);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(stabilizes(tableau.stabilizer(i), cluster))
            << tableau.stabilizer(i).toString();
    }
}

} // namespace
} // namespace qa
