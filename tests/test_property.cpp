/**
 * @file
 * Randomized property tests over the whole stack:
 *  - design equivalence: all four assertion designs produce identical
 *    exact error probabilities on random targets and rank regimes;
 *  - non-disturbance: passing assertions leave the program's output
 *    distribution exactly unchanged, including on entangled subsets;
 *  - pipeline invariance: lowering + peephole preserve the exact
 *    outcome distribution of measuring circuits;
 *  - sampled-vs-exact agreement for random asserted programs;
 *  - affine recognition against a brute-force reference.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "linalg/eigen.hpp"
#include "linalg/gram_schmidt.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/cnot_synth.hpp"
#include "synth/state_prep.hpp"
#include "transpile/peephole.hpp"

namespace qa
{
namespace
{

QuantumCircuit
randomProgram(int n, int gates, Rng& rng, bool with_measure = false)
{
    QuantumCircuit qc(n, with_measure ? n : 0);
    for (int g = 0; g < gates; ++g) {
        const int kind = int(rng.index(7));
        const int a = int(rng.index(n));
        int b = int(rng.index(n));
        if (b == a) b = (b + 1) % n;
        switch (kind) {
          case 0: qc.h(a); break;
          case 1:
            qc.u3(a, rng.uniform(0, 3), rng.uniform(0, 3),
                  rng.uniform(0, 3));
            break;
          case 2: qc.cx(a, b); break;
          case 3: qc.cz(a, b); break;
          case 4: qc.t(a); break;
          case 5: qc.swap(a, b); break;
          case 6: qc.rz(a, rng.uniform(-2, 2)); break;
        }
    }
    if (with_measure) qc.measureAll();
    return qc;
}

/** Exact slot error for asserting `set` against a prepared state. */
double
exactError(const CVector& prepared, const StateSet& set,
           AssertionDesign design)
{
    AssertedProgram prog(prepareState(prepared));
    std::vector<int> qubits;
    for (int q = 0; q < prog.numProgramQubits(); ++q) qubits.push_back(q);
    prog.assertState(qubits, set, design);
    return runAssertedExact(prog).slot_error_prob[0];
}

class DesignEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(DesignEquivalence, AllDesignsAgreeOnErrorProbability)
{
    const int n = std::get<0>(GetParam());
    const int rank = std::get<1>(GetParam());
    if (rank >= (1 << n)) GTEST_SKIP();
    Rng rng(uint64_t(7000 + 13 * n + rank));

    // Random rank-`rank` correct subspace.
    std::vector<CVector> members;
    for (int i = 0; i < rank; ++i) members.push_back(randomState(n, rng));
    std::vector<CVector> ortho = orthonormalize(members);
    while (int(ortho.size()) < rank) {
        ortho.push_back(randomState(n, rng));
        ortho = orthonormalize(ortho);
    }
    const StateSet set = rank == 1 ? StateSet::pure(ortho[0])
                                   : StateSet::approximate(ortho);

    for (int trial = 0; trial < 3; ++trial) {
        const CVector probe = randomState(n, rng);
        const double reference =
            exactError(probe, set, AssertionDesign::kSwap);
        for (AssertionDesign design :
             {AssertionDesign::kOr, AssertionDesign::kNdd,
              AssertionDesign::kProq}) {
            EXPECT_NEAR(exactError(probe, set, design), reference, 1e-6)
                << "n=" << n << " rank=" << rank << " design "
                << designName(design);
        }
        // The theoretical value: 1 - <probe|P|probe>.
        CorrectSubspace ss = analyzeStateSet(set);
        const double overlap =
            probe.inner(ss.projector() * probe).real();
        EXPECT_NEAR(reference, 1.0 - overlap, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DesignEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3, 5)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& param_info) {
        return "n" + std::to_string(std::get<0>(param_info.param)) + "_t" +
               std::to_string(std::get<1>(param_info.param));
    });

TEST(NonDisturbanceTest, PassingAssertionKeepsOutputDistribution)
{
    // Program -> (assert true reduced state of random subset) ->
    // measure: the program-bit distribution must equal the unasserted
    // run exactly.
    Rng rng(801);
    for (int trial = 0; trial < 5; ++trial) {
        const int n = 3;
        QuantumCircuit program = randomProgram(n, 12, rng);
        const CVector state = finalState(program).amplitudes();

        // Random nonempty proper subset of qubits.
        std::vector<int> subset;
        for (int q = 0; q < n; ++q) {
            if (rng.bernoulli(0.5)) subset.push_back(q);
        }
        if (subset.empty()) subset.push_back(int(rng.index(n)));

        const CMatrix rho =
            partialTrace(densityFromPure(state), subset);
        StateSet set = rankPsd(rho) == (size_t(1) << subset.size())
                           ? StateSet::pure(state) // full rank: assert all
                           : StateSet::mixed(rho);
        std::vector<int> target = int(set.numQubits()) == n
                                      ? [&] {
                                            std::vector<int> all;
                                            for (int q = 0; q < n; ++q) {
                                                all.push_back(q);
                                            }
                                            return all;
                                        }()
                                      : subset;

        AssertedProgram asserted(program);
        asserted.assertState(target, set, AssertionDesign::kSwap);
        asserted.measureProgram();
        const AssertionOutcomeExact with = runAssertedExact(asserted);
        EXPECT_NEAR(with.pass_prob, 1.0, 1e-7) << "trial " << trial;

        AssertedProgram plain(program);
        plain.measureProgram();
        const AssertionOutcomeExact without = runAssertedExact(plain);
        for (const auto& [bits, p] : without.program_dist.probs) {
            EXPECT_NEAR(with.program_dist.probability(bits), p, 1e-7)
                << "trial " << trial << " bits " << bits;
        }
    }
}

TEST(PipelineInvarianceTest, LoweringPreservesMeasuredDistributions)
{
    Rng rng(802);
    for (int trial = 0; trial < 5; ++trial) {
        QuantumCircuit qc = randomProgram(3, 10, rng, true);
        const Distribution before = exactDistribution(qc);
        const Distribution after =
            exactDistribution(optimizeAndLower(qc));
        for (const auto& [bits, p] : before.probs) {
            EXPECT_NEAR(after.probability(bits), p, 1e-7)
                << "trial " << trial;
        }
    }
}

TEST(PipelineInvarianceTest, AssertedCircuitSurvivesLowering)
{
    // Lower the full asserted circuit (including mid-circuit ancilla
    // measurement) and compare exact distributions.
    Rng rng(803);
    const CVector psi = randomState(2, rng);
    AssertedProgram prog(prepareState(psi));
    prog.assertState({0, 1}, StateSet::pure(psi), AssertionDesign::kNdd);
    prog.measureProgram();
    const Distribution before = exactDistribution(prog.circuit());
    const Distribution after =
        exactDistribution(optimizeAndLower(prog.circuit()));
    for (const auto& [bits, p] : before.probs) {
        EXPECT_NEAR(after.probability(bits), p, 1e-7) << bits;
    }
}

TEST(SampledVsExactTest, RandomAssertedPrograms)
{
    Rng rng(804);
    for (int trial = 0; trial < 3; ++trial) {
        QuantumCircuit program = randomProgram(2, 8, rng);
        const CVector asserted_state = randomState(2, rng);
        AssertedProgram prog(program);
        prog.assertState({0, 1}, StateSet::pure(asserted_state),
                         AssertionDesign::kSwap);
        prog.measureProgram();
        const AssertionOutcomeExact exact = runAssertedExact(prog);
        SimOptions options;
        options.shots = 30000;
        options.seed = 900 + uint64_t(trial);
        const AssertionOutcome sampled = runAsserted(prog, options);
        EXPECT_NEAR(sampled.slot_error_rate[0], exact.slot_error_prob[0],
                    0.02)
            << "trial " << trial;
        for (const auto& [bits, p] : exact.program_dist.probs) {
            EXPECT_NEAR(
                sampled.program_counts.toDistribution().probability(bits),
                p, 0.02)
                << "trial " << trial;
        }
    }
}

TEST(AffineRecognitionTest, AgreesWithBruteForce)
{
    // Random subsets of GF(2)^n: findAffineCompression accepts exactly
    // the affine ones (offset + closed under pairwise XOR).
    Rng rng(805);
    const int n = 4;
    for (int trial = 0; trial < 200; ++trial) {
        const size_t count = 1 + rng.index(8);
        std::vector<uint64_t> elems;
        std::vector<bool> used(1 << n, false);
        while (elems.size() < count) {
            const uint64_t e = rng.index(1 << n);
            if (!used[e]) {
                used[e] = true;
                elems.push_back(e);
            }
        }
        // Brute force: affine iff for all a,b,c in set, a^b^c in set.
        bool affine = (count & (count - 1)) == 0;
        if (affine) {
            for (uint64_t a : elems) {
                for (uint64_t b : elems) {
                    for (uint64_t c : elems) {
                        if (!used[a ^ b ^ c]) affine = false;
                    }
                }
            }
        }
        const auto comp = findAffineCompression(elems, n);
        EXPECT_EQ(comp.has_value(), affine) << "trial " << trial;
        if (comp) {
            for (uint64_t e : elems) {
                const uint64_t img = comp->map.apply(e ^ comp->offset);
                for (int f : comp->check_qubits) {
                    EXPECT_EQ((img >> f) & 1, 0u);
                }
            }
        }
    }
}

TEST(AncillaPoolTest, ManySlotsStayNarrow)
{
    // 20 sequential assertions on a 2-qubit program must not grow the
    // register beyond program + max-needed ancillas.
    Rng rng(806);
    const CVector psi = randomState(2, rng);
    AssertedProgram prog(prepareState(psi));
    for (int i = 0; i < 20; ++i) {
        prog.assertState({0, 1}, StateSet::pure(psi),
                         i % 2 ? AssertionDesign::kNdd
                               : AssertionDesign::kSwap);
    }
    EXPECT_LE(prog.circuit().numQubits(), 4);
    EXPECT_EQ(prog.slots().size(), 20u);
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_NEAR(outcome.pass_prob, 1.0, 1e-6);
}

} // namespace
} // namespace qa
