/**
 * @file
 * Tests for the common substrate: error macros, deterministic RNG, and
 * the formatting/table utilities the benches rely on.
 */
#include <atomic>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "linalg/types.hpp"

namespace qa
{
namespace
{

TEST(ErrorTest, MacrosThrowTypedExceptions)
{
    EXPECT_THROW(QA_REQUIRE(false, "user precondition"), UserError);
    EXPECT_THROW(QA_ASSERT(false, "internal invariant"), InternalError);
    EXPECT_NO_THROW(QA_REQUIRE(true, "ok"));
    try {
        QA_FAIL("specific message");
        FAIL() << "QA_FAIL must throw";
    } catch (const UserError& e) {
        EXPECT_NE(std::string(e.what()).find("specific message"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
                  std::string::npos);
    }
}

TEST(RngTest, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
    Rng c(43);
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 10; ++i) {
        differs |= a2.uniform() != c.uniform();
    }
    EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRangeAndIndex)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-2.0, 3.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 3.0);
        const uint64_t idx = rng.index(5);
        EXPECT_LT(idx, 5u);
    }
}

TEST(RngTest, DiscreteMatchesWeights)
{
    Rng rng(9);
    const std::vector<double> weights = {1.0, 3.0, 0.0, 4.0};
    std::vector<int> counts(4, 0);
    const int draws = 40000;
    for (int i = 0; i < draws; ++i) ++counts[rng.discrete(weights)];
    EXPECT_NEAR(counts[0] / double(draws), 0.125, 0.01);
    EXPECT_NEAR(counts[1] / double(draws), 0.375, 0.01);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3] / double(draws), 0.5, 0.01);
}

TEST(RngTest, BernoulliBias)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.2);
    EXPECT_NEAR(hits / 20000.0, 0.2, 0.01);
}

TEST(FormatTest, ComplexRendering)
{
    EXPECT_EQ(formatComplex(Complex(1.0, 0.0), 2), "1.00");
    EXPECT_EQ(formatComplex(Complex(0.0, -0.5), 2), "-0.50i");
    EXPECT_EQ(formatComplex(Complex(1.0, 1.0), 2), "1.00+1.00i");
    EXPECT_EQ(formatComplex(Complex(1.0, -1.0), 2), "1.00-1.00i");
    // Snap-to-zero below the precision threshold.
    EXPECT_EQ(formatComplex(Complex(1.0, 1e-9), 4), "1.0000");
}

TEST(FormatTest, BitsAndPercents)
{
    EXPECT_EQ(formatBits(5, 4), "0101");
    EXPECT_EQ(formatBits(0, 3), "000");
    EXPECT_EQ(formatPercent(0.3612, 1), "36.1%");
    EXPECT_EQ(formatDouble(1.0 / 3.0, 3), "0.333");
}

TEST(TextTableTest, RendersAligned)
{
    TextTable table({"a", "long header"});
    table.addRow({"wide cell", "x"});
    const std::string out = table.render();
    // All lines equal length.
    size_t line_len = 0;
    std::istringstream iss(out);
    std::string line;
    while (std::getline(iss, line)) {
        if (line_len == 0) line_len = line.size();
        EXPECT_EQ(line.size(), line_len);
    }
    EXPECT_NE(out.find("wide cell"), std::string::npos);
}

TEST(TextTableTest, ValidatesArity)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), UserError);
    EXPECT_THROW(TextTable({}), UserError);
}

TEST(ErrorTest, ErrorCodesCarryStableNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::kGeneric), "generic");
    EXPECT_STREQ(errorCodeName(ErrorCode::kQasmSyntax), "qasm_syntax");
    EXPECT_STREQ(errorCodeName(ErrorCode::kInvalidNoiseModel),
                 "invalid_noise_model");
    try {
        QA_FAIL_CODE(ErrorCode::kBadFaultSite, "site 3 is not a gate");
    } catch (const UserError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kBadFaultSite);
        EXPECT_NE(std::string(e.what()).find("site 3"),
                  std::string::npos);
        return;
    }
    FAIL() << "QA_FAIL_CODE did not throw";
}

TEST(ParallelTest, WorkerExceptionPropagatesToCaller)
{
    // Regression: an exception thrown inside a parallelFor body used to
    // escape a pool thread and terminate the process. It must reach the
    // caller exactly once, with every thread joined.
    std::atomic<long> sum{0};
    EXPECT_THROW(
        parallelFor(10000, 1,
                    [&](uint64_t begin, uint64_t end) {
                        for (uint64_t i = begin; i < end; ++i) {
                            if (i == 8191) {
                                throw std::runtime_error("worker died");
                            }
                            sum.fetch_add(1,
                                          std::memory_order_relaxed);
                        }
                    }),
        std::runtime_error);
    // The pool must stay usable afterwards.
    std::atomic<long> count{0};
    parallelFor(1000, 1, [&](uint64_t begin, uint64_t end) {
        count.fetch_add(long(end - begin), std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 1000);
}

TEST(ParallelTest, InlineChunkExceptionAlsoPropagates)
{
    // The calling thread runs chunk 0 inline; its exception goes through
    // the same latch as pool-thread failures.
    EXPECT_THROW(parallelFor(8, 1,
                             [&](uint64_t begin, uint64_t) {
                                 if (begin == 0) {
                                     throw UserError("inline failure");
                                 }
                             }),
                 UserError);
}

TEST(ParallelTest, FirstExceptionKeepsOnlyTheFirst)
{
    FirstException latch;
    EXPECT_FALSE(latch.armed());
    latch.rethrow(); // no-op when empty
    try {
        throw std::runtime_error("first");
    } catch (...) {
        latch.capture();
    }
    try {
        throw std::runtime_error("second");
    } catch (...) {
        latch.capture();
    }
    EXPECT_TRUE(latch.armed());
    try {
        latch.rethrow();
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

} // namespace
} // namespace qa
