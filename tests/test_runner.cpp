/**
 * @file
 * Tests for the assertion runner: per-slot error attribution, pass-rate
 * accounting, post-selection marginals, and the exact/noisy backends.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"

namespace qa
{
namespace
{

TEST(RunnerTest, SlotErrorAttribution)
{
    // Slot 0 asserts a wrong state (always fails); slot 1 would assert
    // the corrected state (SWAP corrects) and must pass.
    const CVector zero2 = CVector::basisState(4, 0);
    const CVector one2 = CVector::basisState(4, 3);
    AssertedProgram prog(prepareState(one2));
    prog.assertState({0, 1}, StateSet::pure(zero2),
                     AssertionDesign::kSwap);
    prog.assertState({0, 1}, StateSet::pure(zero2),
                     AssertionDesign::kSwap);
    const AssertionOutcomeExact out = runAssertedExact(prog);
    EXPECT_NEAR(out.slot_error_prob[0], 1.0, 1e-9);
    EXPECT_NEAR(out.slot_error_prob[1], 0.0, 1e-9);
    // Pass = ALL slots zero.
    EXPECT_NEAR(out.pass_prob, 0.0, 1e-9);
}

TEST(RunnerTest, PassRateCombinesSlots)
{
    // Two independent coin-flip assertions: pass rate is the joint.
    CVector half(2);
    half[0] = half[1] = 1.0 / std::sqrt(2.0);
    AssertedProgram prog(prepareState(half));
    // Assert |0>: passes with p=1/2 and collapses/corrects to |0>...
    // the SWAP design rebuilds |0>, so the second identical assertion
    // passes; use NDD (projective) so the second slot is conditional.
    prog.assertState({0}, StateSet::pure(CVector::basisState(2, 0)),
                     AssertionDesign::kNdd);
    prog.assertState({0}, StateSet::pure(CVector::basisState(2, 0)),
                     AssertionDesign::kNdd);
    const AssertionOutcomeExact out = runAssertedExact(prog);
    EXPECT_NEAR(out.slot_error_prob[0], 0.5, 1e-9);
    EXPECT_NEAR(out.slot_error_prob[1], 0.5, 1e-9); // same branch fails
    EXPECT_NEAR(out.pass_prob, 0.5, 1e-9);          // correlated
}

TEST(RunnerTest, ProgramMarginalsIgnoreAssertionBits)
{
    AssertedProgram prog(algos::ghzPrep(3));
    prog.assertState({0, 1, 2}, StateSet::pure(algos::ghzVector(3)),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    const AssertionOutcomeExact out = runAssertedExact(prog);
    EXPECT_NEAR(out.program_dist.probability("000"), 0.5, 1e-9);
    EXPECT_NEAR(out.program_dist.probability("111"), 0.5, 1e-9);
    // Raw distribution strings cover assertion + program bits.
    for (const auto& [bits, p] : out.raw.probs) {
        EXPECT_EQ(bits.size(), size_t(prog.circuit().numClbits()));
    }
}

TEST(RunnerTest, PostSelectionConditionsOnAllSlots)
{
    // Program (|00> + |11>)/sqrt2 with an assertion that only the |00>
    // branch survives: post-selected counts contain |00> alone and the
    // surviving mass is the branch probability.
    AssertedProgram prog(algos::bellPrep(algos::BellKind::kPhiPlus));
    prog.assertState({0, 1}, StateSet::pure(CVector::basisState(4, 0)),
                     AssertionDesign::kNdd);
    prog.measureProgram();

    SimOptions options;
    options.shots = 20000;
    options.seed = 5;
    const AssertionOutcome out = runAsserted(prog, options);
    EXPECT_NEAR(out.pass_rate, 0.5, 0.02);
    EXPECT_NEAR(double(out.program_counts_passed.shots) / options.shots,
                0.5, 0.02);
    EXPECT_EQ(out.program_counts_passed.map.count("11"), 0u);
    EXPECT_GT(out.program_counts_passed.map.at("00"), 0);
}

TEST(RunnerTest, NoisyExactBackendMatchesSampled)
{
    const NoiseModel noise = NoiseModel::depolarizing(0.01, 0.03);
    AssertedProgram prog(algos::bellPrep(algos::BellKind::kPhiPlus));
    prog.assertState({0, 1},
                     StateSet::pure(algos::bellVector(
                         algos::BellKind::kPhiPlus)),
                     AssertionDesign::kNdd);
    prog.measureProgram();

    const AssertionOutcomeExact exact = runAssertedExact(prog, &noise);
    EXPECT_GT(exact.slot_error_prob[0], 0.001); // noise floor

    SimOptions options;
    options.shots = 40000;
    options.seed = 7;
    options.noise = &noise;
    const AssertionOutcome sampled = runAsserted(prog, options);
    EXPECT_NEAR(sampled.slot_error_rate[0], exact.slot_error_prob[0],
                0.01);
    EXPECT_NEAR(sampled.pass_rate, exact.pass_prob, 0.01);
}

TEST(RunnerTest, EmptySlotListIsTrivial)
{
    AssertedProgram prog(algos::bellPrep(algos::BellKind::kPhiPlus));
    prog.measureProgram();
    const AssertionOutcomeExact out = runAssertedExact(prog);
    EXPECT_TRUE(out.slot_error_prob.empty());
    EXPECT_NEAR(out.pass_prob, 1.0, 1e-12);
    // Post-selected == unconditioned.
    for (const auto& [bits, p] : out.program_dist.probs) {
        EXPECT_NEAR(out.program_dist_passed.probability(bits), p, 1e-12);
    }
}

} // namespace
} // namespace qa
