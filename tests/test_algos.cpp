/**
 * @file
 * Tests for the workload library: canonical states, QFT, QPE, the
 * Deutsch-Jozsa oracles, and the Fourier-space controlled adder.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/adder.hpp"
#include "algos/deutsch_jozsa.hpp"
#include "algos/qft.hpp"
#include "algos/qpe.hpp"
#include "algos/states.hpp"
#include "algos/teleport.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/unitary_synth.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

using namespace algos;

TEST(StatePrepsTest, BellStates)
{
    for (BellKind kind : {BellKind::kPhiPlus, BellKind::kPhiMinus,
                          BellKind::kPsiPlus, BellKind::kPsiMinus}) {
        EXPECT_TRUE(finalState(bellPrep(kind))
                        .amplitudes()
                        .equalsUpToPhase(bellVector(kind), 1e-10));
    }
    // Distinct kinds are orthogonal.
    EXPECT_NEAR(fidelity(bellVector(BellKind::kPhiPlus),
                         bellVector(BellKind::kPsiMinus)),
                0.0, 1e-12);
}

TEST(StatePrepsTest, GhzFamilyAndBugs)
{
    for (int n : {2, 3, 4, 5}) {
        EXPECT_TRUE(finalState(ghzPrep(n)).amplitudes().equalsUpToPhase(
            ghzVector(n), 1e-10))
            << n;
    }
    // Bug1: sign flip -- same probabilities, different state.
    CVector bug1 = finalState(ghzPrep(3, 1)).amplitudes();
    EXPECT_FALSE(bug1.equalsUpToPhase(ghzVector(3), 1e-6));
    EXPECT_NEAR(std::norm(bug1[0]), 0.5, 1e-9);
    EXPECT_NEAR(std::norm(bug1[7]), 0.5, 1e-9);

    // Bug2: wrong entanglement -- support changes.
    CVector bug2 = finalState(ghzPrep(3, 2)).amplitudes();
    EXPECT_NEAR(std::norm(bug2[7]), 0.0, 1e-9);
}

TEST(StatePrepsTest, WAndCluster)
{
    EXPECT_NEAR(wVector(3).norm(), 1.0, 1e-12);
    EXPECT_TRUE(finalState(wPrep(4)).amplitudes().equalsUpToPhase(
        wVector(4), 1e-7));
    CVector cluster = linearClusterVector(3);
    // Cluster states have uniform magnitudes 1/sqrt(2^n).
    for (size_t i = 0; i < cluster.dim(); ++i) {
        EXPECT_NEAR(std::abs(cluster[i]), 1.0 / std::sqrt(8.0), 1e-10);
    }
}

TEST(QftTest, MatchesDft)
{
    for (int n : {1, 2, 3}) {
        const size_t dim = size_t(1) << n;
        CMatrix dft(dim, dim);
        for (size_t r = 0; r < dim; ++r) {
            for (size_t c = 0; c < dim; ++c) {
                const double angle = 2.0 * M_PI * double(r) * double(c) /
                                     double(dim);
                dft(r, c) = Complex(std::cos(angle), std::sin(angle)) /
                            std::sqrt(double(dim));
            }
        }
        EXPECT_TRUE(circuitUnitary(qft(n)).equalsUpToPhase(dft, 1e-9))
            << "n = " << n;
    }
}

TEST(QftTest, InverseUndoes)
{
    QuantumCircuit qc(3);
    std::vector<int> qubits{0, 1, 2};
    appendQft(qc, qubits);
    appendIqft(qc, qubits);
    EXPECT_TRUE(circuitUnitary(qc).equalsUpToPhase(CMatrix::identity(8),
                                                   1e-9));
}

TEST(QpeTest, CleanRunDecodesPhase)
{
    // lambda = pi/4: eigenphase 1/8 -> counting register reads 2 (0010)
    // on the |1> eigenstate branch and 0 on the |0> branch.
    QpeProgram qpe(4, M_PI / 4);
    CVector final = qpe.expectedStateAtSlot(qpe.numSlots());
    // Support: |0000>|0> and |0010>|1>.
    EXPECT_NEAR(std::norm(final[0]), 0.5, 1e-9);
    EXPECT_NEAR(std::norm(final[2 * 2 + 1]), 0.5, 1e-9);
}

TEST(QpeTest, SlotStatesMatchPaperStructure)
{
    QpeProgram qpe(4, M_PI / 8);
    // Slot 1: |+>^4 (x) |+>.
    CVector v1 = qpe.expectedStateAtSlot(1);
    for (size_t i = 0; i < 32; ++i) {
        EXPECT_NEAR(std::abs(v1[i]), 1.0 / std::sqrt(32.0), 1e-9);
    }
    // Slot 5 has the (|++++>|0> + |theta4>|1>)/sqrt2 structure: all
    // magnitudes still uniform, phases only on the |1> branch.
    CVector v5 = qpe.expectedStateAtSlot(5);
    for (size_t i = 0; i < 32; ++i) {
        EXPECT_NEAR(std::abs(v5[i]), 1.0 / std::sqrt(32.0), 1e-9);
        if (i % 2 == 0) {
            EXPECT_NEAR(std::arg(v5[i]), std::arg(v5[0]), 1e-9);
        }
    }
}

TEST(QpeTest, BugsChangeSlotStates)
{
    QpeProgram clean(4, M_PI / 8);
    for (QpeBug bug : {QpeBug::kFixedAngle, QpeBug::kMissingControl,
                       QpeBug::kWrongParamOrder}) {
        QpeProgram buggy(4, M_PI / 8, bug);
        const CVector got = finalState(buggy.full()).amplitudes();
        const CVector want = finalState(clean.full()).amplitudes();
        EXPECT_FALSE(got.equalsUpToPhase(want, 1e-6));
    }
}

TEST(QpeTest, FixedAngleBugMatchesCleanUpToSlot2)
{
    // Bug1 only diverges once 2^j != 1, i.e. from the second
    // controlled power onward (paper Sec. IX-A: slots 1 and 2 still
    // pass, slots 3+ fail).
    QpeProgram clean(4, M_PI / 8);
    QpeProgram buggy(4, M_PI / 8, QpeBug::kFixedAngle);
    auto prefixState = [](const QpeProgram& qpe, int slots) {
        QuantumCircuit qc(qpe.numQubits());
        std::vector<int> ident;
        for (int q = 0; q < qpe.numQubits(); ++q) ident.push_back(q);
        for (int s = 0; s < slots; ++s) qc.compose(qpe.stage(s), ident);
        return finalState(qc).amplitudes();
    };
    // Slot 2 (after the j = 0 power, angle 2^0 lambda): identical.
    EXPECT_TRUE(prefixState(clean, 2).equalsUpToPhase(
        prefixState(buggy, 2), 1e-10));
    // Slot 3 (after the j = 1 power): the dropped index shows.
    EXPECT_FALSE(prefixState(clean, 3).equalsUpToPhase(
        prefixState(buggy, 3), 1e-6));
}

TEST(DeutschJozsaTest, JointStatesMatchCircuits)
{
    for (int n : {1, 2, 3}) {
        EXPECT_TRUE(finalState(djFunctionEval(n, DjOracle::kConstantZero))
                        .amplitudes()
                        .equalsUpToPhase(
                            djJointState(n, DjOracle::kConstantZero),
                            1e-9));
        EXPECT_TRUE(finalState(djFunctionEval(n, DjOracle::kConstantOne))
                        .amplitudes()
                        .equalsUpToPhase(
                            djJointState(n, DjOracle::kConstantOne),
                            1e-9));
        for (uint64_t mask = 1; mask < (uint64_t(1) << n); ++mask) {
            EXPECT_TRUE(
                finalState(djFunctionEval(n, DjOracle::kBalancedMask, mask))
                    .amplitudes()
                    .equalsUpToPhase(
                        djJointState(n, DjOracle::kBalancedMask, mask),
                        1e-9))
                << "mask " << mask;
        }
    }
}

TEST(DeutschJozsaTest, SetSizes)
{
    EXPECT_EQ(djConstantSet(2).size(), 2u);
    EXPECT_EQ(djBalancedSet(2).size(), 6u); // Table IV rows 3-8
    EXPECT_EQ(djBalancedSet(1).size(), 2u);
}

TEST(DeutschJozsaTest, BuggyOracleOutsideBothSets)
{
    // f = AND is neither constant nor balanced: its joint state is not
    // in the span of either set... but retains overlap with the
    // constant set (the paper's reason Fig. 17b shows errors < 100%).
    const CVector buggy = djJointState(2, DjOracle::kBuggyAnd);
    double const_overlap = 0.0;
    for (const CVector& c : djConstantSet(2)) {
        const_overlap += std::norm(c.inner(buggy));
    }
    EXPECT_GT(const_overlap, 0.1);
    EXPECT_LT(const_overlap, 0.99);

    // Balanced joint states ARE members of the balanced set span.
    const CVector balanced =
        djJointState(2, DjOracle::kBalancedMask, 0b01);
    double found = 0.0;
    for (const CVector& b : djBalancedSet(2)) {
        found = std::max(found, std::norm(b.inner(balanced)));
    }
    EXPECT_NEAR(found, 1.0, 1e-9);
}

TEST(AdderTest, AddsForAllOperands)
{
    for (int width : {2, 3}) {
        const uint64_t mod = uint64_t(1) << width;
        for (uint64_t initial = 0; initial < mod; ++initial) {
            for (uint64_t a = 0; a < mod; ++a) {
                QuantumCircuit qc = adderProgram(width, initial, a, 0,
                                                 false);
                auto probs = finalState(qc).basisProbabilities(1e-6);
                ASSERT_EQ(probs.size(), 1u)
                    << width << " " << initial << " " << a;
                EXPECT_EQ(probs.begin()->first, (initial + a) % mod);
            }
        }
    }
}

TEST(AdderTest, ControlledVariants)
{
    // Controls off: identity; on: adds.
    for (int nc : {1, 2}) {
        QuantumCircuit off = adderProgram(3, 5, 2, nc, false);
        auto p_off = finalState(off).basisProbabilities(1e-6);
        ASSERT_EQ(p_off.size(), 1u);
        EXPECT_EQ(p_off.begin()->first >> nc, 5u);

        QuantumCircuit on = adderProgram(3, 5, 2, nc, true);
        auto p_on = finalState(on).basisProbabilities(1e-6);
        ASSERT_EQ(p_on.size(), 1u);
        EXPECT_EQ(p_on.begin()->first >> nc, 7u);
    }
}

TEST(AdderTest, BugChangesResult)
{
    QuantumCircuit good = adderProgram(3, 1, 5, 2, true, false);
    QuantumCircuit bad = adderProgram(3, 1, 5, 2, true, true);
    EXPECT_FALSE(finalState(bad).amplitudes().equalsUpToPhase(
        finalState(good).amplitudes(), 1e-6));
    // The buggy rotations only matter when both controls are on.
    QuantumCircuit bad_off = adderProgram(3, 1, 5, 2, false, true);
    QuantumCircuit good_off = adderProgram(3, 1, 5, 2, false, false);
    EXPECT_TRUE(finalState(bad_off).amplitudes().equalsUpToPhase(
        finalState(good_off).amplitudes(), 1e-9));
}

TEST(TeleportTest, DeliversPayloadExactly)
{
    Rng rng(91);
    for (int trial = 0; trial < 5; ++trial) {
        const CVector payload = randomState(1, rng);
        const CVector final =
            finalState(teleportProgram(payload)).amplitudes();
        // Qubit 2 (LSB) carries the payload; qubits 0, 1 end in |+>|+>.
        const CMatrix rho2 = partialTrace(densityFromPure(final), {2});
        EXPECT_NEAR(purity(rho2), 1.0, 1e-9);
        EXPECT_NEAR(fidelity(rho2, payload), 1.0, 1e-9);
    }
}

TEST(TeleportTest, BugsBreakDelivery)
{
    CVector payload{Complex(0.6, 0.0), Complex(0.0, 0.8)};
    for (TeleportBug bug : {TeleportBug::kMissingZCorrection,
                            TeleportBug::kWrongBellPair}) {
        const CVector final =
            finalState(teleportProgram(payload, bug)).amplitudes();
        const CMatrix rho2 = partialTrace(densityFromPure(final), {2});
        EXPECT_LT(fidelity(rho2, payload), 0.99);
    }
}

TEST(TeleportTest, MidProtocolBellAssertion)
{
    // Assert the resource pair right after stage 1; the wrong-pair bug
    // trips it, the correction bug does not (it happens later).
    const CVector payload{Complex(0.6, 0.0), Complex(0.0, 0.8)};
    auto err = [&](TeleportBug bug) {
        QuantumCircuit prefix(3);
        std::vector<int> ident{0, 1, 2};
        prefix.compose(teleportStage(payload, 0, bug), ident);
        prefix.compose(teleportStage(payload, 1, bug), ident);
        AssertedProgram prog(prefix);
        prog.assertState({1, 2},
                         StateSet::pure(bellVector(BellKind::kPhiPlus)),
                         AssertionDesign::kNdd);
        return runAssertedExact(prog).slot_error_prob[0];
    };
    EXPECT_NEAR(err(TeleportBug::kNone), 0.0, 1e-9);
    EXPECT_NEAR(err(TeleportBug::kWrongBellPair), 1.0, 1e-9);
    EXPECT_NEAR(err(TeleportBug::kMissingZCorrection), 0.0, 1e-9);
}

TEST(TeleportTest, FinalPayloadAssertion)
{
    // A precise single-qubit assertion on the delivered qubit catches
    // both bugs.
    const CVector payload{Complex(0.6, 0.0), Complex(0.0, 0.8)};
    auto err = [&](TeleportBug bug) {
        AssertedProgram prog(teleportProgram(payload, bug));
        prog.assertState({2}, StateSet::pure(payload),
                         AssertionDesign::kSwap);
        return runAssertedExact(prog).slot_error_prob[0];
    };
    EXPECT_NEAR(err(TeleportBug::kNone), 0.0, 1e-9);
    EXPECT_GT(err(TeleportBug::kMissingZCorrection), 0.05);
    EXPECT_GT(err(TeleportBug::kWrongBellPair), 0.05);
}

} // namespace
} // namespace qa
