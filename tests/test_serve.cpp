/**
 * @file
 * Tests for the assertion service layer (src/serve): structural job
 * hashing, the LRU result cache, scheduler determinism across worker
 * counts, backpressure/priority/deadline behaviour, the JSON parser,
 * and the qassertd wire protocol.
 */
#include <csignal>
#include <cstdio>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "circuit/hash.hpp"
#include "common/error.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "resilience/journal.hpp"
#include "serve/replay.hpp"
#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"
#include "synth/state_prep.hpp"

namespace qa
{
namespace serve
{
namespace
{

using namespace algos;

/** Bit-exact equality over everything a Counts carries. */
void
expectCountsIdentical(const Counts& a, const Counts& b)
{
    EXPECT_EQ(a.map, b.map);
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.truncated, b.truncated);
}

/** Bit-exact equality of two job results (modulo timing fields). */
void
expectResultsIdentical(const JobResult& a, const JobResult& b)
{
    EXPECT_EQ(int(a.status), int(b.status));
    expectCountsIdentical(a.counts, b.counts);
    expectCountsIdentical(a.program_counts, b.program_counts);
    EXPECT_EQ(a.slot_error_rate, b.slot_error_rate);
    EXPECT_EQ(a.pass_rate, b.pass_rate);
    EXPECT_EQ(a.truncated, b.truncated);
}

/** A small stochastic job: H on each qubit, slot over clbit 0. */
JobSpec
coinSpec(uint64_t seed, int shots = 256)
{
    JobSpec spec;
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.h(1);
    qc.measure(0, 0);
    qc.measure(1, 1);
    spec.circuit = qc;
    spec.assert_clbits = {{0}};
    spec.shots = shots;
    spec.seed = seed;
    return spec;
}

// ---------------------------------------------------------------------
// Structural hashing
// ---------------------------------------------------------------------

TEST(HashTest, CircuitHashIsStructural)
{
    EXPECT_EQ(circuitHash(ghzPrep(3)), circuitHash(ghzPrep(3)));
    EXPECT_NE(circuitHash(ghzPrep(3)), circuitHash(ghzPrep(4)));
    EXPECT_NE(circuitHash(ghzPrep(3)), circuitHash(wPrep(3)));

    QuantumCircuit a(1), b(1);
    a.rz(0, 0.5);
    b.rz(0, 0.5 + 1e-12);
    EXPECT_NE(circuitHash(a), circuitHash(b));

    // -0.0 and 0.0 encode the same rotation and must hash alike.
    QuantumCircuit pos(1), neg(1);
    pos.rz(0, 0.0);
    neg.rz(0, -0.0);
    EXPECT_EQ(circuitHash(pos), circuitHash(neg));

    EXPECT_EQ(circuitHash(a).str().size(), 32u);
}

TEST(HashTest, NoiseFingerprintIsSemantic)
{
    const NoiseModel none;
    EXPECT_EQ(none.fingerprint(), NoiseModel{}.fingerprint());
    EXPECT_NE(none.fingerprint(),
              NoiseModel::ibmqMelbourneLike().fingerprint());
    EXPECT_NE(NoiseModel::depolarizing(0.01, 0.05).fingerprint(),
              NoiseModel::depolarizing(0.02, 0.05).fingerprint());
    EXPECT_EQ(NoiseModel::depolarizing(0.01, 0.05).fingerprint(),
              NoiseModel::depolarizing(0.01, 0.05).fingerprint());
}

TEST(JobTest, KeyCoversResultInputsOnly)
{
    const JobSpec base = coinSpec(7);
    const Hash128 key = jobKey(base);

    // Execution knobs that cannot change the payload share the key.
    JobSpec threads = base;
    threads.num_threads = 8;
    threads.deadline_ms = 50.0;
    threads.priority = 9;
    threads.tag = "other";
    EXPECT_EQ(jobKey(threads), key);

    // Everything the result depends on separates it.
    JobSpec seed = base;
    seed.seed = 8;
    EXPECT_NE(jobKey(seed), key);
    JobSpec shots = base;
    shots.shots = 512;
    EXPECT_NE(jobKey(shots), key);
    JobSpec slots = base;
    slots.assert_clbits = {{1}};
    EXPECT_NE(jobKey(slots), key);
    JobSpec noisy = base;
    noisy.noise = NoiseModel::depolarizing(0.01, 0.02);
    EXPECT_NE(jobKey(noisy), key);
    JobSpec circuit = base;
    circuit.circuit.x(1);
    EXPECT_NE(jobKey(circuit), key);
}

// ---------------------------------------------------------------------
// executeJob
// ---------------------------------------------------------------------

TEST(JobTest, PlainPathPostSelectsOnSlots)
{
    // Deterministic failure: clbit 0 always reads 1.
    JobSpec fail;
    QuantumCircuit qc(2, 2);
    qc.x(0);
    qc.x(1);
    qc.measure(0, 0);
    qc.measure(1, 1);
    fail.circuit = qc;
    fail.assert_clbits = {{0}};
    fail.shots = 64;
    const JobResult failed = executeJob(fail);
    EXPECT_EQ(int(failed.status), int(JobStatus::kOk));
    EXPECT_EQ(failed.pass_rate, 0.0);
    ASSERT_EQ(failed.slot_error_rate.size(), 1u);
    EXPECT_EQ(failed.slot_error_rate[0], 1.0);
    EXPECT_TRUE(failed.program_counts.map.empty());
    EXPECT_EQ(failed.program_counts.shots, 0);

    // Stochastic slot: accepted histogram is the post-selection of the
    // raw one, restricted to the non-assert clbit.
    const JobResult coin = executeJob(coinSpec(11));
    int accepted = 0;
    for (const auto& [bits, n] : coin.counts.map) {
        if (bits[0] == '0') accepted += n;
    }
    EXPECT_GT(accepted, 0);
    EXPECT_EQ(coin.program_counts.shots, accepted);
    EXPECT_DOUBLE_EQ(coin.pass_rate,
                     double(accepted) / double(coin.counts.shots));
    for (const auto& [bits, n] : coin.program_counts.map) {
        EXPECT_EQ(bits.size(), 1u); // clbit 1 only
        (void)n;
    }
}

TEST(JobTest, PlainPathRejectsBadSpecs)
{
    JobSpec retry = coinSpec(1);
    retry.policy = AssertionPolicy::kRetry;
    try {
        executeJob(retry);
        FAIL() << "kRetry must be rejected on the plain path";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kPolicyUnsupported);
    }

    JobSpec out_of_range = coinSpec(1);
    out_of_range.assert_clbits = {{5}};
    try {
        executeJob(out_of_range);
        FAIL() << "out-of-range slot clbit must be rejected";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
    }
}

TEST(JobTest, ProgramPathMatchesDirectPolicyRun)
{
    auto program = std::make_shared<AssertedProgram>(ghzPrep(3));
    program->assertState({0, 1, 2}, StateSet::pure(ghzVector(3)),
                         AssertionDesign::kSwap);
    program->measureProgram();

    JobSpec spec;
    spec.program = program;
    spec.policy = AssertionPolicy::kDiscard;
    spec.shots = 200;
    spec.seed = 99;
    const JobResult via_job = executeJob(spec);

    SimOptions options;
    options.shots = 200;
    options.seed = 99;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kDiscard;
    const PolicyOutcome direct =
        runAssertedPolicy(*program, options, popts);

    expectCountsIdentical(via_job.counts, direct.raw);
    expectCountsIdentical(via_job.program_counts, direct.program_counts);
    EXPECT_EQ(via_job.slot_error_rate, direct.slot_error_rate);
    EXPECT_EQ(via_job.pass_rate, direct.pass_rate);
}

// ---------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------

JobResult
okResult(int marker)
{
    JobResult r;
    r.counts.shots = marker;
    r.counts.map["0"] = marker;
    r.program_counts = r.counts;
    return r;
}

Hash128
keyOf(uint64_t tag)
{
    HashStream s(tag);
    s.u64(tag);
    return s.digest();
}

TEST(CacheTest, LruEvictsColdestAndCountsEverything)
{
    ResultCache cache(2);
    EXPECT_FALSE(cache.get(keyOf(1)).has_value()); // miss
    EXPECT_TRUE(cache.put(keyOf(1), okResult(1)));
    EXPECT_TRUE(cache.put(keyOf(2), okResult(2)));

    // Refresh key 1, then insert key 3: key 2 is now the LRU victim.
    EXPECT_TRUE(cache.get(keyOf(1)).has_value());
    EXPECT_TRUE(cache.put(keyOf(3), okResult(3)));
    EXPECT_FALSE(cache.get(keyOf(2)).has_value());
    ASSERT_TRUE(cache.get(keyOf(1)).has_value());
    EXPECT_EQ(cache.get(keyOf(1))->counts.shots, 1);
    EXPECT_TRUE(cache.get(keyOf(3)).has_value());

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.capacity, 2u);
    EXPECT_EQ(stats.insertions, 3u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 4u);
    EXPECT_GT(stats.hitRate(), 0.5);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(cache.get(keyOf(1)).has_value());
}

TEST(CacheTest, OnlyCleanResultsAreAdmitted)
{
    ResultCache cache(4);
    JobResult truncated = okResult(1);
    truncated.truncated = true;
    EXPECT_FALSE(cache.put(keyOf(1), truncated));

    JobResult failed = okResult(2);
    failed.status = JobStatus::kFailed;
    EXPECT_FALSE(cache.put(keyOf(2), failed));

    ResultCache disabled(0);
    EXPECT_FALSE(disabled.put(keyOf(3), okResult(3)));
    EXPECT_FALSE(disabled.get(keyOf(3)).has_value());
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

TEST(SchedulerTest, ResultsAreBitIdenticalAcrossWorkerCounts)
{
    // The acceptance bar: per-job payloads must not depend on pool
    // size, arrival order, or which worker drew the job.
    std::vector<JobSpec> specs;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        JobSpec spec = coinSpec(seed, 128 + int(seed) * 16);
        spec.use_cache = false;
        specs.push_back(spec);
    }

    std::vector<JobResult> reference;
    for (const JobSpec& spec : specs) {
        reference.push_back(executeJob(spec));
    }

    for (int workers : {1, 2, 8}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        SchedulerOptions options;
        options.workers = workers;
        Scheduler scheduler(options);
        std::vector<std::future<JobResult>> futures;
        for (const JobSpec& spec : specs) {
            futures.push_back(scheduler.submit(spec));
        }
        for (size_t i = 0; i < futures.size(); ++i) {
            SCOPED_TRACE("job " + std::to_string(i));
            const JobResult result = futures[i].get();
            EXPECT_FALSE(result.cache_hit);
            expectResultsIdentical(result, reference[i]);
        }
    }
}

TEST(SchedulerTest, CacheHitsAreBitIdenticalToUncachedExecution)
{
    SchedulerOptions options;
    options.workers = 4;
    options.cache_capacity = 64;
    Scheduler scheduler(options);

    const JobSpec spec = coinSpec(42);
    const JobResult reference = executeJob(spec);

    const JobResult first = scheduler.submit(spec).get();
    EXPECT_FALSE(first.cache_hit);
    expectResultsIdentical(first, reference);

    // Resubmit with different execution knobs: still the same key.
    JobSpec again = spec;
    again.num_threads = 2;
    again.priority = 3;
    const JobResult second = scheduler.submit(again).get();
    EXPECT_TRUE(second.cache_hit);
    expectResultsIdentical(second, reference);

    const CacheStats stats = scheduler.cacheStats();
    EXPECT_GE(stats.hits, 1u);
    EXPECT_GE(stats.insertions, 1u);
    const MetricsSnapshot metrics = scheduler.metrics();
    EXPECT_EQ(metrics.completed, 2u);
    EXPECT_GE(metrics.cache_hits, 1u);
    EXPECT_GT(metrics.cacheHitRate(), 0.0);
}

TEST(SchedulerTest, FullQueueRejectsWithTypedError)
{
    SchedulerOptions options;
    options.workers = 1;
    options.queue_capacity = 2;
    options.start_paused = true;
    Scheduler scheduler(options);

    std::vector<std::future<JobResult>> futures;
    futures.push_back(scheduler.submit(coinSpec(1, 32)));
    futures.push_back(scheduler.submit(coinSpec(2, 32)));
    try {
        scheduler.submit(coinSpec(3, 32));
        FAIL() << "third submission must hit admission control";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kQueueFull);
    }
    EXPECT_EQ(scheduler.metrics().rejected, 1u);
    EXPECT_EQ(scheduler.metrics().queue_depth, 2u);

    // The rejected job consumed no slot: the admitted ones still run.
    scheduler.resume();
    for (auto& f : futures) {
        EXPECT_EQ(int(f.get().status), int(JobStatus::kOk));
    }
    scheduler.drain();
    EXPECT_EQ(scheduler.metrics().completed, 2u);
}

TEST(SchedulerTest, HigherPriorityRunsFirstFifoWithin)
{
    SchedulerOptions options;
    options.workers = 1;
    options.start_paused = true;
    Scheduler scheduler(options);

    std::mutex order_mutex;
    std::vector<std::string> order;
    auto record = [&](JobResult result) {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(result.tag);
    };
    auto submit = [&](const std::string& tag, int priority) {
        JobSpec spec = coinSpec(uint64_t(priority + 1), 16);
        spec.tag = tag;
        spec.priority = priority;
        scheduler.submit(std::move(spec), record);
    };
    submit("low-a", 0);
    submit("high", 5);
    submit("mid", 1);
    submit("low-b", 0);

    scheduler.resume();
    scheduler.drain();
    const std::vector<std::string> expected = {"high", "mid", "low-a",
                                               "low-b"};
    EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, ElapsedDeadlineTruncatesWithoutStalling)
{
    SchedulerOptions options;
    options.workers = 2;
    Scheduler scheduler(options);

    // A mid-circuit measurement defeats the terminal-sampling fast
    // path, so every shot replays the suffix: 2M shots is far more
    // than a few milliseconds of work on any machine.
    JobSpec spec;
    QuantumCircuit big(10, 10);
    big.h(0);
    big.measure(0, 0);
    for (int q = 1; q < 10; ++q) big.cx(q - 1, q);
    for (int q = 1; q < 10; ++q) big.measure(q, q);
    spec.circuit = big;
    spec.shots = 2000000;
    spec.deadline_ms = 3.0;

    const JobResult result = scheduler.submit(spec).get();
    EXPECT_EQ(int(result.status), int(JobStatus::kOk));
    EXPECT_TRUE(result.truncated);
    EXPECT_TRUE(result.counts.truncated);
    EXPECT_LT(result.counts.shots, spec.shots);

    // Truncated payloads are timing-dependent and must never be cached.
    EXPECT_EQ(scheduler.cacheStats().insertions, 0u);
    scheduler.drain(); // returns promptly: nothing leaked or stalled
}

TEST(SchedulerTest, StopCancelsQueuedJobsAndRejectsNewOnes)
{
    SchedulerOptions options;
    options.workers = 1;
    options.start_paused = true;
    Scheduler scheduler(options);

    auto queued = scheduler.submit(coinSpec(1, 32));
    scheduler.stop();

    const JobResult cancelled = queued.get();
    EXPECT_EQ(int(cancelled.status), int(JobStatus::kCancelled));
    EXPECT_EQ(cancelled.error_code, ErrorCode::kServiceStopped);
    EXPECT_EQ(scheduler.metrics().cancelled, 1u);

    try {
        scheduler.submit(coinSpec(2, 32));
        FAIL() << "submit after stop must be rejected";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kServiceStopped);
    }
}

TEST(SchedulerTest, InvalidSpecsFailTheJobNotTheService)
{
    SchedulerOptions options;
    options.workers = 2;
    Scheduler scheduler(options);

    JobSpec bad = coinSpec(1);
    bad.assert_clbits = {{9}};
    const JobResult failed = scheduler.submit(bad).get();
    EXPECT_EQ(int(failed.status), int(JobStatus::kFailed));
    EXPECT_EQ(failed.error_code, ErrorCode::kBadRequest);
    EXPECT_FALSE(failed.error_message.empty());
    EXPECT_EQ(scheduler.metrics().failed, 1u);

    // The pool survives and still serves good jobs.
    const JobResult ok = scheduler.submit(coinSpec(2)).get();
    EXPECT_EQ(int(ok.status), int(JobStatus::kOk));
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

TEST(JsonTest, ParsesTheFullGrammar)
{
    const JsonValue v = JsonValue::parse(
        R"({"s":"a\n\u0041","n":-1.5e2,"i":42,"b":true,"z":null,)"
        R"("arr":[1,[2],{"k":3}],"obj":{}})");
    EXPECT_EQ(v.find("s")->asString(), "a\nA");
    EXPECT_DOUBLE_EQ(v.find("n")->asNumber(), -150.0);
    EXPECT_EQ(v.find("i")->asInt(), 42);
    EXPECT_TRUE(v.find("b")->asBool());
    EXPECT_TRUE(v.find("z")->isNull());
    ASSERT_EQ(v.find("arr")->asArray().size(), 3u);
    EXPECT_EQ(v.find("arr")->asArray()[2].find("k")->asInt(), 3);
    EXPECT_TRUE(v.find("obj")->asObject().empty());
    EXPECT_EQ(v.find("missing"), nullptr);

    EXPECT_EQ(v.intOr("i", 0), 42);
    EXPECT_EQ(v.intOr("missing", 7), 7);
    EXPECT_EQ(v.stringOr("s", ""), "a\nA");
    EXPECT_TRUE(v.boolOr("missing", true));
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 2.5), 2.5);
}

TEST(JsonTest, RejectsMalformedDocuments)
{
    const char* bad[] = {
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"half surrogate \\ud800\"",
        "01",
        "1 trailing",
        "nul",
        "{\"dup\":1,\"dup\":2}",
    };
    for (const char* doc : bad) {
        SCOPED_TRACE(doc);
        try {
            JsonValue::parse(doc);
            FAIL() << "expected parse failure";
        } catch (const UserError& err) {
            EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
        }
    }

    // Depth bound: 70 nested arrays exceed the limit.
    std::string deep(70, '[');
    deep += std::string(70, ']');
    EXPECT_THROW(JsonValue::parse(deep), UserError);

    // Wrong-kind access is a typed error too.
    const JsonValue num = JsonValue::parse("3.5");
    EXPECT_THROW(num.asString(), UserError);
    EXPECT_THROW(num.asInt(), UserError); // not an exact integer
}

TEST(JsonTest, NumberRenderingRoundTrips)
{
    EXPECT_EQ(jsonNumber(3.0), "3");
    EXPECT_EQ(jsonNumber(-17.0), "-17");
    const std::string half = jsonNumber(0.5);
    EXPECT_DOUBLE_EQ(JsonValue::parse(half).asNumber(), 0.5);
    const std::string pi = jsonNumber(3.141592653589793);
    EXPECT_DOUBLE_EQ(JsonValue::parse(pi).asNumber(), 3.141592653589793);
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

TEST(WireTest, DecodesRunRequests)
{
    const WireRequest req = parseRequest(
        R"({"id":"j1","qasm":"OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n)"
        R"(h q[0];\nmeasure q[0] -> c[0];\n",)"
        R"("shots":64,"seed":9,"deadline_ms":12.5,"priority":2,)"
        R"("threads":2,"cache":false,"assert_clbits":[[0]],)"
        R"("noise":{"kind":"depolarizing","p1":0.001,"p2":0.01}})");
    EXPECT_EQ(int(req.op), int(RequestOp::kRun));
    EXPECT_EQ(req.id, "j1");
    EXPECT_EQ(req.spec.tag, "j1");
    EXPECT_EQ(req.spec.circuit.numQubits(), 2);
    EXPECT_EQ(req.spec.shots, 64);
    EXPECT_EQ(req.spec.seed, 9u);
    EXPECT_DOUBLE_EQ(req.spec.deadline_ms, 12.5);
    EXPECT_EQ(req.spec.priority, 2);
    EXPECT_EQ(req.spec.num_threads, 2);
    EXPECT_FALSE(req.spec.use_cache);
    ASSERT_EQ(req.spec.assert_clbits.size(), 1u);
    EXPECT_EQ(req.spec.assert_clbits[0], std::vector<int>{0});
    EXPECT_TRUE(req.spec.noise.enabled());

    const WireRequest metrics = parseRequest(R"({"op":"metrics"})");
    EXPECT_EQ(int(metrics.op), int(RequestOp::kMetrics));
    const WireRequest shutdown =
        parseRequest(R"({"op":"shutdown","id":7})");
    EXPECT_EQ(int(shutdown.op), int(RequestOp::kShutdown));
    EXPECT_EQ(shutdown.id, "7"); // numeric ids are stringified
}

TEST(WireTest, RejectsBadRequests)
{
    const char* bad[] = {
        R"({"op":"frobnicate"})",
        R"({"id":"x"})",                            // run without qasm
        R"({"qasm":"OPENQASM 2.0; qreg q[1];","shots":0})",
        R"({"qasm":"OPENQASM 2.0; qreg q[1];","assert_clbits":3})",
        R"({"qasm":"OPENQASM 2.0; qreg q[1];","noise":"saturn"})",
        R"({"qasm":12})",
    };
    for (const char* doc : bad) {
        SCOPED_TRACE(doc);
        try {
            parseRequest(doc);
            FAIL() << "expected a bad-request rejection";
        } catch (const UserError& err) {
            EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
        }
    }

    // Bad circuit text keeps its own classification.
    try {
        parseRequest(R"({"qasm":"qreg q[1]; frobnicate q[0];"})");
        FAIL() << "expected a QASM syntax rejection";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kQasmSyntax);
    }
}

TEST(WireTest, EncodesResultsAsParseableJson)
{
    JobResult result;
    result.counts.shots = 10;
    result.counts.map["00"] = 4;
    result.counts.map["10"] = 6;
    result.program_counts.shots = 4;
    result.program_counts.map["0"] = 4;
    result.slot_error_rate = {0.6};
    result.pass_rate = 0.4;
    result.exec_ms = 1.5;

    const JsonValue v = JsonValue::parse(encodeResult("job-9", result));
    EXPECT_EQ(v.find("id")->asString(), "job-9");
    EXPECT_EQ(v.find("status")->asString(), "ok");
    EXPECT_FALSE(v.find("cache_hit")->asBool());
    EXPECT_EQ(v.find("shots")->asInt(), 10);
    EXPECT_FALSE(v.find("truncated")->asBool());
    EXPECT_DOUBLE_EQ(v.find("pass_rate")->asNumber(), 0.4);
    EXPECT_EQ(v.find("counts")->find("10")->asInt(), 6);
    EXPECT_EQ(v.find("program_counts")->find("0")->asInt(), 4);
    EXPECT_EQ(v.find("accepted_shots")->asInt(), 4);

    JobResult failure;
    failure.status = JobStatus::kFailed;
    failure.error_code = ErrorCode::kPolicyUnsupported;
    failure.error_message = "nope";
    const JsonValue e = JsonValue::parse(encodeResult("j", failure));
    EXPECT_EQ(e.find("status")->asString(), "error");
    EXPECT_EQ(e.find("code")->asString(), "policy_unsupported");
    EXPECT_EQ(e.find("message")->asString(), "nope");

    const JsonValue qf = JsonValue::parse(
        encodeError("x", ErrorCode::kQueueFull, "full"));
    EXPECT_EQ(qf.find("code")->asString(), "queue_full");
}

TEST(WireTest, EncodesMetricsSnapshots)
{
    SchedulerOptions options;
    options.workers = 2;
    Scheduler scheduler(options);
    scheduler.submit(coinSpec(5)).get();
    scheduler.submit(coinSpec(5)).get(); // cache hit

    const JsonValue v =
        JsonValue::parse(encodeMetrics(scheduler.metrics()));
    const JsonValue* m = v.find("metrics");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->find("accepted")->asInt(), 2);
    EXPECT_EQ(m->find("completed")->asInt(), 2);
    EXPECT_GE(m->find("cache_hits")->asInt(), 1);
    const JsonValue* hist = m->find("execute_ms");
    ASSERT_NE(hist, nullptr);
    EXPECT_GE(hist->find("total")->asInt(), 1);
    EXPECT_FALSE(scheduler.metrics().str().empty());
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketsAndMoments)
{
    LatencyHistogram hist;
    hist.record(0.05);    // below the first bound
    hist.record(0.3);     // mid bucket
    hist.record(1e6);     // beyond the last bound
    const LatencyHistogramSnapshot snap = hist.snapshot();
    ASSERT_EQ(snap.counts.size(), snap.bounds.size() + 1);
    EXPECT_EQ(snap.counts.front(), 1u);
    EXPECT_EQ(snap.counts.back(), 1u);
    EXPECT_EQ(snap.total, 3u);
    EXPECT_DOUBLE_EQ(snap.max_ms, 1e6);
    EXPECT_NEAR(snap.meanMs(), (0.05 + 0.3 + 1e6) / 3.0, 1e-9);

    uint64_t across = 0;
    for (uint64_t c : snap.counts) across += c;
    EXPECT_EQ(across, snap.total);

    EXPECT_EQ(LatencyHistogramSnapshot{}.meanMs(), 0.0);
}

// ---------------------------------------------------------------------
// Wire extensions for the fleet: retry_after_ms hints, ping, peek
// ---------------------------------------------------------------------

TEST(WireTest, ErrorResponsesCarryRetryAfterHints)
{
    const std::string hinted =
        encodeError("j1", ErrorCode::kQueueFull, "queue is full", 12.5);
    const JsonValue parsed = JsonValue::parse(hinted);
    EXPECT_EQ(parsed.stringOr("code", ""), "queue_full");
    EXPECT_DOUBLE_EQ(parsed.numberOr("retry_after_ms", 0.0), 12.5);

    // No estimate (0) => the field is omitted, not emitted as zero.
    const std::string bare =
        encodeError("j2", ErrorCode::kShedding, "shedding");
    EXPECT_EQ(bare.find("retry_after_ms"), std::string::npos);
}

TEST(WireTest, SchedulerHintsMatchBreakerAndQueueState)
{
    SchedulerOptions options;
    options.workers = 2;
    Scheduler scheduler(options);
    // Idle service, no completions: a token hint, never zero, so
    // rejected callers still back off instead of spinning.
    const double hint = scheduler.retryAfterMsHint(ErrorCode::kQueueFull);
    EXPECT_GE(hint, 1.0);
    EXPECT_LE(hint, 10000.0);
    // Breaker disabled => closed => resubmit immediately.
    EXPECT_EQ(scheduler.retryAfterMsHint(ErrorCode::kShedding), 0.0);
    // Hints exist only for saturation rejections.
    EXPECT_EQ(scheduler.retryAfterMsHint(ErrorCode::kBadRequest), 0.0);
    scheduler.stop();
}

TEST(WireTest, PingIsDecodedAndEncoded)
{
    const WireRequest request =
        parseRequest(R"({"op":"ping","id":"!p0.1"})");
    EXPECT_EQ(int(request.op), int(RequestOp::kPing));
    EXPECT_EQ(request.id, "!p0.1");

    const std::string pong = encodePing("!p0.1", 3, 2);
    const JsonValue parsed = JsonValue::parse(pong);
    EXPECT_EQ(parsed.stringOr("id", ""), "!p0.1");
    EXPECT_TRUE(parsed.boolOr("pong", false));
    EXPECT_EQ(parsed.intOr("queue_depth", -1), 3);
    EXPECT_EQ(parsed.intOr("in_flight", -1), 2);
}

TEST(WireTest, PeekResponseIdFastPath)
{
    std::string id;
    ASSERT_TRUE(peekResponseId(R"({"id":"!f7.0","status":"ok"})", &id));
    EXPECT_EQ(id, "!f7.0");
    ASSERT_TRUE(peekResponseId(R"({"id":"","status":"ok"})", &id));
    EXPECT_EQ(id, "");
    // Escaped ids and non-response lines fall back to a full parse.
    EXPECT_FALSE(peekResponseId(R"({"id":"a\"b","status":"ok"})", &id));
    EXPECT_FALSE(peekResponseId(R"({"status":"ok","id":"x"})", &id));
    EXPECT_FALSE(peekResponseId("", &id));
}

// ---------------------------------------------------------------------
// Replay library: determinism and clean cancellation
// ---------------------------------------------------------------------

namespace
{

/** Write a small valid journal and return its path. */
std::string
writeReplayJournal(const std::string& name)
{
    const std::string path = testing::TempDir() + name;
    // TempDir persists across test runs and Journal opens O_APPEND; a
    // stale file from a previous run would triple the entry count.
    std::remove(path.c_str());
    resilience::Journal journal(path);
    const std::string qasm =
        "OPENQASM 2.0;\\nqreg q[2];\\ncreg c[2];\\nh q[0];\\ncx "
        "q[0],q[1];\\nmeasure q[0] -> c[0];\\nmeasure q[1] -> c[1];\\n";
    for (uint64_t seq = 0; seq < 3; ++seq) {
        journal.appendAccept(
            seq, "{\"id\":\"r" + std::to_string(seq) + "\",\"qasm\":\"" +
                     qasm + "\",\"shots\":64,\"seed\":" +
                     std::to_string(40 + seq) + "}");
    }
    journal.sync();
    return path;
}

} // namespace

TEST(ReplayTest, ReplaysDeterministicallyAndVerifiesHashes)
{
    const std::string path = writeReplayJournal("replay_ok.ndjson");
    std::ostringstream out1, out2, diag;
    const ReplayReport first = replayJournal(path, out1, diag);
    EXPECT_EQ(int(first.status), int(ReplayStatus::kOk));
    EXPECT_EQ(first.total, 3u);
    EXPECT_EQ(first.executed, 3u);
    EXPECT_EQ(first.mismatches, 0u);
    const ReplayReport second = replayJournal(path, out2, diag);
    EXPECT_EQ(out1.str(), out2.str()); // byte-identical replays
    EXPECT_EQ(int(second.status), int(ReplayStatus::kOk));
}

TEST(ReplayTest, DrainSignalCancelsCleanlyBetweenJobs)
{
    // The drain-mid-replay race, without signals: the flag is already
    // set when replay starts, so it must abort before executing a
    // single job — clean output (nothing emitted), journal untouched,
    // typed kInterrupted status (qassertd maps it to exit code 3).
    const std::string path = writeReplayJournal("replay_cancel.ndjson");
    volatile std::sig_atomic_t cancel = SIGTERM;
    ReplayOptions options;
    options.cancel = &cancel;
    std::ostringstream out, diag;
    const ReplayReport report = replayJournal(path, out, diag, options);
    EXPECT_EQ(int(report.status), int(ReplayStatus::kInterrupted));
    EXPECT_EQ(report.executed, 0u);
    EXPECT_TRUE(out.str().empty());

    // The journal file is intact: a second, uncancelled replay still
    // executes everything.
    cancel = 0;
    const ReplayReport resumed = replayJournal(path, out, diag, options);
    EXPECT_EQ(int(resumed.status), int(ReplayStatus::kOk));
    EXPECT_EQ(resumed.executed, 3u);
}

TEST(ReplayTest, MissingJournalIsATypedError)
{
    std::ostringstream out, diag;
    EXPECT_THROW(replayJournal("/nonexistent/journal.ndjson", out, diag),
                 UserError);
}

TEST(JsonTest, SetAndDumpRoundTrip)
{
    JsonValue value = JsonValue::parse(
        R"({"id":"old","shots":64,"nested":{"a":[1,2,true,null]}})");
    value.set("id", JsonValue::makeString("!f0.0"));
    value.set("priority", JsonValue::makeNumber(2));
    const JsonValue round = JsonValue::parse(value.dump());
    EXPECT_EQ(round.stringOr("id", ""), "!f0.0");
    EXPECT_EQ(round.intOr("shots", 0), 64);
    EXPECT_EQ(round.intOr("priority", 0), 2);
    ASSERT_NE(round.find("nested"), nullptr);
    EXPECT_EQ(round.find("nested")->find("a")->asArray().size(), 4u);
    // dump is stable: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(JsonValue::parse(value.dump()).dump(), value.dump());

    JsonValue scalar = JsonValue::makeNumber(1);
    EXPECT_THROW(scalar.set("k", JsonValue::makeNumber(2)), UserError);
}

} // namespace
} // namespace serve
} // namespace qa
