/**
 * @file
 * Integration tests reproducing the paper's end-to-end debugging flows:
 * QPE slot localization (Sec. IX-A), the noisy-device behaviour
 * (Sec. IX-B shape), the Deutsch-Jozsa approximate assertion (Sec. X),
 * and the controlled-adder recursion bug (Appendix D).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/adder.hpp"
#include "algos/deutsch_jozsa.hpp"
#include "algos/qft.hpp"
#include "algos/qpe.hpp"
#include "algos/states.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace
{

using namespace algos;

/**
 * Exact error probability of a single precise assertion placed at one
 * QPE slot (the paper inserts one assertion per debugging run; keeping
 * the exact-distribution analysis per-slot also keeps the branch count
 * small).
 */
double
qpeSlotErrorProb(QpeBug bug, int slot, AssertionDesign design)
{
    QpeProgram qpe(4, M_PI / 8, bug);
    QpeProgram clean(4, M_PI / 8);
    std::vector<int> all{0, 1, 2, 3, 4};
    QuantumCircuit prefix(qpe.numQubits());
    std::vector<int> ident{0, 1, 2, 3, 4};
    for (int s = 0; s < slot; ++s) prefix.compose(qpe.stage(s), ident);
    AssertedProgram prog(prefix);
    prog.assertState(all, StateSet::pure(clean.expectedStateAtSlot(slot)),
                     design);
    return runAssertedExact(prog).slot_error_prob[0];
}

TEST(QpeDebugTest, CleanProgramPassesAllSlots)
{
    for (int slot = 1; slot <= 6; ++slot) {
        EXPECT_NEAR(qpeSlotErrorProb(QpeBug::kNone, slot,
                                     AssertionDesign::kSwap),
                    0.0, 1e-6)
            << "slot " << slot;
    }
}

TEST(QpeDebugTest, Bug1LocalizesToSlot3)
{
    // Sec. IX-A1: with the missing loop index, slots 1-2 pass and the
    // later slots raise errors, pinpointing the bug between slots 2-3.
    EXPECT_NEAR(qpeSlotErrorProb(QpeBug::kFixedAngle, 1,
                                 AssertionDesign::kSwap), 0.0, 1e-6);
    EXPECT_NEAR(qpeSlotErrorProb(QpeBug::kFixedAngle, 2,
                                 AssertionDesign::kSwap), 0.0, 1e-6);
    for (int slot = 3; slot <= 6; ++slot) {
        EXPECT_GT(qpeSlotErrorProb(QpeBug::kFixedAngle, slot,
                                   AssertionDesign::kSwap), 0.01)
            << "slot " << slot;
    }
}

TEST(QpeDebugTest, Bug2LocalizesToSlot2)
{
    // Sec. IX-A1: with cu3 -> u3, only slot 1 passes.
    EXPECT_NEAR(qpeSlotErrorProb(QpeBug::kMissingControl, 1,
                                 AssertionDesign::kSwap), 0.0, 1e-6);
    for (int slot = 2; slot <= 5; ++slot) {
        EXPECT_GT(qpeSlotErrorProb(QpeBug::kMissingControl, slot,
                                   AssertionDesign::kSwap), 0.01)
            << "slot " << slot;
    }
}

TEST(QpeDebugTest, MultiSlotProgramReusesAncillas)
{
    // Inserting all six slots in one program must stay narrow thanks to
    // ancilla pooling (5 program qubits + 5 recycled ancillas).
    QpeProgram qpe(4, M_PI / 8);
    std::vector<int> all{0, 1, 2, 3, 4};
    AssertedProgram prog(qpe.stage(0));
    prog.assertState(all, StateSet::pure(qpe.expectedStateAtSlot(1)),
                     AssertionDesign::kSwap);
    for (int s = 1; s < qpe.numStages(); ++s) {
        prog.append(qpe.stage(s));
        prog.assertState(all,
                         StateSet::pure(qpe.expectedStateAtSlot(s + 1)),
                         AssertionDesign::kSwap);
    }
    EXPECT_EQ(prog.circuit().numQubits(), 10);

    // Sampled run: every slot passes on the clean program.
    SimOptions options;
    options.shots = 512;
    options.seed = 31337;
    const AssertionOutcome outcome = runAsserted(prog, options);
    for (size_t s = 0; s < outcome.slot_error_rate.size(); ++s) {
        EXPECT_NEAR(outcome.slot_error_rate[s], 0.0, 1e-9)
            << "slot " << s + 1;
    }
}

TEST(QpeDebugTest, MixedStateAssertionOnFourQubits)
{
    // Sec. IX-A2: the four counting qubits at slot 5 are in a rank-2
    // mixed state; asserting it catches Bug1 but not Bug2.
    QpeProgram clean(4, M_PI / 8);
    const CVector v5 = clean.expectedStateAtSlot(5);
    CMatrix rho1234 = partialTrace(densityFromPure(v5), {0, 1, 2, 3});

    auto run = [&](QpeBug bug) {
        QpeProgram qpe(4, M_PI / 8, bug);
        QuantumCircuit prefix(qpe.numQubits());
        std::vector<int> ident{0, 1, 2, 3, 4};
        for (int s = 0; s < 5; ++s) prefix.compose(qpe.stage(s), ident);
        AssertedProgram prog(prefix);
        prog.assertState({0, 1, 2, 3}, StateSet::mixed(rho1234),
                         AssertionDesign::kSwap);
        return runAssertedExact(prog).slot_error_prob[0];
    };

    EXPECT_NEAR(run(QpeBug::kNone), 0.0, 1e-6);
    EXPECT_GT(run(QpeBug::kFixedAngle), 0.01);
    // Bug2 leaves the counting qubits in |++++>, a "correct" basis
    // state of the mixture: the mixed assertion cannot see it.
    EXPECT_NEAR(run(QpeBug::kMissingControl), 0.0, 1e-6);
}

TEST(QpeDebugTest, ApproximateAssertionCatchesBothBugs)
{
    // Sec. IX-A3: membership in {|++++>|0>, |theta4>|1>}.
    QpeProgram clean(4, M_PI / 8);
    const CVector v5 = clean.expectedStateAtSlot(5);
    // Split the slot-5 state into its two branches.
    CVector branch0(32), branch1(32);
    for (size_t i = 0; i < 32; i += 2) {
        branch0[i] = v5[i] * std::sqrt(2.0);
        branch1[i + 1] = v5[i + 1] * std::sqrt(2.0);
    }
    const StateSet set = StateSet::approximate({branch0, branch1});

    auto run = [&](QpeBug bug) {
        QpeProgram qpe(4, M_PI / 8, bug);
        QuantumCircuit prefix(qpe.numQubits());
        std::vector<int> ident{0, 1, 2, 3, 4};
        for (int s = 0; s < 5; ++s) prefix.compose(qpe.stage(s), ident);
        AssertedProgram prog(prefix);
        prog.assertState({0, 1, 2, 3, 4}, set, AssertionDesign::kSwap);
        return runAssertedExact(prog).slot_error_prob[0];
    };

    EXPECT_NEAR(run(QpeBug::kNone), 0.0, 1e-6);
    EXPECT_GT(run(QpeBug::kFixedAngle), 0.01);
    EXPECT_GT(run(QpeBug::kMissingControl), 0.01);
}

TEST(NoisyDeviceTest, BugRaisesAssertionErrorRate)
{
    // Sec. IX-B shape: under device noise the assertion-error rate has
    // a nonzero floor; injecting the bug raises it measurably. The
    // paper's numbers on ibmq-melbourne: 36% clean vs 45% buggy.
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    auto errorRate = [&](bool bug) {
        AssertedProgram prog(qpeRyProgram(4, M_PI / 8, bug));
        prog.assertState({4}, StateSet::pure(qpeRyEigenstate()),
                         AssertionDesign::kSwap);
        SimOptions options;
        options.shots = 8192;
        options.seed = 777;
        options.noise = &noise;
        return runAsserted(prog, options).slot_error_rate[0];
    };

    const double clean_rate = errorRate(false);
    const double buggy_rate = errorRate(true);
    EXPECT_GT(clean_rate, 0.005); // noise floor exists
    EXPECT_GT(buggy_rate, clean_rate + 0.02); // bug detectable

    // The noiseless assertion on the clean program is exact.
    AssertedProgram ideal(qpeRyProgram(4, M_PI / 8, false));
    ideal.assertState({4}, StateSet::pure(qpeRyEigenstate()),
                      AssertionDesign::kSwap);
    EXPECT_NEAR(runAssertedExact(ideal).slot_error_prob[0], 0.0, 1e-7);
    // And the paper's cost claim: 2 CX + 2 SG for this assertion.
    EXPECT_EQ(ideal.slots()[0].cost.cx, 2);
    EXPECT_EQ(ideal.slots()[0].cost.sg, 2);
}

TEST(NoisyDeviceTest, FilteringImprovesSuccessRate)
{
    // Post-selecting on assertion success must raise the success rate
    // (the Sec. IX-B 19% -> 33%/36% effect).
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();

    // Ideal outcome distribution of the measured register.
    AssertedProgram ideal(qpeRyProgram(4, M_PI / 8, false));
    ideal.measureProgram();
    const AssertionOutcomeExact ideal_out = runAssertedExact(ideal);
    // Success set: the most likely ideal outcomes covering >= 80% mass.
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto& [bits, p] : ideal_out.program_dist.probs) {
        ranked.emplace_back(p, bits);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::vector<std::string> success_set;
    double covered = 0.0;
    for (const auto& [p, bits] : ranked) {
        if (covered >= 0.8) break;
        success_set.push_back(bits);
        covered += p;
    }

    // Filter on a full-state precise assertion at slot 6: with our
    // independent per-qubit noise channels, only an assertion covering
    // the counting register can veto the errors that break the answer
    // (hardware noise is more correlated, which is how the paper's
    // single-qubit assertion already helped there; see EXPERIMENTS.md).
    const CVector slot6 =
        finalState(qpeRyProgram(4, M_PI / 8, false)).amplitudes();
    AssertedProgram prog(qpeRyProgram(4, M_PI / 8, false));
    prog.assertState({0, 1, 2, 3, 4}, StateSet::pure(slot6),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    SimOptions options;
    options.shots = 8192;
    options.seed = 4242;
    options.noise = &noise;
    const AssertionOutcome noisy = runAsserted(prog, options);

    auto successRate = [&](const Counts& counts) {
        double total = 0.0;
        for (const std::string& bits : success_set) {
            total += counts.toDistribution().probability(bits);
        }
        return total;
    };
    const double raw = successRate(noisy.program_counts);
    const double filtered = successRate(noisy.program_counts_passed);
    EXPECT_GT(filtered, raw + 0.005);
    EXPECT_LT(raw, 0.999);
}

TEST(DeutschJozsaDebugTest, ConstantSetMembership)
{
    // Sec. X: asserting the constant set accepts both constant oracles
    // and rejects balanced / buggy ones (partially, per the overlap).
    const StateSet constant_set = StateSet::approximate(djConstantSet(2));

    auto errorProb = [&](DjOracle oracle, uint64_t mask = 0) {
        AssertedProgram prog(djFunctionEval(2, oracle, mask));
        prog.assertState({0, 1, 2}, constant_set, AssertionDesign::kSwap);
        return runAssertedExact(prog).slot_error_prob[0];
    };

    EXPECT_NEAR(errorProb(DjOracle::kConstantZero), 0.0, 1e-7);
    EXPECT_NEAR(errorProb(DjOracle::kConstantOne), 0.0, 1e-7);
    // Balanced functions overlap the constant span at 1/2.
    EXPECT_NEAR(errorProb(DjOracle::kBalancedMask, 0b01), 0.5, 1e-7);
    // The buggy 3:1 oracle is neither: error rate strictly between.
    const double buggy = errorProb(DjOracle::kBuggyAnd);
    EXPECT_GT(buggy, 0.05);
    EXPECT_LT(buggy, 0.95);
}

TEST(DeutschJozsaDebugTest, CombinedSetAcceptsBothClasses)
{
    std::vector<CVector> combined = djConstantSet(2);
    const auto balanced = djBalancedSet(2);
    combined.insert(combined.end(), balanced.begin(), balanced.end());
    const StateSet set = StateSet::approximate(combined);

    for (auto [oracle, mask] :
         std::vector<std::pair<DjOracle, uint64_t>>{
             {DjOracle::kConstantZero, 0},
             {DjOracle::kBalancedMask, 0b10},
             {DjOracle::kBalancedMask, 0b11}}) {
        AssertedProgram prog(djFunctionEval(2, oracle, mask));
        prog.assertState({0, 1, 2}, set, AssertionDesign::kSwap);
        EXPECT_NEAR(runAssertedExact(prog).slot_error_prob[0], 0.0, 1e-6);
    }
}

TEST(DeutschJozsaDebugTest, CombinedSetIsBloomFilterFalsePositive)
{
    // The combined constant+balanced span has rank 5 and, like an
    // over-full Bloom filter, actually CONTAINS the buggy AND oracle's
    // joint state: the membership check passes even though the function
    // is neither constant nor balanced. Catching this bug requires the
    // narrower constant-only (or balanced-only) set.
    std::vector<CVector> combined = djConstantSet(2);
    const auto balanced = djBalancedSet(2);
    combined.insert(combined.end(), balanced.begin(), balanced.end());
    const CorrectSubspace span =
        analyzeStateSet(StateSet::approximate(combined));
    EXPECT_EQ(span.rank(), 5u);

    AssertedProgram buggy(djFunctionEval(2, DjOracle::kBuggyAnd));
    buggy.assertState({0, 1, 2}, StateSet::approximate(combined),
                      AssertionDesign::kSwap);
    EXPECT_NEAR(runAssertedExact(buggy).slot_error_prob[0], 0.0, 1e-6);

    AssertedProgram narrow(djFunctionEval(2, DjOracle::kBuggyAnd));
    narrow.assertState({0, 1, 2},
                       StateSet::approximate(djConstantSet(2)),
                       AssertionDesign::kSwap);
    EXPECT_GT(runAssertedExact(narrow).slot_error_prob[0], 0.01);
}

TEST(AdderDebugTest, PreciseAssertionCatchesRecursionBug)
{
    // Appendix D: assert the expected state after the adder (before the
    // inverse QFT); the doubly-controlled buggy variant fails it.
    const int width = 3;
    auto buildPrefix = [&](bool buggy) {
        QuantumCircuit qc(width + 2);
        std::vector<int> data{0, 1, 2};
        std::vector<int> controls{3, 4};
        qc.x(0); // initial value 4
        qc.x(3);
        qc.x(4); // both controls on
        appendQft(qc, data);
        appendControlledAdder(qc, controls, data, 3, buggy);
        return qc;
    };

    const CVector expected = finalState(buildPrefix(false)).amplitudes();
    for (bool buggy : {false, true}) {
        AssertedProgram prog(buildPrefix(buggy));
        prog.assertState({0, 1, 2, 3, 4}, StateSet::pure(expected),
                         AssertionDesign::kSwap);
        const double err = runAssertedExact(prog).slot_error_prob[0];
        if (buggy) {
            EXPECT_GT(err, 0.01);
        } else {
            EXPECT_NEAR(err, 0.0, 1e-6);
        }
    }
}

TEST(AdderDebugTest, MixedAssertionAlsoDetects)
{
    // Appendix D's closing remark: the bug also shifts the reduced
    // (mixed) state of the data qubits alone.
    const int width = 3;
    auto buildPrefix = [&](bool buggy) {
        QuantumCircuit qc(width + 2);
        std::vector<int> data{0, 1, 2};
        std::vector<int> controls{3, 4};
        qc.h(3);
        qc.h(4); // superposed controls: data gets entangled
        appendQft(qc, data);
        appendControlledAdder(qc, controls, data, 5, buggy);
        return qc;
    };

    const CMatrix rho_data = partialTrace(
        densityFromPure(finalState(buildPrefix(false)).amplitudes()),
        {0, 1, 2});
    AssertedProgram good(buildPrefix(false));
    good.assertState({0, 1, 2}, StateSet::mixed(rho_data),
                     AssertionDesign::kNdd);
    EXPECT_NEAR(runAssertedExact(good).slot_error_prob[0], 0.0, 1e-6);

    AssertedProgram bad(buildPrefix(true));
    bad.assertState({0, 1, 2}, StateSet::mixed(rho_data),
                    AssertionDesign::kNdd);
    EXPECT_GT(runAssertedExact(bad).slot_error_prob[0], 0.005);
}

} // namespace
} // namespace qa
