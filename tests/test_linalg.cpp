/**
 * @file
 * Unit tests for the linear-algebra substrate: vectors, matrices,
 * eigendecomposition, Gram-Schmidt completion, and state utilities.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "linalg/eigen.hpp"
#include "linalg/gram_schmidt.hpp"
#include "linalg/states.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

using test::expectMatrixNear;
using test::expectVectorNear;

TEST(CVectorTest, BasisStateAndNorm)
{
    CVector v = CVector::basisState(4, 2);
    EXPECT_DOUBLE_EQ(v.norm(), 1.0);
    EXPECT_EQ(v[2], Complex(1.0));
    EXPECT_EQ(v[0], Complex(0.0));
    EXPECT_THROW(CVector::basisState(4, 4), UserError);
}

TEST(CVectorTest, InnerProductConjugateLinearity)
{
    CVector a{Complex(0, 1), 1.0};
    CVector b{1.0, Complex(0, 1)};
    // <a|b> = conj(i)*1 + conj(1)*i = -i + i = 0.
    test::expectComplexNear(a.inner(b), Complex(0, 0));
    test::expectComplexNear(a.inner(a), Complex(2, 0));
}

TEST(CVectorTest, NormalizedRejectsZero)
{
    CVector zero(4);
    EXPECT_THROW(zero.normalized(), UserError);
    CVector v{3.0, 4.0};
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
}

TEST(CVectorTest, TensorProductOrdering)
{
    CVector a{1.0, 2.0};
    CVector b{3.0, 5.0};
    CVector t = a.tensor(b);
    ASSERT_EQ(t.dim(), 4u);
    EXPECT_EQ(t[0], Complex(3.0));
    EXPECT_EQ(t[1], Complex(5.0));
    EXPECT_EQ(t[2], Complex(6.0));
    EXPECT_EQ(t[3], Complex(10.0));
}

TEST(CVectorTest, EqualsUpToPhase)
{
    CVector a{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)};
    CVector b = a * Complex(std::cos(1.2), std::sin(1.2));
    EXPECT_TRUE(a.equalsUpToPhase(b));
    CVector c{1.0 / std::sqrt(2), -1.0 / std::sqrt(2)};
    EXPECT_FALSE(a.equalsUpToPhase(c));
}

TEST(CVectorTest, ToStringRendersKets)
{
    CVector ghz(8);
    ghz[0] = ghz[7] = 1.0 / std::sqrt(2.0);
    const std::string s = ghz.toString();
    EXPECT_NE(s.find("|000>"), std::string::npos);
    EXPECT_NE(s.find("|111>"), std::string::npos);
}

TEST(CMatrixTest, IdentityAndMultiplication)
{
    CMatrix i2 = CMatrix::identity(2);
    CMatrix x = gates::x();
    expectMatrixNear(i2 * x, x);
    expectMatrixNear(x * x, i2);
}

TEST(CMatrixTest, DaggerAndUnitarity)
{
    CMatrix h = gates::h();
    EXPECT_TRUE(h.isUnitary());
    EXPECT_TRUE(h.isHermitian());
    CMatrix s = gates::s();
    EXPECT_TRUE(s.isUnitary());
    EXPECT_FALSE(s.isHermitian());
    expectMatrixNear(s.dagger(), gates::sdg());
}

TEST(CMatrixTest, KroneckerStructure)
{
    CMatrix zz = kron(gates::z(), gates::z());
    ASSERT_EQ(zz.rows(), 4u);
    EXPECT_EQ(zz(0, 0), Complex(1.0));
    EXPECT_EQ(zz(1, 1), Complex(-1.0));
    EXPECT_EQ(zz(2, 2), Complex(-1.0));
    EXPECT_EQ(zz(3, 3), Complex(1.0));
}

TEST(CMatrixTest, TraceAndOuter)
{
    CVector plus{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)};
    CMatrix p = CMatrix::outer(plus, plus);
    test::expectComplexNear(p.trace(), Complex(1.0));
    expectMatrixNear(p * p, p, 1e-12); // projector idempotence
}

TEST(CMatrixTest, EqualsUpToPhase)
{
    CMatrix h = gates::h();
    CMatrix hp = h * Complex(std::cos(0.7), std::sin(0.7));
    EXPECT_TRUE(h.equalsUpToPhase(hp));
    EXPECT_FALSE(h.equalsUpToPhase(gates::x()));
}

TEST(CMatrixTest, MatrixVectorAgreesWithMatrixMatrix)
{
    Rng rng(11);
    CMatrix u = randomUnitary(8, rng);
    CVector v = randomState(3, rng);
    CVector via_vec = u * v;
    CMatrix vm(8, 1);
    for (size_t i = 0; i < 8; ++i) vm(i, 0) = v[i];
    CMatrix via_mat = u * vm;
    for (size_t i = 0; i < 8; ++i) {
        test::expectComplexNear(via_vec[i], via_mat(i, 0), 1e-10);
    }
}

TEST(EigenTest, DiagonalMatrix)
{
    CMatrix d = CMatrix::diagonal({3.0, 1.0, 2.0});
    EigenResult eig = eigHermitian(d);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(EigenTest, PauliX)
{
    EigenResult eig = eigHermitian(gates::x());
    EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
    EXPECT_NEAR(eig.values[1], -1.0, 1e-10);
    // Eigenvector of +1 is |+>.
    CVector v0 = eig.vectors.column(0);
    EXPECT_NEAR(std::abs(v0[0]), 1.0 / std::sqrt(2), 1e-9);
    EXPECT_NEAR(std::abs(v0[1]), 1.0 / std::sqrt(2), 1e-9);
}

TEST(EigenTest, ReconstructsRandomHermitian)
{
    Rng rng(5);
    for (int n : {2, 4, 8, 16}) {
        CMatrix a(n, n);
        for (int r = 0; r < n; ++r) {
            for (int c = r; c < n; ++c) {
                Complex x(rng.normal(), r == c ? 0.0 : rng.normal());
                a(r, c) = x;
                a(c, r) = std::conj(x);
            }
        }
        EigenResult eig = eigHermitian(a);
        CMatrix recon =
            eig.vectors *
            CMatrix::diagonal(std::vector<Complex>(eig.values.begin(),
                                                   eig.values.end())) *
            eig.vectors.dagger();
        expectMatrixNear(recon, a, 1e-8);
        EXPECT_TRUE(eig.vectors.isUnitary(1e-8));
    }
}

TEST(EigenTest, RankOfProjectors)
{
    Rng rng(17);
    for (size_t rank : {1u, 2u, 3u}) {
        CMatrix rho = randomDensity(2, rank, rng);
        EXPECT_EQ(rankPsd(rho), rank);
    }
}

TEST(EigenTest, RejectsNonHermitian)
{
    CMatrix a{{0, 1}, {0, 0}};
    EXPECT_THROW(eigHermitian(a), UserError);
}

TEST(GramSchmidtTest, DropsDependentVectors)
{
    CVector a{1.0, 0.0};
    CVector b{2.0, 0.0};
    CVector c{1.0, 1.0};
    auto ortho = orthonormalize({a, b, c});
    ASSERT_EQ(ortho.size(), 2u);
    test::expectComplexNear(ortho[0].inner(ortho[1]), Complex(0.0), 1e-10);
}

TEST(GramSchmidtTest, CompleteBasisKeepsSeedFirst)
{
    CVector ghz(8);
    ghz[0] = ghz[7] = 1.0 / std::sqrt(2.0);
    auto basis = completeBasis({ghz}, 8);
    ASSERT_EQ(basis.size(), 8u);
    EXPECT_TRUE(basis[0].equalsUpToPhase(ghz, 1e-10));
    for (size_t i = 0; i < 8; ++i) {
        for (size_t j = i + 1; j < 8; ++j) {
            test::expectComplexNear(basis[i].inner(basis[j]),
                                    Complex(0.0), 1e-9);
        }
    }
}

TEST(GramSchmidtTest, BasisToUnitaryMapsComputationalBasis)
{
    Rng rng(23);
    auto basis = completeBasis({randomState(2, rng)}, 4);
    CMatrix u = basisToUnitary(basis);
    EXPECT_TRUE(u.isUnitary(1e-8));
    for (size_t i = 0; i < 4; ++i) {
        CVector image = u * CVector::basisState(4, i);
        EXPECT_TRUE(image.approxEquals(basis[i], 1e-9));
    }
}

TEST(StatesTest, PartialTraceGhz)
{
    // rho_23 of GHZ x |0>: the paper's Sec. II example.
    CVector ghz2(4);
    ghz2[0] = ghz2[3] = 1.0 / std::sqrt(2.0);
    CVector full = ghz2.tensor(CVector::basisState(2, 0));
    CMatrix rho = densityFromPure(full);

    CMatrix rho12 = partialTrace(rho, {0, 1});
    EXPECT_NEAR(purity(rho12), 1.0, 1e-10); // pure Bell pair

    CMatrix rho23 = partialTrace(rho, {1, 2});
    EXPECT_NEAR(purity(rho23), 0.5, 1e-10); // proper mixture
    EXPECT_NEAR(rho23(0, 0).real(), 0.5, 1e-10); // |00><00|
    EXPECT_NEAR(rho23(2, 2).real(), 0.5, 1e-10); // |10><10|
}

TEST(StatesTest, PartialTraceKeepOrderMatters)
{
    Rng rng(3);
    CVector psi = randomState(3, rng);
    CMatrix rho = densityFromPure(psi);
    CMatrix keep01 = partialTrace(rho, {0, 1});
    CMatrix keep10 = partialTrace(rho, {1, 0});
    // Swapping the kept qubits permutes the matrix, traces agree.
    test::expectComplexNear(keep01.trace(), keep10.trace(), 1e-10);
    EXPECT_NEAR(keep01(0, 0).real(), keep10(0, 0).real(), 1e-10);
}

TEST(StatesTest, FidelityMeasures)
{
    CVector zero = CVector::basisState(2, 0);
    CVector plus{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)};
    EXPECT_NEAR(fidelity(zero, zero), 1.0, 1e-12);
    EXPECT_NEAR(fidelity(zero, plus), 0.5, 1e-12);

    CMatrix maximally_mixed = CMatrix::identity(2) * Complex(0.5, 0.0);
    EXPECT_NEAR(fidelity(maximally_mixed, zero), 0.5, 1e-12);
}

TEST(StatesTest, TraceDistance)
{
    CMatrix rho0 = densityFromPure(CVector::basisState(2, 0));
    CMatrix rho1 = densityFromPure(CVector::basisState(2, 1));
    EXPECT_NEAR(traceDistance(rho0, rho1), 1.0, 1e-10);
    EXPECT_NEAR(traceDistance(rho0, rho0), 0.0, 1e-10);
}

TEST(StatesTest, RandomUnitaryIsUnitary)
{
    Rng rng(9);
    for (size_t dim : {2u, 4u, 8u}) {
        EXPECT_TRUE(randomUnitary(dim, rng).isUnitary(1e-8));
    }
}

TEST(StatesTest, RandomDensityProperties)
{
    Rng rng(29);
    CMatrix rho = randomDensity(3, 3, rng);
    EXPECT_TRUE(rho.isDensityMatrix(1e-7));
    EXPECT_EQ(rankPsd(rho), 3u);
}

TEST(StatesTest, MixtureValidation)
{
    CVector a = CVector::basisState(2, 0);
    EXPECT_THROW(densityFromMixture({a}, {1.0, 2.0}), UserError);
    EXPECT_THROW(densityFromMixture({a}, {-1.0}), UserError);
    CMatrix rho = densityFromMixture({a, CVector::basisState(2, 1)});
    EXPECT_NEAR(rho(0, 0).real(), 0.5, 1e-12);
}

TEST(StatesTest, QubitCountValidation)
{
    EXPECT_EQ(qubitCountForDim(8), 3);
    EXPECT_THROW(qubitCountForDim(6), UserError);
    EXPECT_THROW(qubitCountForDim(0), UserError);
}

} // namespace
} // namespace qa
