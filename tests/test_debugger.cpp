/**
 * @file
 * Tests for the SlotDebugger: localization of the paper's QPE and GHZ
 * bugs, bisection agreement with the linear sweep, and edge cases.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/qpe.hpp"
#include "algos/states.hpp"
#include "common/error.hpp"
#include "core/debugger.hpp"

namespace qa
{
namespace
{

using namespace algos;

std::vector<QuantumCircuit>
qpeStages(QpeBug bug)
{
    QpeProgram program(4, M_PI / 8, bug);
    std::vector<QuantumCircuit> stages;
    for (int s = 0; s < program.numStages(); ++s) {
        stages.push_back(program.stage(s));
    }
    return stages;
}

TEST(SlotDebuggerTest, CleanProgramReportsNoBug)
{
    SlotDebugger debugger(qpeStages(QpeBug::kNone),
                          qpeStages(QpeBug::kNone));
    const SlotDebugReport report = debugger.run();
    EXPECT_FALSE(report.bugFound());
    for (double err : report.slot_error_prob) {
        EXPECT_NEAR(err, 0.0, 1e-9);
    }
}

TEST(SlotDebuggerTest, LocalizesQpeBug1)
{
    SlotDebugger debugger(qpeStages(QpeBug::kFixedAngle),
                          qpeStages(QpeBug::kNone));
    const SlotDebugReport report = debugger.run();
    ASSERT_TRUE(report.bugFound());
    EXPECT_EQ(report.first_failing_slot, 3); // paper Sec. IX-A1
    EXPECT_EQ(report.suspectStage(), 2);
}

TEST(SlotDebuggerTest, LocalizesQpeBug2)
{
    SlotDebugger debugger(qpeStages(QpeBug::kMissingControl),
                          qpeStages(QpeBug::kNone));
    const SlotDebugReport report = debugger.run();
    ASSERT_TRUE(report.bugFound());
    EXPECT_EQ(report.first_failing_slot, 2);
}

TEST(SlotDebuggerTest, BisectAgreesWithLinearSweep)
{
    for (QpeBug bug : {QpeBug::kFixedAngle, QpeBug::kMissingControl,
                       QpeBug::kWrongParamOrder}) {
        SlotDebugger debugger(qpeStages(bug), qpeStages(QpeBug::kNone));
        const SlotDebugReport linear = debugger.run();
        const SlotDebugReport fast = debugger.bisect();
        EXPECT_EQ(fast.first_failing_slot, linear.first_failing_slot);
        EXPECT_LE(fast.evaluations, linear.evaluations);
    }
}

TEST(SlotDebuggerTest, BisectCleanProgram)
{
    SlotDebugger debugger(qpeStages(QpeBug::kNone),
                          qpeStages(QpeBug::kNone));
    const SlotDebugReport report = debugger.bisect();
    EXPECT_FALSE(report.bugFound());
}

TEST(SlotDebuggerTest, GhzStagewise)
{
    // Split the GHZ prep into three stages; Bug2 (reordered CX) makes
    // the first CX stage diverge.
    auto stages = [](int bug) {
        const QuantumCircuit full = ghzPrep(3, bug);
        std::vector<QuantumCircuit> out;
        for (const Instruction& instr : full.instructions()) {
            QuantumCircuit stage(3);
            stage.append(instr);
            out.push_back(std::move(stage));
        }
        return out;
    };
    SlotDebugger debugger(stages(2), stages(0));
    const SlotDebugReport report = debugger.run();
    ASSERT_TRUE(report.bugFound());
    EXPECT_EQ(report.first_failing_slot, 2); // the swapped CX
}

TEST(SlotDebuggerTest, CancellingBugNeedsBackwardSweep)
{
    // A "bug" that a later stage undoes: slot 1 fails, final slot
    // passes. bisect()'s defensive backward sweep must still find it.
    QuantumCircuit good(1);
    good.h(0);
    QuantumCircuit bad(1);
    bad.z(0);
    bad.h(0); // extra Z... then stage 2 cancels it

    QuantumCircuit fix(1);
    fix.h(0);
    fix.z(0);
    fix.h(0); // reference stage 2 = H Z H; buggy program applies the
              // same, so the final states coincide

    std::vector<QuantumCircuit> ref = {good, fix};
    std::vector<QuantumCircuit> prog = {bad, fix};
    // Confirm construction: slot 1 differs, slot 2... also differs or
    // not depending on algebra; just check run/bisect agree.
    SlotDebugger debugger(prog, ref);
    const SlotDebugReport linear = debugger.run();
    const SlotDebugReport fast = debugger.bisect();
    EXPECT_EQ(fast.first_failing_slot, linear.first_failing_slot);
}

TEST(SlotDebuggerTest, Validation)
{
    QuantumCircuit one(1);
    QuantumCircuit two(2);
    EXPECT_THROW(SlotDebugger({}, {}), UserError);
    EXPECT_THROW(SlotDebugger({one}, {one, one}), UserError);
    EXPECT_THROW(SlotDebugger({one, two}, {one, one}), UserError);

    QuantumCircuit measured(1, 1);
    measured.measure(0, 0);
    EXPECT_THROW(SlotDebugger({measured}, {measured}), UserError);
}

} // namespace
} // namespace qa
