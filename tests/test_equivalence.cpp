/**
 * @file
 * Reproduction of the paper's circuit-equivalence claims: the systematic
 * designs specialize to the prior work's ad-hoc assertion circuits
 * (Fig. 4 for |+>, Fig. 13 for |0>, Fig. 14 for a|00> + b|11>, and the
 * Appendix A transformation chain).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/stdgates.hpp"
#include "core/builders.hpp"
#include "core/state_set.hpp"
#include "linalg/states.hpp"
#include "transpile/peephole.hpp"
#include "sim/statevector.hpp"
#include "synth/unitary_synth.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

/**
 * Compare two assertion fragments as channels: for a set of probe input
 * states on the tested qubits (ancillas |0>), both circuits must produce
 * the same joint output state.
 */
void
expectFragmentsEquivalent(const QuantumCircuit& a, const QuantumCircuit& b,
                          int data_qubits)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    const int n = a.numQubits();
    Rng rng(77);
    for (int probe = 0; probe < 6; ++probe) {
        CVector data = randomState(data_qubits, rng);
        CVector input = data;
        for (int q = data_qubits; q < n; ++q) {
            input = input.tensor(CVector::basisState(2, 0));
        }
        Statevector sa{input}, sb{input};
        for (const Instruction& instr : a.instructions()) {
            if (instr.isGate()) sa.applyGate(instr);
        }
        for (const Instruction& instr : b.instructions()) {
            if (instr.isGate()) sb.applyGate(instr);
        }
        EXPECT_TRUE(sa.amplitudes().equalsUpToPhase(sb.amplitudes(), 1e-8))
            << "probe " << probe;
    }
}

TEST(EquivalenceTest, Fig4PlusStateSwapAssertion)
{
    // Our SWAP-based |+> assertion vs. the prior-work circuit of Fig. 4
    // (Appendix A final form): H(q); CX(q -> anc); CX(anc -> q); H(q)
    // with the ancilla measured. The basis-change U is only constrained
    // on its first column (U|0> = |+>), so the two circuits agree as
    // measurement instruments: identical error probability and
    // identical pass-branch post-state for every input.
    CorrectSubspace ss = analyzeStateSet(
        StateSet::pure(CVector{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)}));
    BuildContext ctx;
    ctx.total_qubits = 2;
    ctx.total_clbits = 1;
    ctx.qubits = {0};
    ctx.ancillas = {1};
    ctx.clbits = {0};
    QuantumCircuit ours = buildSwapAssertion(
        ss, ctx, SwapPlacement::kInvBeforePrepAfter);

    QuantumCircuit prior(2, 1);
    prior.h(0);
    prior.cx(0, 1);
    prior.cx(1, 0);
    prior.measure(1, 0);
    prior.h(0);

    Rng rng(99);
    for (int probe = 0; probe < 6; ++probe) {
        const CVector data = randomState(1, rng);
        const CVector input = data.tensor(CVector::basisState(2, 0));
        auto runInstrument = [&](const QuantumCircuit& frag) {
            Statevector sv{input};
            for (const Instruction& instr : frag.instructions()) {
                if (instr.isGate()) sv.applyGate(instr);
            }
            const double p_err = sv.probabilityOne(1);
            Statevector passed = sv;
            passed.collapse(1, 0);
            return std::make_pair(p_err, passed.amplitudes());
        };
        const auto [pe_a, pass_a] = runInstrument(ours);
        const auto [pe_b, pass_b] = runInstrument(prior);
        EXPECT_NEAR(pe_a, pe_b, 1e-9) << "probe " << probe;
        EXPECT_TRUE(pass_a.equalsUpToPhase(pass_b, 1e-8))
            << "probe " << probe;
    }
}

TEST(EquivalenceTest, Fig13ZeroStateNddAssertion)
{
    // NDD |0> assertion: U = Z, i.e. H(anc) CZ H(anc) == CX(q -> anc)
    // (the prior work's classical assertion circuit).
    CorrectSubspace ss =
        analyzeStateSet(StateSet::pure(CVector::basisState(2, 0)));
    BuildContext ctx;
    ctx.total_qubits = 2;
    ctx.total_clbits = 1;
    ctx.qubits = {0};
    ctx.ancillas = {1};
    ctx.clbits = {0};
    QuantumCircuit ours = buildNddAssertion(ss, ctx);

    QuantumCircuit prior(2, 1);
    prior.cx(0, 1);
    prior.measure(1, 0);

    expectFragmentsEquivalent(ours, prior, 1);
}

TEST(EquivalenceTest, Fig14ParityNddAssertion)
{
    // Approximate set {|00>, |11>}: U = Z(x)Z; the NDD circuit equals
    // the prior work's parity check CX(q0->anc) CX(q1->anc).
    CorrectSubspace ss = analyzeStateSet(StateSet::approximate(
        {CVector::basisState(4, 0), CVector::basisState(4, 3)}));
    BuildContext ctx;
    ctx.total_qubits = 3;
    ctx.total_clbits = 1;
    ctx.qubits = {0, 1};
    ctx.ancillas = {2};
    ctx.clbits = {0};
    QuantumCircuit ours = buildNddAssertion(ss, ctx);

    QuantumCircuit prior(3, 1);
    prior.cx(0, 2);
    prior.cx(1, 2);
    prior.measure(2, 0);

    expectFragmentsEquivalent(ours, prior, 2);

    // And the NDD unitary is literally Z(x)Z.
    CMatrix u = ss.projector() * Complex(2.0, 0.0) - CMatrix::identity(4);
    test::expectMatrixNear(u, kron(gates::z(), gates::z()), 1e-10);
}

TEST(EquivalenceTest, AppendixAHMirrorIdentity)
{
    // H(x)H . CX(a,b) . H(x)H == CX(b,a): the transformation the
    // Appendix A proof chains through.
    QuantumCircuit lhs(2);
    lhs.h(0);
    lhs.h(1);
    lhs.cx(0, 1);
    lhs.h(0);
    lhs.h(1);
    QuantumCircuit rhs(2);
    rhs.cx(1, 0);
    EXPECT_TRUE(circuitUnitary(lhs).equalsUpToPhase(circuitUnitary(rhs),
                                                    1e-10));
}

TEST(EquivalenceTest, NddPlusStateIsControlledX)
{
    // U = 2|+><+| - I = X: the NDD |+> assertion is H(anc) CX H(anc).
    CorrectSubspace ss = analyzeStateSet(
        StateSet::pure(CVector{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)}));
    CMatrix u = ss.projector() * Complex(2.0, 0.0) - CMatrix::identity(2);
    test::expectMatrixNear(u, gates::x(), 1e-10);

    BuildContext ctx;
    ctx.total_qubits = 2;
    ctx.total_clbits = 1;
    ctx.qubits = {0};
    ctx.ancillas = {1};
    ctx.clbits = {0};
    QuantumCircuit ours = buildNddAssertion(ss, ctx);
    CircuitCost cost = circuitCost(ours);
    EXPECT_EQ(cost.cx, 1);
}

TEST(EquivalenceTest, GhzParitySetNddIsXXX)
{
    // The paper's Sec. III NDD set for GHZ yields U = X(x)X(x)X.
    auto mk = [](int a, int b) {
        CVector v(8);
        v[a] = v[b] = 1.0 / std::sqrt(2.0);
        return v;
    };
    CorrectSubspace ss = analyzeStateSet(StateSet::approximate(
        {mk(0, 7), mk(1, 6), mk(3, 4), mk(2, 5)}));
    EXPECT_EQ(ss.rank(), 4u);
    CMatrix u = ss.projector() * Complex(2.0, 0.0) - CMatrix::identity(8);
    test::expectMatrixNear(
        u, kron(kron(gates::x(), gates::x()), gates::x()), 1e-9);
}

} // namespace
} // namespace qa
