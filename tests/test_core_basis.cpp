/**
 * @file
 * Tests for the assertion foundation: StateSet analysis, rank-regime
 * classification, superset and extended-basis construction, and the
 * shared basis-change builder.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/builders.hpp"
#include "linalg/gram_schmidt.hpp"
#include "core/state_set.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/unitary_synth.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

CVector
ghz(int n)
{
    CVector v(size_t(1) << n);
    v[0] = v[v.dim() - 1] = 1.0 / std::sqrt(2.0);
    return v;
}

TEST(StateSetTest, KindsAndValidation)
{
    StateSet pure = StateSet::pure(ghz(3));
    EXPECT_EQ(pure.kind(), StateSetKind::kPure);
    EXPECT_EQ(pure.numQubits(), 3);
    EXPECT_THROW(pure.density(), UserError);

    CMatrix not_density = CMatrix::identity(4); // trace 4
    EXPECT_THROW(StateSet::mixed(not_density), UserError);

    EXPECT_THROW(StateSet::approximate({}), UserError);
    EXPECT_THROW(StateSet::approximate(
                     {CVector::basisState(2, 0), CVector::basisState(4, 0)}),
                 UserError);
}

TEST(StateSetTest, PureAnalysis)
{
    CorrectSubspace ss = analyzeStateSet(StateSet::pure(ghz(3)));
    EXPECT_EQ(ss.rank(), 1u);
    EXPECT_EQ(ss.n, 3);
    EXPECT_FALSE(ss.all_basis_states);
}

TEST(StateSetTest, MixedAnalysisRank)
{
    // rho_23 of the GHZ example: rank 2, both eigenstates basis states.
    CMatrix rho = partialTrace(densityFromPure(ghz(3)), {1, 2});
    CorrectSubspace ss = analyzeStateSet(StateSet::mixed(rho));
    EXPECT_EQ(ss.rank(), 2u);
    EXPECT_TRUE(ss.all_basis_states);
    EXPECT_EQ(ss.basis_indices.size(), 2u);
    // |00> and |11> in the 2-qubit space.
    EXPECT_EQ(ss.basis_indices[0], 0u);
    EXPECT_EQ(ss.basis_indices[1], 3u);
}

TEST(StateSetTest, DegenerateEigenspaceRealignsToBasisStates)
{
    // Equal mixture of |000> and |111>: Jacobi may rotate inside the
    // degenerate eigenspace; alignment must restore basis states.
    CMatrix rho = densityFromMixture(
        {CVector::basisState(8, 0), CVector::basisState(8, 7)});
    CorrectSubspace ss = analyzeStateSet(StateSet::mixed(rho));
    EXPECT_TRUE(ss.all_basis_states);
    EXPECT_EQ(ss.basis_indices, (std::vector<uint64_t>{0, 7}));
}

TEST(StateSetTest, ApproximateUsesSpanNotProbabilities)
{
    // Non-orthogonal members: span has rank 2.
    CVector plus{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)};
    CorrectSubspace ss = analyzeStateSet(
        StateSet::approximate({CVector::basisState(2, 0), plus}));
    EXPECT_EQ(ss.rank(), 2u);

    // Duplicate members do not inflate the rank.
    CorrectSubspace dup = analyzeStateSet(StateSet::approximate(
        {CVector::basisState(2, 0), CVector::basisState(2, 0)}));
    EXPECT_EQ(dup.rank(), 1u);
}

TEST(StateSetTest, ProjectorIsIdempotent)
{
    Rng rng(15);
    CorrectSubspace ss = analyzeStateSet(
        StateSet::mixed(randomDensity(3, 3, rng)));
    CMatrix p = ss.projector();
    test::expectMatrixNear(p * p, p, 1e-8);
    test::expectComplexNear(p.trace(), Complex(double(ss.rank())), 1e-8);
}

TEST(RankRegimeTest, Classification)
{
    int m = -1;
    EXPECT_EQ(classifyRank(1, 3, &m), RankRegime::kPower);
    EXPECT_EQ(m, 0);
    EXPECT_EQ(classifyRank(2, 3, &m), RankRegime::kPower);
    EXPECT_EQ(m, 1);
    EXPECT_EQ(classifyRank(3, 3, &m), RankRegime::kBetween);
    EXPECT_EQ(m, 1);
    EXPECT_EQ(classifyRank(4, 3, &m), RankRegime::kPower);
    EXPECT_EQ(classifyRank(5, 3, &m), RankRegime::kLarge);
    EXPECT_EQ(classifyRank(7, 3, &m), RankRegime::kLarge);
    EXPECT_EQ(classifyRank(8, 3, &m), RankRegime::kFull);
    EXPECT_THROW(classifyRank(0, 3, &m), UserError);
    EXPECT_THROW(classifyRank(9, 3, &m), UserError);
}

TEST(SupersetTest, PaperExample)
{
    // Sec. IV-C case 2: rho = 0.5|000><000| + 0.25|001><001| +
    // 0.25|010><010| (t = 3).
    CMatrix rho = densityFromMixture(
        {CVector::basisState(8, 0), CVector::basisState(8, 1),
         CVector::basisState(8, 2)},
        {0.5, 0.25, 0.25});
    CorrectSubspace ss = analyzeStateSet(StateSet::mixed(rho));
    ASSERT_EQ(ss.rank(), 3u);

    auto [s1, s2] = buildSupersets(ss, 1);
    EXPECT_EQ(s1.size(), 4u);
    EXPECT_EQ(s2.size(), 4u);
    // Each superset orthonormal and containing the correct basis.
    for (const auto& s : {s1, s2}) {
        for (size_t i = 0; i < s.size(); ++i) {
            for (size_t j = i + 1; j < s.size(); ++j) {
                test::expectComplexNear(s[i].inner(s[j]), Complex(0.0),
                                        1e-9);
            }
        }
    }
    // The two extras are orthogonal to each other (disjoint supersets).
    test::expectComplexNear(s1[3].inner(s2[3]), Complex(0.0), 1e-9);
}

TEST(ExtendedBasisTest, LargeRankEmbedding)
{
    // t = 3 on 2 qubits: kLarge. Extended basis has rank 4 over 3 qubits.
    CMatrix rho = densityFromMixture(
        {CVector::basisState(4, 0), CVector::basisState(4, 1),
         CVector::basisState(4, 2)});
    CorrectSubspace ss = analyzeStateSet(StateSet::mixed(rho));
    ASSERT_EQ(classifyRank(ss.rank(), 2, nullptr), RankRegime::kLarge);

    auto ext = buildExtendedBasis(ss);
    ASSERT_EQ(ext.size(), 4u);
    for (const CVector& v : ext) EXPECT_EQ(v.dim(), 8u);
    // First t entries live in the |0> half, the rest in the |1> half.
    for (size_t i = 0; i < 3; ++i) {
        for (size_t j = 4; j < 8; ++j) {
            test::expectComplexNear(ext[i][j], Complex(0.0), 1e-12);
        }
    }
    for (size_t j = 0; j < 4; ++j) {
        test::expectComplexNear(ext[3][j], Complex(0.0), 1e-12);
    }
}

TEST(BasisChangeTest, PureStateMapsToZero)
{
    Rng rng(8);
    for (int n : {1, 2, 3}) {
        CVector psi = randomState(n, rng);
        BasisChange bc = buildBasisChange({psi}, n);
        CVector mapped = circuitUnitary(bc.uinv) * psi;
        EXPECT_NEAR(std::abs(mapped[0]), 1.0, 1e-7);
        // u restores.
        CVector restored = circuitUnitary(bc.u) *
                           CVector::basisState(size_t(1) << n, 0);
        EXPECT_TRUE(restored.equalsUpToPhase(psi, 1e-7));
        EXPECT_EQ(bc.flag_qubits.size(), size_t(n));
    }
}

TEST(BasisChangeTest, AffineSetClearsCheckQubits)
{
    std::vector<CVector> basis = {CVector::basisState(8, 0),
                                  CVector::basisState(8, 7)};
    BasisChange bc = buildBasisChange(basis, 3);
    EXPECT_EQ(bc.flag_qubits.size(), 2u);
    CMatrix uinv = circuitUnitary(bc.uinv);
    for (const CVector& b : basis) {
        CVector mapped = uinv * b;
        // Every amplitude must sit on an index whose flag qubits are 0.
        for (uint64_t i = 0; i < 8; ++i) {
            if (std::abs(mapped[i]) < 1e-9) continue;
            for (int f : bc.flag_qubits) {
                EXPECT_EQ((i >> (2 - f)) & 1, 0u) << "index " << i;
            }
        }
    }
    // CNOT/X only.
    EXPECT_EQ(bc.uinv.countSingleQubit() -
                  bc.uinv.countGates("x"), 0);
}

TEST(BasisChangeTest, CorrectIndicesConsistent)
{
    // For any basis change, uinv maps the span of the basis onto the
    // span of the correct indices.
    Rng rng(21);
    std::vector<CVector> basis;
    basis.push_back(randomState(2, rng));
    auto ortho = completeBasis(basis, 4);
    basis.push_back(ortho[1]);
    BasisChange bc = buildBasisChange(basis, 2);
    ASSERT_EQ(bc.correct_indices.size(), 2u);
    CMatrix uinv = circuitUnitary(bc.uinv);
    for (const CVector& b : basis) {
        CVector mapped = uinv * b;
        double mass = 0.0;
        for (uint64_t i : bc.correct_indices) {
            mass += std::norm(mapped[i]);
        }
        EXPECT_NEAR(mass, 1.0, 1e-7);
    }
}

TEST(BasisChangeTest, UAndUinvAreInverses)
{
    Rng rng(33);
    std::vector<CVector> seed = {randomState(3, rng), randomState(3, rng)};
    auto basis = orthonormalize(seed);
    basis = completeBasis(basis, 8);
    basis.resize(4); // rank-4 subspace
    BasisChange bc = buildBasisChange(basis, 3);
    QuantumCircuit both(3);
    std::vector<int> ident{0, 1, 2};
    both.compose(bc.uinv, ident);
    both.compose(bc.u, ident);
    EXPECT_TRUE(circuitUnitary(both).equalsUpToPhase(
        CMatrix::identity(8), 1e-7));
}

} // namespace
} // namespace qa
