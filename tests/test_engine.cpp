/**
 * @file
 * Shot-execution engine tests: circuit analysis (prefix split rules and
 * the terminal-sampling fast path), bit-exact determinism across thread
 * counts, exact agreement between prefix-cached and naive per-shot
 * execution, the O(log d) sample table, and the sorted
 * basisProbabilities container.
 */
#include <stdexcept>

#include <gtest/gtest.h>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "sim/engine.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace
{

/** Layered pseudo-random circuit (no measurements). */
QuantumCircuit
layered(int n, int layers, uint64_t seed)
{
    QuantumCircuit qc(n);
    Rng rng(seed);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) {
            qc.u3(q, rng.uniform(0, 3), rng.uniform(0, 3),
                  rng.uniform(0, 3));
        }
        for (int q = 0; q + 1 < n; q += 2) qc.cx(q, q + 1);
    }
    return qc;
}

/** Circuit exercising every stochastic feature the engine handles. */
QuantumCircuit
kitchenSink(int n)
{
    QuantumCircuit qc(n, n);
    std::vector<int> ident;
    for (int q = 0; q < n; ++q) ident.push_back(q);
    qc.compose(layered(n, 2, 11), ident);
    qc.measure(0, 0); // mid-circuit measurement
    qc.reset(1);      // mid-circuit reset
    qc.compose(layered(n, 1, 12), ident);
    qc.measureAll();
    return qc;
}

TEST(ShotPlanTest, NoiselessTerminalMeasurementIsFastPath)
{
    QuantumCircuit qc(3, 3);
    qc.h(0);
    qc.cx(0, 1);
    qc.barrier();
    qc.measureAll();
    const ShotPlan plan = analyzeShotPlan(qc, nullptr);
    EXPECT_EQ(plan.split, 3u); // first measure (barrier is index 2)
    EXPECT_TRUE(plan.terminal_sampling);
    ASSERT_EQ(plan.terminal_measures.size(), 3u);
    EXPECT_EQ(plan.terminal_measures[0], (std::pair<int, int>{0, 0}));
    EXPECT_FALSE(plan.kraus_noise);
    EXPECT_FALSE(plan.readout_noise);
}

TEST(ShotPlanTest, MidCircuitMeasurementDisablesFastPath)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.measure(0, 0);
    qc.cx(0, 1);
    qc.measure(1, 1);
    const ShotPlan plan = analyzeShotPlan(qc, nullptr);
    EXPECT_EQ(plan.split, 1u);
    EXPECT_FALSE(plan.terminal_sampling);
    EXPECT_TRUE(plan.terminal_measures.empty());
}

TEST(ShotPlanTest, NoiseModelSplitsAtFirstNoisyGate)
{
    // 2q-only depolarizing: 1q gates stay in the prefix, the first cx
    // is the split point.
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.h(1);
    qc.cx(0, 1);
    qc.measureAll();
    const NoiseModel noise = NoiseModel::depolarizing(0.0, 0.05);
    const ShotPlan plan = analyzeShotPlan(qc, &noise);
    EXPECT_EQ(plan.split, 2u);
    EXPECT_FALSE(plan.terminal_sampling);
    EXPECT_TRUE(plan.kraus_noise);
}

TEST(ShotPlanTest, ReadoutOnlyNoiseKeepsFastPath)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    qc.measureAll();
    NoiseModel noise;
    noise.readout_p01 = 0.02;
    noise.readout_p10 = 0.05;
    const ShotPlan plan = analyzeShotPlan(qc, &noise);
    EXPECT_EQ(plan.split, 2u);
    EXPECT_TRUE(plan.terminal_sampling);
    EXPECT_FALSE(plan.kraus_noise);
    EXPECT_TRUE(plan.readout_noise);
}

TEST(ShotPlanTest, DisabledNoiseModelIgnored)
{
    QuantumCircuit qc(1, 1);
    qc.h(0);
    qc.measure(0, 0);
    const NoiseModel empty;
    const ShotPlan plan = analyzeShotPlan(qc, &empty);
    EXPECT_EQ(plan.split, 1u);
    EXPECT_TRUE(plan.terminal_sampling);
}

TEST(SampleTableTest, MatchesDistribution)
{
    Statevector sv(2);
    sv.applyMatrix(gates::h(), {0});
    sv.applyMatrix(gates::cx(), {0, 1});
    SampleTable table(sv);
    Rng rng(3);
    int ones = 0;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t idx = table.sample(rng);
        EXPECT_TRUE(idx == 0 || idx == 3) << idx;
        if (idx == 3) ++ones;
    }
    EXPECT_NEAR(double(ones) / 20000.0, 0.5, 0.02);
}

TEST(EngineTest, SeededRunsBitIdenticalAcrossThreadCounts)
{
    const QuantumCircuit qc = kitchenSink(4);
    NoiseModel noise = NoiseModel::depolarizing(0.002, 0.01);
    noise.readout_p01 = 0.015;
    noise.readout_p10 = 0.035;

    SimOptions base;
    base.shots = 2048;
    base.seed = 77;
    base.noise = &noise;

    base.num_threads = 1;
    const Counts one = runShots(qc, base);
    for (int threads : {2, 8}) {
        SimOptions options = base;
        options.num_threads = threads;
        const Counts many = runShots(qc, options);
        EXPECT_EQ(one.map, many.map) << threads << " threads";
        EXPECT_EQ(many.shots, base.shots);
    }
}

TEST(EngineTest, TerminalSamplingBitIdenticalAcrossThreadCounts)
{
    QuantumCircuit qc(5, 5);
    std::vector<int> ident{0, 1, 2, 3, 4};
    qc.compose(layered(5, 3, 21), ident);
    qc.measureAll();

    SimOptions base;
    base.shots = 4096;
    base.seed = 123;
    base.num_threads = 1;
    const Counts one = runShots(qc, base);
    for (int threads : {2, 8}) {
        SimOptions options = base;
        options.num_threads = threads;
        EXPECT_EQ(one.map, runShots(qc, options).map)
            << threads << " threads";
    }
}

TEST(EngineTest, PrefixCachedAgreesExactlyWithNaive)
{
    // Mid-circuit measurement, reset, trajectory noise, and readout
    // error: the cached plan must replay the identical RNG stream the
    // naive full-replay plan consumes.
    const QuantumCircuit qc = kitchenSink(3);
    NoiseModel noise = NoiseModel::depolarizing(0.001, 0.02);
    noise.readout_p01 = 0.01;
    noise.readout_p10 = 0.03;

    const std::vector<const NoiseModel*> models{nullptr, &noise};
    for (const NoiseModel* model : models) {
        SimOptions cached;
        cached.shots = 1024;
        cached.seed = 5150;
        cached.noise = model;
        SimOptions naive = cached;
        naive.naive = true;
        EXPECT_EQ(runShots(qc, cached).map, runShots(qc, naive).map)
            << (model ? "noisy" : "noiseless");
    }
}

TEST(EngineTest, FastPathMatchesExactDistribution)
{
    QuantumCircuit qc(3, 3);
    qc.h(0);
    qc.cx(0, 1);
    qc.u3(2, 1.1, 0.3, 0.2);
    qc.cx(2, 1);
    qc.measureAll();
    const Distribution exact = exactDistribution(qc);
    SimOptions options;
    options.shots = 40000;
    options.seed = 9;
    const Distribution sampled = runShots(qc, options).toDistribution();
    for (const auto& [bits, p] : exact.probs) {
        EXPECT_NEAR(sampled.probability(bits), p, 0.02) << bits;
    }
}

TEST(EngineTest, FastPathHandlesMeasuredSubset)
{
    // Only one qubit of a Bell pair is measured: the sampled marginal
    // must match, and unmeasured clbits stay '0'.
    QuantumCircuit qc(2, 1);
    qc.h(0);
    qc.cx(0, 1);
    qc.measure(1, 0);
    SimOptions options;
    options.shots = 20000;
    options.seed = 17;
    const Counts counts = runShots(qc, options);
    EXPECT_NEAR(counts.toDistribution().probability("1"), 0.5, 0.02);
}

TEST(EngineTest, ReadoutErrorOnFastPath)
{
    // |0> measured with P(0->1) = 0.1: the flip rate must survive the
    // classical fast path.
    QuantumCircuit qc(1, 1);
    qc.measure(0, 0);
    NoiseModel noise;
    noise.readout_p01 = 0.1;
    SimOptions options;
    options.shots = 40000;
    options.seed = 3;
    options.noise = &noise;
    const Counts counts = runShots(qc, options);
    EXPECT_NEAR(counts.toDistribution().probability("1"), 0.1, 0.01);
}

TEST(EngineTest, MeasurementFreeCircuit)
{
    QuantumCircuit qc(2);
    qc.h(0);
    SimOptions options;
    options.shots = 16;
    options.seed = 1;
    const Counts counts = runShots(qc, options);
    EXPECT_EQ(counts.shots, 16);
    ASSERT_EQ(counts.map.size(), 1u);
    EXPECT_EQ(counts.map.begin()->second, 16);
}

TEST(StatevectorApiTest, BasisProbabilitiesSortedAndMapAgree)
{
    Statevector sv(3);
    sv.applyMatrix(gates::h(), {0});
    sv.applyMatrix(gates::h(), {2});
    const auto sorted = sv.basisProbabilities(1e-9);
    ASSERT_EQ(sorted.size(), 4u);
    for (size_t i = 1; i < sorted.size(); ++i) {
        EXPECT_LT(sorted[i - 1].first, sorted[i].first);
    }
    const auto map = sv.basisProbabilitiesMap(1e-9);
    ASSERT_EQ(map.size(), sorted.size());
    for (const auto& [index, p] : sorted) {
        EXPECT_DOUBLE_EQ(map.at(index), p);
    }
}

TEST(ShotPoolTest, WorkerExceptionIsRethrownWithThreadsJoined)
{
    // A shot body that fails mid-run: the pool must join every worker
    // and rethrow the first exception on the calling thread instead of
    // calling std::terminate from a detached stack.
    std::vector<long> locals;
    EXPECT_THROW(
        runShotPool(
            100000, 4, 0.0, locals,
            [&]() {
                return [](int shot, long& local) {
                    if (shot == 54321) {
                        throw std::runtime_error("shot body failed");
                    }
                    ++local;
                };
            }),
        std::runtime_error);

    // The serial path funnels failures the same way.
    std::vector<long> serial_locals;
    EXPECT_THROW(runShotPool(100, 1, 0.0, serial_locals,
                             [&]() {
                                 return [](int shot, long&) {
                                     if (shot == 50) {
                                         throw UserError("serial body");
                                     }
                                 };
                             }),
                 UserError);
}

TEST(ShotPoolTest, ExceptionDuringDeadlineDrainJoinsCleanly)
{
    // Regression for the pool shutdown ordering: a worker throwing
    // while its siblings are already draining on an expired deadline
    // must not race the pool teardown. Whichever side wins — the
    // deadline truncating the run or the poisoned shot throwing — every
    // thread is joined before runShotPool unwinds and the per-worker
    // locals stay consistent (tier1 runs this under TSAN, which is what
    // actually checks the join ordering).
    for (int iter = 0; iter < 25; ++iter) {
        std::vector<long> locals;
        try {
            const ShotLoopStatus status = runShotPool(
                1 << 20, 4, 0.2, locals,
                [&]() {
                    return [](int shot, long& local) {
                        if ((shot & 4095) == 4095) {
                            throw std::runtime_error("poisoned shot");
                        }
                        ++local;
                    };
                });
            // The deadline beat every poisoned shot: a clean truncation.
            EXPECT_TRUE(status.truncated);
        } catch (const std::runtime_error&) {
            // A poisoned shot threw while the others drained: the
            // exception surfaced on this thread after a full join.
        }
        long total = 0;
        for (long local : locals) total += local;
        EXPECT_GE(total, 0);
    }
}

TEST(ShotPoolTest, CompletedRunsReportFullShotCount)
{
    std::vector<long> locals;
    const ShotLoopStatus status = runShotPool(
        1000, 3, 0.0, locals,
        [&]() { return [](int, long& local) { ++local; }; });
    EXPECT_EQ(status.completed, 1000);
    EXPECT_FALSE(status.truncated);
    long total = 0;
    for (long local : locals) total += local;
    EXPECT_EQ(total, 1000);
}

TEST(ShotPoolTest, ExpiredDeadlineTruncatesCooperatively)
{
    // Deadline already expired at entry: workers stop at their first
    // check and the status reports what (little) completed.
    std::vector<long> locals;
    const ShotLoopStatus status = runShotPool(
        1000000, 4, 1e-9, locals,
        [&]() { return [](int, long& local) { ++local; }; });
    EXPECT_TRUE(status.truncated);
    EXPECT_LT(status.completed, 1000000);
    long total = 0;
    for (long local : locals) total += local;
    EXPECT_EQ(total, status.completed);
}

TEST(EngineTest, DeadlineTruncationReturnsPartialCounts)
{
    // runShots with an immediately-expiring deadline: a valid partial
    // histogram flagged truncated, not an exception or a hang.
    QuantumCircuit qc(8, 8);
    std::vector<int> ident{0, 1, 2, 3, 4, 5, 6, 7};
    qc.compose(layered(8, 3, 5), ident);
    qc.measureAll();
    SimOptions options;
    options.shots = 500000;
    options.seed = 21;
    options.num_threads = 2;
    options.deadline_ms = 1e-6;
    const Counts counts = runShots(qc, options);
    EXPECT_TRUE(counts.truncated);
    EXPECT_LT(counts.shots, options.shots);
    int total = 0;
    for (const auto& [bits, n] : counts.map) total += n;
    EXPECT_EQ(total, counts.shots);

    // Unbounded runs stay un-truncated.
    options.shots = 64;
    options.deadline_ms = 0.0;
    const Counts full = runShots(qc, options);
    EXPECT_FALSE(full.truncated);
    EXPECT_EQ(full.shots, 64);
}

TEST(EngineTest, ShotExecutorReplaysOneShotDeterministically)
{
    QuantumCircuit qc = kitchenSink(4);
    const ShotExecutor executor(qc, nullptr);
    Statevector scratch = executor.makeScratch();
    Rng a = Rng::forStream(9, 3);
    const std::string first = executor.runOne(a, scratch);
    Rng b = Rng::forStream(9, 3);
    const std::string replay = executor.runOne(b, scratch);
    EXPECT_EQ(first, replay);
    EXPECT_EQ(first.size(), size_t(qc.numClbits()));
}

TEST(RngTest, StreamsDependOnlyOnSeedAndIndex)
{
    Rng a = Rng::forStream(42, 7);
    Rng b = Rng::forStream(42, 7);
    for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
    // Distinct streams diverge immediately.
    Rng c = Rng::forStream(42, 8);
    EXPECT_NE(Rng::forStream(42, 7).uniform(), c.uniform());
}

} // namespace
} // namespace qa
