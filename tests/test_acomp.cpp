/**
 * @file
 * Tests for the assertion compiler (src/acomp): stabilizer-generator
 * extraction, the Pauli parity-measurement gadget, cross-form
 * statistical equivalence of the lowerings, thread-count determinism of
 * multi-variant runs, the static assertion generator (including the GHZ
 * idiom's fault-detection power), kUnsupportedAssertion diagnostics,
 * and the serve-layer auto_assert integration.
 */
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acomp/compiler.hpp"
#include "acomp/generator.hpp"
#include "acomp/lowering.hpp"
#include "acomp/run.hpp"
#include "algos/states.hpp"
#include "backend/backend.hpp"
#include "baselines/chi_square.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "serve/job.hpp"
#include "serve/wire.hpp"
#include "stab/observables.hpp"
#include "synth/pauli_gadget.hpp"

namespace qa
{
namespace
{

using namespace acomp;
using namespace algos;

/** GHZ-n preparation with measured program output. */
QuantumCircuit
measuredGhz(int n)
{
    QuantumCircuit qc(n, n);
    qc.h(0);
    for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    for (int q = 0; q < n; ++q) qc.measure(q, q);
    return qc;
}

/** One user site asserting the GHZ-n state at instruction `position`. */
AssertionSite
ghzSite(int n, size_t position)
{
    AssertionSite site;
    site.position = position;
    for (int q = 0; q < n; ++q) site.qubits.push_back(q);
    site.set = std::make_shared<StateSet>(StateSet::pure(ghzVector(n)));
    return site;
}

TEST(AcompLoweringTest, NamesRoundTrip)
{
    EXPECT_STREQ(formName(LoweringForm::kSwap), "swap");
    EXPECT_STREQ(formName(LoweringForm::kPauliMeasure), "pauli");
    EXPECT_STREQ(formName(LoweringForm::kPauliSample), "pauli_sample");
    for (const char* name :
         {"auto", "swap", "or", "ndd", "pauli", "pauli_sample"}) {
        LoweringRequest req;
        ASSERT_TRUE(parseLoweringRequest(name, &req)) << name;
        EXPECT_STREQ(loweringRequestName(req), name);
    }
    LoweringRequest req;
    EXPECT_TRUE(parseLoweringRequest("pauli_measure", &req));
    EXPECT_EQ(req, LoweringRequest::kPauliMeasure);
    EXPECT_FALSE(parseLoweringRequest("bogus", &req));
    EXPECT_STREQ(invariantClassName(InvariantClass::kEntangled),
                 "entangled");
}

TEST(AcompLoweringTest, GhzGeneratorsStabilizeTheState)
{
    for (int n : {2, 3, 5}) {
        const CorrectSubspace sub =
            analyzeStateSet(StateSet::pure(ghzVector(n)));
        const auto gens = stabilizerGenerators(sub);
        ASSERT_TRUE(gens.has_value()) << "GHZ-" << n;
        EXPECT_EQ(int(gens->size()), n);
        for (const PauliString& g : *gens) {
            EXPECT_TRUE(stabilizes(g, ghzVector(n)));
        }
    }
}

TEST(AcompLoweringTest, AffineBasisSetsGetSignedZGenerators)
{
    // {|00>,|11>}: rank-2 affine set stabilized by +ZZ.
    const CVector b00 = CVector::basisState(4, 0);
    const CVector b11 = CVector::basisState(4, 3);
    const auto even = stabilizerGenerators(
        analyzeStateSet(StateSet::approximate({b00, b11})));
    ASSERT_TRUE(even.has_value());
    ASSERT_EQ(even->size(), 1u);
    EXPECT_EQ((*even)[0].phase(), 0);
    for (const CVector& v : {b00, b11}) {
        EXPECT_TRUE(stabilizes((*even)[0], v));
    }

    // {|01>,|10>}: the odd-parity coset needs the -ZZ sign.
    const CVector b01 = CVector::basisState(4, 1);
    const CVector b10 = CVector::basisState(4, 2);
    const auto odd = stabilizerGenerators(
        analyzeStateSet(StateSet::approximate({b01, b10})));
    ASSERT_TRUE(odd.has_value());
    ASSERT_EQ(odd->size(), 1u);
    EXPECT_EQ((*odd)[0].phase(), 2);
    for (const CVector& v : {b01, b10}) {
        EXPECT_TRUE(stabilizes((*odd)[0], v));
    }
}

TEST(AcompLoweringTest, NonStabilizerSubspacesReturnNullopt)
{
    // W-3 is famously not a stabilizer state.
    EXPECT_FALSE(
        stabilizerGenerators(analyzeStateSet(StateSet::pure(wVector(3))))
            .has_value());
    // Rank 3 in 2 qubits: not a power of 2.
    EXPECT_FALSE(stabilizerGenerators(
                     analyzeStateSet(StateSet::approximate(
                         {CVector::basisState(4, 0),
                          CVector::basisState(4, 1),
                          CVector::basisState(4, 2)})))
                     .has_value());
}

TEST(AcompLoweringTest, FullSpaceYieldsEmptyGeneratorList)
{
    const auto gens = stabilizerGenerators(
        analyzeStateSet(StateSet::approximate({CVector::basisState(2, 0),
                                               CVector::basisState(2, 1)})));
    ASSERT_TRUE(gens.has_value());
    EXPECT_TRUE(gens->empty());
}

TEST(AcompLoweringTest, ClusterStateGeneratorsViaConjugation)
{
    // Linear cluster states exercise the Clifford-conjugation path with
    // X-containing generators (K_i = Z X Z).
    const CVector cluster = linearClusterVector(4);
    const auto gens = stabilizerGenerators(
        analyzeStateSet(StateSet::pure(cluster)));
    ASSERT_TRUE(gens.has_value());
    EXPECT_EQ(gens->size(), 4u);
    for (const PauliString& g : *gens) {
        EXPECT_TRUE(stabilizes(g, cluster));
    }
}

TEST(PauliGadgetTest, MeasuresWithoutDisturbingStabilizedStates)
{
    // Bell state, stabilized by +XX and +ZZ: two back-to-back gadgets
    // both read 0, proving the first one restored the state.
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    PauliString xx(2), zz(2);
    xx.setX(0, true);
    xx.setX(1, true);
    zz.setZ(0, true);
    zz.setZ(1, true);
    appendPauliMeasureGadget(qc, xx, {0, 1}, 0);
    appendPauliMeasureGadget(qc, zz, {0, 1}, 1);

    SimOptions options;
    options.shots = 256;
    options.seed = 11;
    const Counts counts = backend::backendFor(BackendKind::kStatevector).runShots(qc, options);
    EXPECT_DOUBLE_EQ(counts.fractionAllZero({0, 1}), 1.0);
}

TEST(PauliGadgetTest, NegativePhaseGeneratorKeepsZeroMeansPass)
{
    // (|01>+|10>)/sqrt2 is stabilized by -ZZ and flagged by +ZZ.
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    qc.x(1);
    PauliString pos(2), neg(2);
    pos.setZ(0, true);
    pos.setZ(1, true);
    neg = pos;
    neg.setPhase(2);
    appendPauliMeasureGadget(qc, neg, {0, 1}, 0);
    appendPauliMeasureGadget(qc, pos, {0, 1}, 1);

    SimOptions options;
    options.shots = 128;
    options.seed = 5;
    const Counts counts = backend::backendFor(BackendKind::kStatevector).runShots(qc, options);
    EXPECT_DOUBLE_EQ(counts.fractionAllZero({0}), 1.0);
    EXPECT_DOUBLE_EQ(counts.fractionAllZero({1}), 0.0);
}

/** Compile the measured GHZ-3 with one end-of-prep site under `req`. */
CompiledProgram
compileGhz3(LoweringRequest req, bool fault = false)
{
    QuantumCircuit qc(3, 3);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(1, 2);
    if (fault) qc.x(1);
    const size_t site_pos = qc.instructions().size();
    for (int q = 0; q < 3; ++q) qc.measure(q, q);
    AcompOptions opts;
    opts.lowering = req;
    return compileAssertions(qc, {ghzSite(3, site_pos)}, opts);
}

TEST(AcompCompilerTest, FormsMatchTheRequestAndBudget)
{
    const CompiledProgram pauli = compileGhz3(LoweringRequest::kPauliMeasure);
    ASSERT_EQ(pauli.slots.size(), 1u);
    EXPECT_EQ(pauli.slots[0].form, LoweringForm::kPauliMeasure);
    EXPECT_TRUE(pauli.slots[0].ancillas.empty());
    EXPECT_EQ(pauli.slots[0].generators, 3);
    EXPECT_EQ(pauli.variants.size(), 1u);
    EXPECT_EQ(pauli.slots[0].clbits.size(), 3u);

    const CompiledProgram swap = compileGhz3(LoweringRequest::kSwap);
    ASSERT_EQ(swap.slots.size(), 1u);
    EXPECT_EQ(swap.slots[0].form, LoweringForm::kSwap);
    EXPECT_FALSE(swap.slots[0].ancillas.empty());
    EXPECT_TRUE(swap.repair_supported);

    const CompiledProgram sample = compileGhz3(LoweringRequest::kPauliSample);
    ASSERT_EQ(sample.slots.size(), 1u);
    EXPECT_EQ(sample.slots[0].form, LoweringForm::kPauliSample);
    EXPECT_EQ(sample.variants.size(), 3u); // one generator per variant
    EXPECT_EQ(sample.slots[0].sub_circuits, 3);
    EXPECT_EQ(sample.slots[0].clbits.size(), 1u);

    // Clifford program + stabilizer-expressible slot: the cost model
    // picks the ancilla-free Pauli form on its own.
    const CompiledProgram autod = compileGhz3(LoweringRequest::kAuto);
    EXPECT_EQ(autod.slots[0].form, LoweringForm::kPauliMeasure);
}

TEST(AcompCompilerTest, CrossFormVerdictsAreChiSquareEquivalent)
{
    // 4096 shots of the clean GHZ-3 under all three forms: every form
    // must accept every shot, and the accepted program histograms must
    // all be consistent with the ideal 50/50 split.
    for (LoweringRequest req :
         {LoweringRequest::kSwap, LoweringRequest::kPauliMeasure,
          LoweringRequest::kPauliSample}) {
        const CompiledProgram compiled = compileGhz3(req);
        SimOptions options;
        options.shots = 4096;
        options.seed = 1234;
        const PolicyOutcome out = runLowered(compiled, options);
        EXPECT_DOUBLE_EQ(out.pass_rate, 1.0)
            << loweringRequestName(req);
        ASSERT_EQ(out.slot_error_rate.size(), 1u);
        EXPECT_DOUBLE_EQ(out.slot_error_rate[0], 0.0);

        const long zeros = out.program_counts.map.count("000")
                               ? out.program_counts.map.at("000")
                               : 0;
        const long ones = out.program_counts.map.count("111")
                              ? out.program_counts.map.at("111")
                              : 0;
        EXPECT_EQ(zeros + ones, out.program_counts.shots)
            << loweringRequestName(req);
        const ChiSquareResult chi =
            chiSquareTest({zeros, ones}, {0.5, 0.5});
        EXPECT_GT(chi.p_value, 1e-4) << loweringRequestName(req);
    }
}

TEST(AcompCompilerTest, EveryFormDetectsAnInjectedPauliFault)
{
    // X on q1 after the prep: orthogonal to GHZ-3, so the full parity
    // check flags deterministically. The sampled form measures one
    // generator per shot, so its rate is k/3 for the k generators the
    // fault anticommutes with — at least one, whatever generator basis
    // the extractor picked.
    SimOptions options;
    options.shots = 1024;
    options.seed = 77;

    const PolicyOutcome pauli = runLowered(
        compileGhz3(LoweringRequest::kPauliMeasure, true), options);
    EXPECT_DOUBLE_EQ(pauli.slot_error_rate[0], 1.0);

    const PolicyOutcome sampled = runLowered(
        compileGhz3(LoweringRequest::kPauliSample, true), options);
    EXPECT_GT(sampled.slot_error_rate[0], 0.25);

    const PolicyOutcome swap = runLowered(
        compileGhz3(LoweringRequest::kSwap, true), options);
    EXPECT_GT(swap.slot_error_rate[0], 0.3);
}

TEST(AcompCompilerTest, MultiVariantRunsAreThreadCountDeterministic)
{
    const CompiledProgram compiled =
        compileGhz3(LoweringRequest::kPauliSample);
    for (BackendRequest backend :
         {BackendRequest::kAuto, BackendRequest::kStatevector}) {
        SimOptions base;
        base.shots = 512;
        base.seed = 4242;
        base.backend = backend;
        base.num_threads = 1;
        const PolicyOutcome one = runLowered(compiled, base);
        for (int threads : {2, 8}) {
            SimOptions options = base;
            options.num_threads = threads;
            const PolicyOutcome many = runLowered(compiled, options);
            EXPECT_EQ(many.raw.map, one.raw.map) << threads;
            EXPECT_EQ(many.program_counts.map, one.program_counts.map);
        }
    }
}

TEST(AcompGeneratorTest, ClassifiesClassicalAndSuperpositionInvariants)
{
    QuantumCircuit qc(3, 3);
    qc.h(0);
    qc.x(1);
    qc.x(2);
    qc.measureAll();
    const std::vector<AssertionSite> sites = generateAssertions(qc);
    ASSERT_EQ(sites.size(), 2u);
    bool saw_classical = false, saw_superposition = false;
    for (const AssertionSite& site : sites) {
        EXPECT_EQ(site.position, 3u); // before the measures
        if (site.invariant == InvariantClass::kClassical) {
            saw_classical = true;
            EXPECT_EQ(site.qubits, (std::vector<int>{1, 2}));
        }
        if (site.invariant == InvariantClass::kSuperposition) {
            saw_superposition = true;
            EXPECT_EQ(site.qubits, (std::vector<int>{0}));
        }
    }
    EXPECT_TRUE(saw_classical);
    EXPECT_TRUE(saw_superposition);
}

TEST(AcompGeneratorTest, NonCliffordPrefixYieldsNoSites)
{
    QuantumCircuit qc(1, 1);
    qc.t(0);
    qc.measure(0, 0);
    EXPECT_TRUE(generateAssertions(qc).empty());

    const CompiledProgram compiled = autoAssert(qc);
    EXPECT_TRUE(compiled.slots.empty());
    ASSERT_EQ(compiled.variants.size(), 1u);
    SimOptions options;
    options.shots = 64;
    options.seed = 1;
    const PolicyOutcome out = runLowered(compiled, options);
    EXPECT_DOUBLE_EQ(out.pass_rate, 1.0);
    EXPECT_EQ(out.shots_completed, 64);
}

TEST(AcompGeneratorTest, CleanGhzPassesAndIdiomCatchesInjectedFault)
{
    SimOptions options;
    options.shots = 512;
    options.seed = 9;

    const PolicyOutcome clean = runLowered(autoAssert(measuredGhz(4)),
                                           options);
    EXPECT_DOUBLE_EQ(clean.pass_rate, 1.0);

    // The injected x q[1] mid-preparation is exactly the fault a pure
    // tableau walk absorbs into its invariant; the GHZ idiom asserts
    // what the *pattern* promises instead and must flag it.
    QuantumCircuit faulty(4, 4);
    faulty.h(0);
    faulty.cx(0, 1);
    faulty.x(1);
    faulty.cx(1, 2);
    faulty.cx(2, 3);
    faulty.measureAll();
    const CompiledProgram compiled = autoAssert(faulty);
    ASSERT_FALSE(compiled.slots.empty());
    const PolicyOutcome out = runLowered(compiled, options);
    EXPECT_LT(out.pass_rate, 0.1);
}

TEST(AcompCompilerTest, UnsupportedAssertionCarriesSourceAnchor)
{
    QuantumCircuit qc = wPrep(3);
    AssertionSite site;
    site.position = qc.instructions().size();
    site.qubits = {0, 1, 2};
    site.set = std::make_shared<StateSet>(StateSet::pure(wVector(3)));
    site.source_line = 42;
    site.source_col = 7;
    AcompOptions opts;
    opts.lowering = LoweringRequest::kPauliMeasure;
    try {
        compileAssertions(qc, {site}, opts);
        FAIL() << "expected kUnsupportedAssertion";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kUnsupportedAssertion);
        const std::string what = err.what();
        EXPECT_NE(what.find("42"), std::string::npos) << what;
        EXPECT_NE(what.find("slot 0"), std::string::npos) << what;
    }
    // kAuto still lowers it — the unitary designs cover dense targets.
    opts.lowering = LoweringRequest::kAuto;
    const CompiledProgram compiled = compileAssertions(qc, {site}, opts);
    ASSERT_EQ(compiled.slots.size(), 1u);
    EXPECT_NE(compiled.slots[0].form, LoweringForm::kPauliMeasure);
    EXPECT_NE(compiled.slots[0].form, LoweringForm::kPauliSample);
}

TEST(AcompServeTest, AutoAssertJobsExecuteAndReportSlots)
{
    serve::JobSpec spec;
    spec.circuit = measuredGhz(3);
    spec.auto_assert = true;
    spec.shots = 256;
    spec.seed = 3;
    const serve::JobResult result = serve::executeJob(spec);
    EXPECT_EQ(result.status, serve::JobStatus::kOk);
    EXPECT_DOUBLE_EQ(result.pass_rate, 1.0);
    ASSERT_FALSE(result.assertions.empty());
    EXPECT_GE(result.assert_variants, 1);

    // The knob must separate cache keys: same circuit, different key.
    serve::JobSpec plain = spec;
    plain.auto_assert = false;
    EXPECT_NE(serve::jobKey(spec).str(), serve::jobKey(plain).str());
}

TEST(AcompServeTest, AutoAssertConflictsAreTypedBadRequests)
{
    serve::JobSpec with_slots;
    with_slots.circuit = measuredGhz(3);
    with_slots.auto_assert = true;
    with_slots.assert_clbits = {{0}};
    try {
        serve::executeJob(with_slots);
        FAIL() << "expected kBadRequest";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
    }
}

TEST(AcompServeTest, WireRoundTripsAutoAssertFields)
{
    const std::string qasm =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n"
        "h q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n"
        "measure q[1] -> c[1];\n";
    const std::string line =
        "{\"op\":\"run\",\"id\":\"j1\",\"qasm\":\"" +
        serve::jsonEscape(qasm) +
        "\",\"shots\":128,\"auto_assert\":true,"
        "\"assert_lowering\":\"pauli\"}";
    const serve::WireRequest request = serve::parseRequest(line);
    EXPECT_TRUE(request.spec.auto_assert);
    EXPECT_EQ(request.spec.assert_lowering,
              LoweringRequest::kPauliMeasure);
    EXPECT_FALSE(request.spec.qasm_positions.empty());

    const serve::JobResult result = serve::executeJob(request.spec);
    const std::string encoded = serve::encodeResult("j1", result);
    EXPECT_NE(encoded.find("\"auto_assert\":{"), std::string::npos);
    EXPECT_NE(encoded.find("\"form\":\"pauli\""), std::string::npos);
    const std::string replayed = serve::encodeReplay("j1", result);
    EXPECT_NE(replayed.find("\"auto_assert\":{"), std::string::npos);

    try {
        serve::parseRequest(
            "{\"op\":\"run\",\"qasm\":\"OPENQASM 2.0;\\nqreg q[1];\\n\","
            "\"assert_lowering\":\"bogus\"}");
        FAIL() << "expected kBadRequest";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
    }
}

} // namespace
} // namespace qa
