/**
 * @file
 * MPS backend tests (DESIGN.md Sec. 16): exact amplitudes of the chain
 * core, SWAP routing of long-range gates, truncation accounting at a
 * binding chi cap, cross-backend chi-square equivalence against the
 * statevector engine (GHZ lines, QFT, shallow QAOA, mid-circuit
 * measure/reset, readout noise), bit-determinism across thread counts,
 * entanglement-aware router arbitration with typed explicit-override
 * rejection, jobKey chi sensitivity, wire explain fields, and the
 * assertion compiler's typed rejection under backend=mps.
 */
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acomp/compiler.hpp"
#include "algos/qft.hpp"
#include "algos/states.hpp"
#include "backend/backend.hpp"
#include "backend/router.hpp"
#include "baselines/chi_square.hpp"
#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "mps/mps_state.hpp"
#include "serve/job.hpp"
#include "sim/statevector.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace
{

using backend::BackendChoice;

/** Non-Clifford Trotterized Ising chain (line topology), measured. */
QuantumCircuit
trotterChain(int n, int layers)
{
    QuantumCircuit qc(n, n);
    for (int q = 0; q < n; ++q) qc.rx(q, 0.30 + 0.01 * q);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q + 1 < n; ++q) {
            qc.cx(q, q + 1);
            qc.rz(q + 1, 0.17);
            qc.cx(q, q + 1);
        }
        for (int q = 0; q < n; ++q) qc.rx(q, 0.21);
    }
    qc.measureAll();
    return qc;
}

/** GHZ line with terminal measurement. */
QuantumCircuit
ghzLine(int n)
{
    QuantumCircuit qc(n, n);
    qc.h(0);
    for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    qc.measureAll();
    return qc;
}

/** Depth-one QAOA on a ring (the wrap edge is long-range on a chain). */
QuantumCircuit
qaoaRing(int n, double gamma, double beta)
{
    QuantumCircuit qc(n, n);
    for (int q = 0; q < n; ++q) qc.h(q);
    for (int q = 0; q < n; ++q) {
        const int a = q;
        const int b = (q + 1) % n;
        qc.cx(a, b);
        qc.rz(b, gamma);
        qc.cx(a, b);
    }
    for (int q = 0; q < n; ++q) qc.rx(q, beta);
    qc.measureAll();
    return qc;
}

/** Rotation/CX brickwork: entanglement genuinely grows to full width. */
QuantumCircuit
brickwork(int n, int depth)
{
    QuantumCircuit qc(n, n);
    for (int d = 0; d < depth; ++d) {
        for (int q = 0; q < n; ++q) {
            qc.ry(q, 0.40 + 0.13 * q + 0.31 * d);
        }
        for (int q = d % 2; q + 1 < n; q += 2) qc.cx(q, q + 1);
    }
    qc.measureAll();
    return qc;
}

/**
 * Exact clbit-string distribution by dense branch enumeration: gates
 * evolve the statevector, measure/reset ops fork on both outcomes with
 * their true probabilities. Tractable for the test widths used here.
 */
void
enumerateBranches(Statevector sv, size_t idx, double weight,
                  std::string clbits, const QuantumCircuit& qc,
                  std::map<std::string, double>* out)
{
    const auto& instrs = qc.instructions();
    while (idx < instrs.size()) {
        const Instruction& instr = instrs[idx];
        if (instr.type == OpType::kMeasure ||
            instr.type == OpType::kReset) {
            const int q = instr.qubits[0];
            const double p1 = sv.probabilityOne(q);
            for (int outcome = 0; outcome < 2; ++outcome) {
                const double p = outcome ? p1 : 1.0 - p1;
                if (p < 1e-12) continue;
                Statevector branch = sv;
                branch.collapse(q, outcome);
                std::string cl = clbits;
                if (instr.type == OpType::kMeasure) {
                    cl[size_t(instr.cbit)] = char('0' + outcome);
                } else if (outcome == 1) {
                    branch.applyMatrix(gates::x(), {q});
                }
                enumerateBranches(std::move(branch), idx + 1,
                                  weight * p, cl, qc, out);
            }
            return;
        }
        if (instr.isGate()) sv.applyGate(instr);
        ++idx;
    }
    (*out)[clbits] += weight;
}

/** Exact outcome distribution, optionally folded through readout error. */
std::map<std::string, double>
exactClbitDistribution(const QuantumCircuit& qc, double p01 = 0.0,
                  double p10 = 0.0)
{
    std::map<std::string, double> ideal;
    enumerateBranches(Statevector(qc.numQubits()), 0, 1.0,
                      std::string(size_t(qc.numClbits()), '0'), qc,
                      &ideal);
    if (p01 <= 0.0 && p10 <= 0.0) return ideal;
    std::vector<int> measured;
    for (const Instruction& instr : qc.instructions()) {
        if (instr.type == OpType::kMeasure) {
            measured.push_back(instr.cbit);
        }
    }
    for (const int c : measured) {
        std::map<std::string, double> next;
        for (const auto& [bits, p] : ideal) {
            const bool one = bits[size_t(c)] == '1';
            const double pflip = one ? p10 : p01;
            std::string flipped = bits;
            flipped[size_t(c)] = one ? '0' : '1';
            next[bits] += p * (1.0 - pflip);
            if (pflip > 0.0) next[flipped] += p * pflip;
        }
        ideal = std::move(next);
    }
    return ideal;
}

/** One-sample chi-square of observed counts against exact probabilities. */
void
expectMatchesExact(const Counts& observed,
                   const std::map<std::string, double>& probs)
{
    std::vector<long> obs;
    std::vector<double> expected;
    for (const auto& [bits, p] : probs) {
        const auto o = observed.map.find(bits);
        obs.push_back(o == observed.map.end() ? 0 : long(o->second));
        expected.push_back(p);
    }
    for (const auto& [bits, n] : observed.map) {
        if (probs.find(bits) == probs.end()) {
            obs.push_back(long(n));
            expected.push_back(0.0); // impossible cell: rejects strongly
        }
    }
    const ChiSquareResult chi = chiSquareTest(obs, expected);
    EXPECT_GT(chi.p_value, 1e-4)
        << "distribution off exact: chi2=" << chi.statistic
        << " dof=" << chi.dof;
}

Counts
runOn(BackendKind kind, const QuantumCircuit& qc, const NoiseModel* noise,
      int shots = 4096, int threads = 1)
{
    SimOptions options;
    options.shots = shots;
    options.seed = 321;
    options.noise = noise;
    options.num_threads = threads;
    return backend::backendFor(kind).runShots(qc, options);
}

// ---------------------------------------------------------------------
// MpsState core

TEST(MpsStateTest, GhzAmplitudesExact)
{
    mps::MpsState state(3, 8);
    state.apply1q(gates::h(), 0);
    state.apply2q(gates::cx(), 0, 1);
    state.apply2q(gates::cx(), 1, 2);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(state.amplitude("000")), inv_sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(state.amplitude("111")), inv_sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(state.amplitude("010")), 0.0, 1e-12);
    EXPECT_EQ(state.stats().discarded_weight, 0.0);
}

TEST(MpsStateTest, LongRangeGateIsSwapRouted)
{
    mps::MpsState state(4, 8);
    state.apply1q(gates::h(), 0);
    state.apply2q(gates::cx(), 0, 3); // routed through sites 1 and 2
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(state.amplitude("0000")), inv_sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(state.amplitude("1001")), inv_sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(state.amplitude("1000")), 0.0, 1e-12);
    // Routing must not permute the qubit -> site map: qubit 3, not 1.
    EXPECT_NEAR(std::abs(state.amplitude("1100")), 0.0, 1e-12);
    EXPECT_GT(state.stats().two_site_updates, 1u);
}

TEST(MpsStateTest, ReversedQubitOrderMatchesConvention)
{
    // cx with control = higher-index qubit: matrix qubits[0] is the MSB.
    mps::MpsState state(2, 4);
    state.apply1q(gates::h(), 1);
    state.apply2q(gates::cx(), 1, 0);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(state.amplitude("00")), inv_sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(state.amplitude("11")), inv_sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(state.amplitude("01")), 0.0, 1e-12);
}

TEST(MpsStateTest, MeasureCollapseProjectsAndRenormalizes)
{
    mps::MpsState state(2, 4);
    state.apply1q(gates::h(), 0);
    state.apply2q(gates::cx(), 0, 1);
    Rng rng = Rng::forStream(7, 0);
    const int outcome = state.measureCollapse(0, rng);
    ASSERT_TRUE(outcome == 0 || outcome == 1);
    const std::string expect = outcome == 0 ? "00" : "11";
    EXPECT_NEAR(std::abs(state.amplitude(expect)), 1.0, 1e-10);
}

TEST(MpsStateTest, BindingChiCapTracksDiscardedWeight)
{
    mps::MpsState exact(6, 64);
    mps::MpsState capped(6, 2);
    auto drive = [](mps::MpsState& s) {
        for (int d = 0; d < 6; ++d) {
            for (int q = 0; q < 6; ++q) {
                s.apply1q(gates::ry(0.40 + 0.13 * q + 0.31 * d), q);
            }
            for (int q = d % 2; q + 1 < 6; q += 2) {
                s.apply2q(gates::cx(), q, q + 1);
            }
        }
    };
    drive(exact);
    drive(capped);
    EXPECT_EQ(exact.stats().discarded_weight, 0.0);
    EXPECT_GT(capped.stats().discarded_weight, 0.0);
    EXPECT_LE(capped.stats().max_bond, 2);
    EXPECT_GT(exact.stats().max_bond, 2);
}

// ---------------------------------------------------------------------
// Cross-backend distributional equivalence

TEST(MpsBackendTest, GhzLineMatchesStatevector)
{
    const QuantumCircuit qc = ghzLine(8);
    const auto exact = exactClbitDistribution(qc);
    expectMatchesExact(runOn(BackendKind::kMps, qc, nullptr), exact);
    expectMatchesExact(runOn(BackendKind::kStatevector, qc, nullptr),
                       exact);
}

TEST(MpsBackendTest, QftMatchesStatevector)
{
    QuantumCircuit qc(8, 8);
    qc.x(0);
    qc.x(2);
    qc.h(5);
    std::vector<int> qubits;
    for (int q = 0; q < 8; ++q) qubits.push_back(q);
    algos::appendQft(qc, qubits);
    qc.measureAll();
    const auto exact = exactClbitDistribution(qc);
    expectMatchesExact(runOn(BackendKind::kMps, qc, nullptr), exact);
    expectMatchesExact(runOn(BackendKind::kStatevector, qc, nullptr),
                       exact);
}

TEST(MpsBackendTest, ShallowQaoaMatchesStatevector)
{
    const QuantumCircuit qc = qaoaRing(10, 0.6, 0.4);
    const auto exact = exactClbitDistribution(qc);
    expectMatchesExact(runOn(BackendKind::kMps, qc, nullptr), exact);
    expectMatchesExact(runOn(BackendKind::kStatevector, qc, nullptr),
                       exact);
}

TEST(MpsBackendTest, MidCircuitMeasureResetMatchesStatevector)
{
    QuantumCircuit qc(5, 5);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(1, 2);
    qc.measure(1, 1); // mid-circuit: later gates depend on collapse
    qc.reset(1);
    qc.h(1);
    qc.t(2);
    qc.cx(2, 3);
    qc.cx(3, 4);
    qc.measure(0, 0);
    qc.measure(2, 2);
    qc.measure(3, 3);
    qc.measure(4, 4);
    const auto exact = exactClbitDistribution(qc);
    expectMatchesExact(runOn(BackendKind::kMps, qc, nullptr), exact);
    expectMatchesExact(runOn(BackendKind::kStatevector, qc, nullptr),
                       exact);
}

TEST(MpsBackendTest, ReadoutNoiseMatchesStatevector)
{
    NoiseModel noise;
    noise.readout_p01 = 0.02;
    noise.readout_p10 = 0.05;
    const QuantumCircuit qc = ghzLine(6);
    const auto exact = exactClbitDistribution(qc, noise.readout_p01,
                                         noise.readout_p10);
    expectMatchesExact(runOn(BackendKind::kMps, qc, &noise), exact);
    expectMatchesExact(runOn(BackendKind::kStatevector, qc, &noise),
                       exact);
}

TEST(MpsBackendTest, LongRangeGatesMatchStatevector)
{
    QuantumCircuit qc(8, 8);
    qc.h(0);
    qc.cx(0, 7);
    qc.cp(1, 6, 0.7);
    qc.h(1);
    qc.cx(1, 4);
    qc.t(2);
    qc.cx(5, 2); // control above target
    qc.measureAll();
    const auto exact = exactClbitDistribution(qc);
    expectMatchesExact(runOn(BackendKind::kMps, qc, nullptr), exact);
    expectMatchesExact(runOn(BackendKind::kStatevector, qc, nullptr),
                       exact);
}

TEST(MpsBackendTest, BitIdenticalAcrossThreadCounts)
{
    const QuantumCircuit qc = qaoaRing(9, 0.5, 0.3);
    const Counts one = runOn(BackendKind::kMps, qc, nullptr, 4096, 1);
    const Counts two = runOn(BackendKind::kMps, qc, nullptr, 4096, 2);
    const Counts eight = runOn(BackendKind::kMps, qc, nullptr, 4096, 8);
    EXPECT_EQ(one.map, two.map);
    EXPECT_EQ(one.map, eight.map);
}

TEST(MpsBackendTest, MidCircuitBitIdenticalAcrossThreadCounts)
{
    QuantumCircuit qc(4, 4);
    qc.h(0);
    qc.cx(0, 1);
    qc.measure(0, 0);
    qc.reset(0);
    qc.t(1);
    qc.cx(1, 2);
    qc.cx(2, 3);
    qc.measure(1, 1);
    qc.measure(2, 2);
    qc.measure(3, 3);
    const Counts one = runOn(BackendKind::kMps, qc, nullptr, 2048, 1);
    const Counts eight = runOn(BackendKind::kMps, qc, nullptr, 2048, 8);
    EXPECT_EQ(one.map, eight.map);
}

TEST(MpsBackendTest, KrausNoiseRejectedAtPrepare)
{
    const NoiseModel noise = NoiseModel::depolarizing(1e-3, 1e-2);
    SimOptions options;
    options.shots = 16;
    options.noise = &noise;
    try {
        backend::backendFor(BackendKind::kMps)
            .prepare(ghzLine(3), options);
        FAIL() << "expected kBadRequest";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
    }
}

TEST(MpsBackendTest, TruncationErrorSurfacedByPreparedCircuit)
{
    SimOptions options;
    options.shots = 512;
    options.seed = 9;
    options.backend = BackendRequest::kMps;
    options.mps_chi = 2;
    options.mps_trunc_tol = 1.0; // opt in to lossy compression
    const QuantumCircuit qc = brickwork(6, 6);
    const backend::RoutedRun run = backend::prepareRun(qc, options);
    EXPECT_EQ(run.choice.backend, BackendKind::kMps);
    EXPECT_GT(run.prepared->truncationError(), 0.0);
    const Counts counts = backend::runPrepared(*run.prepared, options);
    EXPECT_EQ(counts.shots, 512);
}

// ---------------------------------------------------------------------
// Router arbitration

TEST(RouterMpsTest, WideTrotterChainAutoRoutesToMps)
{
    SimOptions options;
    options.shots = 4096;
    const QuantumCircuit qc = trotterChain(32, 2);
    const BackendChoice choice = backend::routeShots(qc, options);
    EXPECT_EQ(choice.backend, BackendKind::kMps);
    EXPECT_FALSE(choice.explicit_request);
    EXPECT_TRUE(choice.capable);
    EXPECT_GE(choice.mps_chi, 2);
    EXPECT_GT(choice.mps_ent_width, 0);
    EXPECT_EQ(choice.mps_trunc_bound, 0.0);
    EXPECT_NE(choice.reason.find("MPS"), std::string::npos)
        << choice.reason;
}

TEST(RouterMpsTest, WideTrotterChainExecutesExactly)
{
    // 32 qubits is far beyond the dense engines; the chain runs it and
    // a product of the per-qubit marginals sanity-checks nothing NaN'd.
    SimOptions options;
    options.shots = 256;
    options.seed = 5;
    options.num_threads = 2;
    const QuantumCircuit qc = trotterChain(32, 2);
    const Counts counts = runShots(qc, options);
    EXPECT_EQ(counts.shots, 256);
    for (const auto& [bits, n] : counts.map) {
        EXPECT_EQ(bits.size(), 32u);
    }
}

TEST(RouterMpsTest, NarrowCircuitsKeepTheirBackends)
{
    SimOptions options;
    options.shots = 4096;
    // QFT-8: dense SIMD wins below the width floor.
    QuantumCircuit qft_qc(8, 8);
    std::vector<int> qubits;
    for (int q = 0; q < 8; ++q) qubits.push_back(q);
    algos::appendQft(qft_qc, qubits);
    qft_qc.measureAll();
    EXPECT_EQ(backend::routeShots(qft_qc, options).backend,
              BackendKind::kStatevector);
    // GHZ-30: Clifford, the tableau beats any chi.
    EXPECT_EQ(backend::routeShots(ghzLine(30), options).backend,
              BackendKind::kStabilizer);
}

TEST(RouterMpsTest, ChoiceAlwaysCarriesMpsFacts)
{
    SimOptions options;
    options.shots = 128;
    const BackendChoice choice =
        backend::routeShots(brickwork(6, 4), options);
    EXPECT_NE(choice.backend, BackendKind::kMps);
    EXPECT_GE(choice.mps_chi, 1);
    EXPECT_GT(choice.mps_ent_width, 0);
    EXPECT_GE(choice.mps_trunc_bound, 0.0);
}

TEST(RouterMpsTest, ExplicitMpsOverTruncationToleranceIsTypedError)
{
    // Dense brickwork needs chi ~ 2^6; chi=2 at the default tolerance
    // must be a typed capability error, not a silent fallback.
    SimOptions options;
    options.shots = 128;
    options.backend = BackendRequest::kMps;
    options.mps_chi = 2;
    const QuantumCircuit qc = brickwork(12, 12);
    const BackendChoice choice = backend::routeShots(qc, options);
    EXPECT_EQ(choice.backend, BackendKind::kMps);
    EXPECT_TRUE(choice.explicit_request);
    EXPECT_FALSE(choice.capable);
    EXPECT_NE(choice.reason.find("mps_tol"), std::string::npos)
        << choice.reason;
    try {
        backend::prepareRun(qc, options);
        FAIL() << "expected kBadRequest";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
        EXPECT_NE(std::string(err.what()).find("truncation"),
                  std::string::npos)
            << err.what();
    }
}

TEST(RouterMpsTest, ExplicitMpsWideGateIsTypedError)
{
    SimOptions options;
    options.shots = 16;
    options.backend = BackendRequest::kMps;
    QuantumCircuit qc(5, 5);
    qc.unitary(CMatrix::identity(16), {0, 1, 2, 3});
    qc.measureAll();
    const BackendChoice choice = backend::routeShots(qc, options);
    EXPECT_FALSE(choice.capable);
    EXPECT_NE(choice.reason.find("mps"), std::string::npos)
        << choice.reason;
}

TEST(RouterMpsTest, ExplainRoutingReportsEntanglementLine)
{
    SimOptions options;
    options.shots = 4096;
    const std::string report =
        backend::explainRouting(trotterChain(32, 2), options);
    EXPECT_NE(report.find("entanglement:"), std::string::npos) << report;
    EXPECT_NE(report.find("effective chi"), std::string::npos) << report;
    EXPECT_NE(report.find("mps="), std::string::npos) << report;
}

// ---------------------------------------------------------------------
// Serve-layer integration

TEST(MpsServeTest, JobKeyAbsorbsChiOnlyWhenMpsRouted)
{
    serve::JobSpec mps_spec;
    mps_spec.circuit = trotterChain(26, 2);
    mps_spec.shots = 64;
    mps_spec.seed = 1;
    const Hash128 base = serve::jobKey(mps_spec);
    mps_spec.mps_chi = 128;
    EXPECT_NE(serve::jobKey(mps_spec), base);

    serve::JobSpec sv_spec;
    sv_spec.circuit = brickwork(5, 3);
    sv_spec.shots = 64;
    sv_spec.seed = 1;
    const Hash128 sv_base = serve::jobKey(sv_spec);
    sv_spec.mps_chi = 128;
    EXPECT_EQ(serve::jobKey(sv_spec), sv_base);
}

TEST(MpsServeTest, ExplainLineCarriesMpsBlock)
{
    SimOptions options;
    options.shots = 4096;
    const BackendChoice choice =
        backend::routeShots(trotterChain(26, 2), options);
    const std::string line = serve::encodeExplain("req-1", choice);
    EXPECT_NE(line.find("\"backend\":\"mps\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"mps\":{\"chi\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"ent_width\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"trunc_bound\":"), std::string::npos) << line;
}

TEST(MpsServeTest, MpsJobExecutesThroughExecuteJob)
{
    serve::JobSpec spec;
    spec.circuit = trotterChain(26, 1);
    spec.shots = 128;
    spec.seed = 11;
    spec.backend = BackendRequest::kMps;
    const serve::JobResult result = serve::executeJob(spec);
    EXPECT_EQ(result.status, serve::JobStatus::kOk);
    EXPECT_EQ(result.backend.backend, BackendKind::kMps);
    EXPECT_EQ(result.counts.shots, 128);
    EXPECT_GE(result.mps_truncation_error, 0.0);
}

// ---------------------------------------------------------------------
// Assertion compiler under backend=mps

TEST(AcompMpsTest, PinnedPauliFormOnDenseTargetIsTypedRejection)
{
    QuantumCircuit qc = algos::wPrep(3);
    acomp::AssertionSite site;
    site.position = qc.instructions().size();
    site.qubits = {0, 1, 2};
    site.set =
        std::make_shared<StateSet>(StateSet::pure(algos::wVector(3)));
    acomp::AcompOptions opts;
    opts.backend = BackendRequest::kMps;
    opts.lowering = acomp::LoweringRequest::kPauliMeasure;
    try {
        acomp::compileAssertions(qc, {site}, opts);
        FAIL() << "expected kUnsupportedAssertion";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kUnsupportedAssertion);
    }
    // kAuto under the same backend still finds a unitary form whose
    // lowered fragment fits the chain's arity-3 gadget limit.
    opts.lowering = acomp::LoweringRequest::kAuto;
    const acomp::CompiledProgram compiled =
        acomp::compileAssertions(qc, {site}, opts);
    ASSERT_EQ(compiled.slots.size(), 1u);
    for (const acomp::SlotSummary& slot : compiled.slots) {
        EXPECT_NE(slot.form, acomp::LoweringForm::kPauliMeasure);
        EXPECT_NE(slot.form, acomp::LoweringForm::kPauliSample);
    }
}

} // namespace
} // namespace qa
