/**
 * @file
 * Tests for the assertion recovery policies (abort / discard / retry /
 * repair), their determinism across thread counts, and deadline-based
 * truncation of policy runs.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "common/error.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"

namespace qa
{
namespace
{

using namespace algos;

/** |1> program asserting |0> with SWAP: every shot flags, and the slot
 *  re-prepares |0> on the program qubit. */
AssertedProgram
alwaysFailingSwapProgram()
{
    AssertedProgram prog(prepareState(CVector::basisState(2, 1)));
    prog.assertState({0}, StateSet::pure(CVector::basisState(2, 0)),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    return prog;
}

/** |+> program asserting |0> with NDD: each attempt flags w.p. 1/2. */
AssertedProgram
coinFlipNddProgram()
{
    QuantumCircuit qc(1);
    qc.h(0);
    AssertedProgram prog(qc);
    prog.assertState({0}, StateSet::pure(CVector::basisState(2, 0)),
                     AssertionDesign::kNdd);
    prog.measureProgram();
    return prog;
}

TEST(PolicyTest, PolicyNamesAreStable)
{
    EXPECT_STREQ(policyName(AssertionPolicy::kAbort), "abort");
    EXPECT_STREQ(policyName(AssertionPolicy::kDiscard), "discard");
    EXPECT_STREQ(policyName(AssertionPolicy::kRetry), "retry");
    EXPECT_STREQ(policyName(AssertionPolicy::kRepair), "repair");
}

TEST(PolicyTest, DiscardMatchesPostSelection)
{
    // kDiscard uses the same per-shot RNG streams as the plain runner,
    // so its accepted histogram equals the post-selected histogram.
    const AssertedProgram prog = coinFlipNddProgram();
    SimOptions options;
    options.shots = 400;
    options.seed = 99;

    const AssertionOutcome plain = runAsserted(prog, options);
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kDiscard;
    const PolicyOutcome out = runAssertedPolicy(prog, options, popts);

    EXPECT_EQ(out.program_counts.map, plain.program_counts_passed.map);
    EXPECT_EQ(out.shots_completed, options.shots);
    EXPECT_EQ(out.shots_accepted, plain.program_counts_passed.shots);
    EXPECT_EQ(out.retries, 0);
    EXPECT_EQ(out.repaired, 0);
    EXPECT_FALSE(out.truncated);
    ASSERT_EQ(out.slot_error_rate.size(), 1u);
    EXPECT_NEAR(out.slot_error_rate[0], plain.slot_error_rate[0], 1e-12);
}

TEST(PolicyTest, RetryIsBoundedAndAcceptsEventualPasses)
{
    const AssertedProgram prog = coinFlipNddProgram();
    SimOptions options;
    options.shots = 2000;
    options.seed = 4242;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kRetry;
    popts.max_attempts = 3;
    const PolicyOutcome out = runAssertedPolicy(prog, options, popts);

    EXPECT_EQ(out.shots_completed, options.shots);
    EXPECT_EQ(out.shots_accepted + out.exhausted, options.shots);
    // First attempts flag w.p. 1/2; exhaustion needs three flags in a
    // row: mean 1/8 of shots, generous 5-sigma band.
    EXPECT_NEAR(out.slot_error_rate[0], 0.5, 0.06);
    EXPECT_NEAR(double(out.exhausted) / options.shots, 0.125, 0.04);
    EXPECT_GT(out.retries, 0);
    // Every retry follows a flagged attempt that wasn't the last.
    EXPECT_LE(out.retries, 2 * options.shots);
    // Accepted shots passed the |0> assertion, so the program qubit
    // (collapsed by the NDD slot) always reads 0.
    EXPECT_EQ(int(out.program_counts.map.at("0")), out.shots_accepted);
    EXPECT_EQ(out.program_counts.shots, out.shots_accepted);
}

TEST(PolicyTest, RepairKeepsFlaggedShotsWithRestoredState)
{
    const AssertedProgram prog = alwaysFailingSwapProgram();
    SimOptions options;
    options.shots = 300;
    options.seed = 7;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kRepair;
    const PolicyOutcome out = runAssertedPolicy(prog, options, popts);

    EXPECT_EQ(out.shots_completed, options.shots);
    EXPECT_EQ(out.shots_accepted, options.shots);
    EXPECT_EQ(out.repaired, options.shots);
    EXPECT_NEAR(out.slot_error_rate[0], 1.0, 1e-12);
    EXPECT_NEAR(out.pass_rate, 0.0, 1e-12);
    // The SWAP slot re-prepared |0> on the program qubit, so the kept
    // (repaired) shots all read 0 despite every slot flagging.
    EXPECT_EQ(int(out.program_counts.map.at("0")), options.shots);
}

TEST(PolicyTest, RepairRequiresSwapDesign)
{
    QuantumCircuit qc(1);
    qc.h(0);
    AssertedProgram prog(qc);
    prog.assertState({0}, StateSet::pure(CVector::basisState(2, 0)),
                     AssertionDesign::kNdd);
    prog.measureProgram();
    SimOptions options;
    options.shots = 10;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kRepair;
    try {
        runAssertedPolicy(prog, options, popts);
        FAIL() << "expected kPolicyUnsupported";
    } catch (const UserError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kPolicyUnsupported);
        EXPECT_NE(std::string(e.what()).find("repair"),
                  std::string::npos);
    }
}

TEST(PolicyTest, AbortStopsAtFirstFlaggedShot)
{
    const AssertedProgram prog = alwaysFailingSwapProgram();
    SimOptions options;
    options.shots = 500;
    options.seed = 5;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kAbort;
    const PolicyOutcome out = runAssertedPolicy(prog, options, popts);

    EXPECT_TRUE(out.aborted);
    EXPECT_EQ(out.abort_shot, 0);
    EXPECT_EQ(out.shots_completed, 1);
    EXPECT_EQ(out.shots_accepted, 0);
    EXPECT_EQ(out.program_counts.shots, 0);
}

TEST(PolicyTest, AbortCompletesCleanRuns)
{
    // GHZ asserting its own state with SWAP never flags: the abort
    // policy runs to completion and keeps every shot.
    AssertedProgram prog(ghzPrep(3));
    prog.assertState({0, 1, 2}, StateSet::pure(ghzVector(3)),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    SimOptions options;
    options.shots = 100;
    options.seed = 11;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kAbort;
    const PolicyOutcome out = runAssertedPolicy(prog, options, popts);

    EXPECT_FALSE(out.aborted);
    EXPECT_EQ(out.abort_shot, -1);
    EXPECT_EQ(out.shots_completed, options.shots);
    EXPECT_EQ(out.shots_accepted, options.shots);
    EXPECT_NEAR(out.pass_rate, 1.0, 1e-12);
}

TEST(PolicyTest, PolicyRunsAreThreadCountInvariant)
{
    const AssertedProgram prog = coinFlipNddProgram();
    SimOptions options;
    options.shots = 1000;
    options.seed = 1234;

    for (AssertionPolicy policy :
         {AssertionPolicy::kDiscard, AssertionPolicy::kRetry}) {
        PolicyOptions popts;
        popts.policy = policy;
        popts.max_attempts = 3;

        options.num_threads = 1;
        const PolicyOutcome serial =
            runAssertedPolicy(prog, options, popts);
        options.num_threads = 4;
        const PolicyOutcome four = runAssertedPolicy(prog, options, popts);
        options.num_threads = 0;
        const PolicyOutcome hw = runAssertedPolicy(prog, options, popts);

        for (const PolicyOutcome* other : {&four, &hw}) {
            EXPECT_EQ(serial.raw.map, other->raw.map);
            EXPECT_EQ(serial.program_counts.map,
                      other->program_counts.map);
            EXPECT_EQ(serial.slot_error_rate, other->slot_error_rate);
            EXPECT_EQ(serial.shots_accepted, other->shots_accepted);
            EXPECT_EQ(serial.retries, other->retries);
            EXPECT_EQ(serial.exhausted, other->exhausted);
            EXPECT_EQ(serial.pass_rate, other->pass_rate);
        }
    }
}

TEST(PolicyTest, ExpiredDeadlineTruncatesWithoutAborting)
{
    // A deadline that expires immediately: the run returns partial (here
    // empty-to-partial) counts flagged truncated, with all workers
    // joined, instead of throwing or running every shot.
    AssertedProgram prog(ghzPrep(8));
    prog.assertState({0, 1, 2, 3, 4, 5, 6, 7},
                     StateSet::pure(ghzVector(8)),
                     AssertionDesign::kSwap);
    prog.measureProgram();
    SimOptions options;
    options.shots = 200000;
    options.seed = 3;
    options.num_threads = 2;
    options.deadline_ms = 1e-6;
    PolicyOptions popts;
    popts.policy = AssertionPolicy::kDiscard;
    const PolicyOutcome out = runAssertedPolicy(prog, options, popts);

    EXPECT_TRUE(out.truncated);
    EXPECT_LT(out.shots_completed, options.shots);
    EXPECT_FALSE(out.aborted);
    EXPECT_EQ(out.program_counts.shots, out.shots_accepted);
    EXPECT_TRUE(out.program_counts.truncated);
    // The histogram is a valid sample of whatever completed.
    int total = 0;
    for (const auto& [bits, n] : out.program_counts.map) total += n;
    EXPECT_EQ(total, out.shots_accepted);
}

TEST(PolicyTest, InvalidPolicyOptionsAreRejected)
{
    const AssertedProgram prog = coinFlipNddProgram();
    SimOptions options;
    options.shots = 0;
    EXPECT_THROW(runAssertedPolicy(prog, options, PolicyOptions{}),
                 UserError);
    options.shots = 10;
    PolicyOptions popts;
    popts.max_attempts = 0;
    EXPECT_THROW(runAssertedPolicy(prog, options, popts), UserError);
}

} // namespace
} // namespace qa
