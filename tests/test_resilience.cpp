/**
 * @file
 * Tests for the resilience layer (src/resilience) and its integration
 * into the assertion service: retry policy determinism, the circuit
 * breaker state machine (driven by a ManualClock, no real sleeps), the
 * crash-safe journal and its torn-tail scanner, the deterministic chaos
 * plans, worker supervision (heartbeats, watchdog, respawn), and the
 * malformed-input corpus for the wire protocol.
 *
 * The chaos suite runs under TSAN and ASan in tier1: the invariants it
 * enforces are "the service never crashes, never loses an acknowledged
 * job, and keeps results bit-identical through every recovery path".
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "resilience/breaker.hpp"
#include "resilience/chaos.hpp"
#include "resilience/journal.hpp"
#include "resilience/netfault.hpp"
#include "resilience/retry.hpp"
#include "resilience/supervisor.hpp"
#include "serve/job.hpp"
#include "serve/json.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace resilience
{
namespace
{

using serve::executeJob;
using serve::JobResult;
using serve::JobSpec;
using serve::JobStatus;
using serve::Scheduler;
using serve::SchedulerOptions;

/** A small stochastic job: H on each qubit, slot over clbit 0. */
JobSpec
coinSpec(uint64_t seed, int shots = 256)
{
    JobSpec spec;
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.h(1);
    qc.measure(0, 0);
    qc.measure(1, 1);
    spec.circuit = qc;
    spec.assert_clbits = {{0}};
    spec.shots = shots;
    spec.seed = seed;
    return spec;
}

/** Bit-exact equality of two job results (modulo timing fields). */
void
expectResultsIdentical(const JobResult& a, const JobResult& b)
{
    EXPECT_EQ(int(a.status), int(b.status));
    EXPECT_EQ(a.counts.map, b.counts.map);
    EXPECT_EQ(a.counts.shots, b.counts.shots);
    EXPECT_EQ(a.program_counts.map, b.program_counts.map);
    EXPECT_EQ(a.program_counts.shots, b.program_counts.shots);
    EXPECT_EQ(a.slot_error_rate, b.slot_error_rate);
    EXPECT_EQ(a.pass_rate, b.pass_rate);
    EXPECT_EQ(a.truncated, b.truncated);
}

std::string
tempPath(const std::string& name)
{
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

TEST(RetryTest, TransientClassification)
{
    EXPECT_TRUE(isTransientError(ErrorCode::kGeneric));
    EXPECT_TRUE(isTransientError(ErrorCode::kWorkerLost));
    EXPECT_TRUE(isTransientError(ErrorCode::kWorkerFailure));

    EXPECT_FALSE(isTransientError(ErrorCode::kBadRequest));
    EXPECT_FALSE(isTransientError(ErrorCode::kQueueFull));
    EXPECT_FALSE(isTransientError(ErrorCode::kShedding));
    EXPECT_FALSE(isTransientError(ErrorCode::kPolicyUnsupported));
    EXPECT_FALSE(isTransientError(ErrorCode::kQasmSyntax));
}

TEST(RetryTest, BackoffIsDeterministicJitteredExponential)
{
    RetryOptions options;
    options.base_backoff_ms = 2.0;
    options.max_backoff_ms = 50.0;

    // Counter-based: same (seed, seq, retry) always yields the same
    // delay; different jobs decorrelate.
    EXPECT_DOUBLE_EQ(retryBackoffMs(options, 7, 1),
                     retryBackoffMs(options, 7, 1));
    EXPECT_NE(retryBackoffMs(options, 7, 1), retryBackoffMs(options, 8, 1));

    for (uint64_t seq = 0; seq < 32; ++seq) {
        double previous_cap = 0.0;
        for (int retry = 1; retry <= 8; ++retry) {
            const double backoff = retryBackoffMs(options, seq, retry);
            const double cap =
                std::min(options.base_backoff_ms * double(1 << (retry - 1)),
                         options.max_backoff_ms);
            // Jitter keeps each delay in [cap/2, cap).
            EXPECT_GE(backoff, cap * 0.5);
            EXPECT_LT(backoff, cap);
            EXPECT_GE(cap, previous_cap); // monotone growth until the cap
            previous_cap = cap;
        }
    }
}

TEST(RetryTest, DecideRetryRespectsAttemptAndDeadlineBudgets)
{
    RetryOptions options;
    options.max_attempts = 3;
    options.base_backoff_ms = 4.0;

    // Transient + attempts left + no deadline: retry.
    EXPECT_TRUE(
        decideRetry(options, 0, 0, ErrorCode::kGeneric, 0.0, 0.0).retry);
    EXPECT_TRUE(
        decideRetry(options, 0, 1, ErrorCode::kWorkerLost, 0.0, 0.0).retry);

    // Attempt budget exhausted (failed_attempt is 0-based).
    EXPECT_FALSE(
        decideRetry(options, 0, 2, ErrorCode::kGeneric, 0.0, 0.0).retry);

    // Permanent errors never retry.
    EXPECT_FALSE(
        decideRetry(options, 0, 0, ErrorCode::kBadRequest, 0.0, 0.0).retry);

    // Deadline budget: the backoff must fit in what remains.
    const double backoff = retryBackoffMs(options, 0, 1);
    EXPECT_TRUE(decideRetry(options, 0, 0, ErrorCode::kGeneric,
                            backoff + 1.0, 0.0)
                    .retry);
    EXPECT_FALSE(decideRetry(options, 0, 0, ErrorCode::kGeneric,
                             backoff + 1.0, 2.0)
                     .retry);

    const RetryDecision decision =
        decideRetry(options, 0, 0, ErrorCode::kGeneric, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(decision.backoff_ms, backoff);
}

// ---------------------------------------------------------------------
// Circuit breaker (ManualClock; no real sleeps)
// ---------------------------------------------------------------------

BreakerOptions
smallBreaker()
{
    BreakerOptions options;
    options.enabled = true;
    options.window = 8;
    options.min_samples = 4;
    options.failure_threshold = 0.5;
    options.open_cooldown_ms = 100.0;
    options.half_open_probes = 1;
    return options;
}

TEST(BreakerTest, DisabledBreakerAdmitsEverything)
{
    CircuitBreaker breaker; // default: disabled
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(breaker.tryAdmit());
        breaker.recordFailure();
    }
    EXPECT_EQ(breaker.stats().shed, 0u);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(BreakerTest, TripsOnFailureRateOnlyAfterMinSamples)
{
    ManualClock clock;
    CircuitBreaker breaker(smallBreaker(), &clock);

    // Three straight failures: 100% failure rate but under min_samples.
    for (int i = 0; i < 3; ++i) breaker.recordFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

    breaker.recordFailure(); // 4th sample crosses min_samples
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.stats().opens, 1u);
}

TEST(BreakerTest, OpenShedsUntilCooldownThenProbes)
{
    ManualClock clock;
    CircuitBreaker breaker(smallBreaker(), &clock);
    for (int i = 0; i < 4; ++i) breaker.recordFailure();
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    EXPECT_FALSE(breaker.tryAdmit());
    EXPECT_FALSE(breaker.tryAdmit());
    EXPECT_EQ(breaker.stats().shed, 2u);

    clock.advanceMs(101.0);
    EXPECT_TRUE(breaker.tryAdmit()); // the half-open probe
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_FALSE(breaker.tryAdmit()); // only one probe allowed
}

TEST(BreakerTest, ProbeSuccessClosesAndResetsWindow)
{
    ManualClock clock;
    CircuitBreaker breaker(smallBreaker(), &clock);
    for (int i = 0; i < 4; ++i) breaker.recordFailure();
    clock.advanceMs(101.0);
    ASSERT_TRUE(breaker.tryAdmit());

    breaker.recordSuccess();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(breaker.stats().window_samples, 0u); // bad window forgotten

    // A single new failure must not re-trip off stale history.
    breaker.recordFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(BreakerTest, ProbeFailureReopensAndRestartsCooldown)
{
    ManualClock clock;
    CircuitBreaker breaker(smallBreaker(), &clock);
    for (int i = 0; i < 4; ++i) breaker.recordFailure();
    clock.advanceMs(101.0);
    ASSERT_TRUE(breaker.tryAdmit());

    breaker.recordFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.stats().opens, 2u);
    EXPECT_FALSE(breaker.tryAdmit()); // cooldown restarted
    clock.advanceMs(101.0);
    EXPECT_TRUE(breaker.tryAdmit());
}

TEST(BreakerTest, QueueLatencyTripsTheBreaker)
{
    ManualClock clock;
    BreakerOptions options = smallBreaker();
    options.queue_latency_threshold_ms = 50.0;
    CircuitBreaker breaker(options, &clock);

    breaker.observeQueueWait(10.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    breaker.observeQueueWait(51.0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

TEST(JournalTest, RoundTripsAcceptsAndCompletions)
{
    const std::string path = tempPath("qa_journal_roundtrip.ndjson");
    {
        Journal journal(path);
        journal.appendAccept(0, "{\"op\":\"run\",\"id\":\"a\"}");
        journal.appendAccept(1, "{\"op\":\"run\",\"id\":\"b\"}");
        journal.appendComplete(0, "ok", "00112233445566778899aabbccddeeff");
        EXPECT_EQ(journal.recordsWritten(), 3u);
    }
    const JournalScan scan = scanJournal(path);
    EXPECT_FALSE(scan.torn_tail);
    ASSERT_EQ(scan.accepted.size(), 2u);
    EXPECT_EQ(scan.accepted[0].seq, 0u);
    EXPECT_EQ(scan.accepted[0].request, "{\"op\":\"run\",\"id\":\"a\"}");
    EXPECT_EQ(scan.accepted[1].seq, 1u);
    ASSERT_EQ(scan.completed.size(), 1u);
    EXPECT_EQ(scan.completed.at(0).status, "ok");
    EXPECT_EQ(scan.completed.at(0).hash,
              "00112233445566778899aabbccddeeff");

    // Pending = accepted minus completed: exactly what replay re-runs.
    const auto pending = scan.pending();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].seq, 1u);
    std::remove(path.c_str());
}

TEST(JournalTest, TornTailIsDroppedNotFatal)
{
    const std::string path = tempPath("qa_journal_torn.ndjson");
    {
        Journal journal(path);
        journal.appendAccept(0, "{\"id\":\"a\"}");
        journal.appendAccept(1, "{\"id\":\"b\"}");
    }
    // Crash mid-append: the final record loses its tail bytes.
    chopFileTail(path, 7);
    const JournalScan scan = scanJournal(path);
    EXPECT_TRUE(scan.torn_tail);
    ASSERT_EQ(scan.accepted.size(), 1u);
    EXPECT_EQ(scan.accepted[0].seq, 0u);
    std::remove(path.c_str());
}

TEST(JournalTest, DamageBeforeTheTailIsCorruption)
{
    const std::string path = tempPath("qa_journal_corrupt.ndjson");
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"e\":\"accept\",\"seq\":0,\"req\":{\"id\"\n" // damaged
            << "{\"e\":\"accept\",\"seq\":1,\"req\":{\"id\":\"b\"}}\n";
    }
    try {
        scanJournal(path);
        FAIL() << "corrupt journal must not scan";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kJournalCorrupt);
    }
    std::remove(path.c_str());
}

TEST(JournalTest, MissingFileIsATypedError)
{
    try {
        scanJournal(tempPath("qa_journal_missing.ndjson"));
        FAIL() << "missing journal must not scan";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kBadRequest);
    }
}

TEST(JournalTest, ChoppingMoreThanTheFileEmptiesIt)
{
    const std::string path = tempPath("qa_journal_chop.ndjson");
    {
        Journal journal(path);
        journal.appendAccept(0, "{\"id\":\"a\"}");
    }
    chopFileTail(path, 1 << 20);
    const JournalScan scan = scanJournal(path);
    EXPECT_EQ(scan.accepted.size(), 0u);
    EXPECT_FALSE(scan.torn_tail);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Chaos plans
// ---------------------------------------------------------------------

TEST(ChaosPlanTest, PlansAreDeterministicAndSeedDependent)
{
    ChaosOptions options;
    options.seed = 42;
    options.p_stall = 0.2;
    options.p_throw = 0.3;
    const ChaosPlan plan(options);
    const ChaosPlan replayed(options); // identical options, fresh object

    ChaosOptions other = options;
    other.seed = 43;
    const ChaosPlan different(other);

    size_t diverged = 0;
    for (uint64_t seq = 0; seq < 200; ++seq) {
        EXPECT_EQ(int(plan.at(seq, 0).kind),
                  int(replayed.at(seq, 0).kind));
        if (plan.at(seq, 0).kind != different.at(seq, 0).kind) ++diverged;
    }
    EXPECT_GT(diverged, 0u);

    // The planned mix roughly matches the probabilities.
    const size_t faults = plan.plannedFaults(1000);
    EXPECT_GT(faults, 350u);
    EXPECT_LT(faults, 650u);
}

TEST(ChaosPlanTest, FirstAttemptOnlyLeavesRetriesClean)
{
    ChaosOptions options;
    options.p_throw = 1.0;
    const ChaosPlan plan(options);
    EXPECT_EQ(int(plan.at(5, 0).kind), int(ServiceFaultKind::kJobThrow));
    EXPECT_EQ(int(plan.at(5, 1).kind), int(ServiceFaultKind::kNone));

    ChaosOptions every = options;
    every.first_attempt_only = false;
    const ChaosPlan relentless(every);
    EXPECT_EQ(int(relentless.at(5, 1).kind),
              int(ServiceFaultKind::kJobThrow));
}

// ---------------------------------------------------------------------
// Supervision primitives
// ---------------------------------------------------------------------

TEST(SupervisorTest, HeartbeatStalenessTracksTheClock)
{
    ManualClock clock;
    Heartbeat heartbeat(&clock);
    EXPECT_FALSE(heartbeat.busy());
    EXPECT_DOUBLE_EQ(heartbeat.staleMs(), 0.0);

    heartbeat.beginWork(17);
    EXPECT_TRUE(heartbeat.busy());
    EXPECT_EQ(heartbeat.token(), 17u);
    clock.advanceMs(40.0);
    EXPECT_NEAR(heartbeat.staleMs(), 40.0, 1e-6);

    heartbeat.beat();
    EXPECT_NEAR(heartbeat.staleMs(), 0.0, 1e-6);

    clock.advanceMs(10.0);
    heartbeat.endWork();
    EXPECT_DOUBLE_EQ(heartbeat.staleMs(), 0.0); // idle is never stale
}

TEST(SupervisorTest, WatchdogScansAndStopsPromptly)
{
    std::atomic<int> scans{0};
    Watchdog watchdog;
    watchdog.start([&scans] { scans.fetch_add(1); }, 1.0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (scans.load() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(scans.load(), 0);
    watchdog.stop();
    watchdog.stop(); // idempotent
    const int after_stop = scans.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(scans.load(), after_stop);
}

// ---------------------------------------------------------------------
// Scheduler chaos: thrown jobs
// ---------------------------------------------------------------------

serve::ExecHook
hookFromPlan(const ChaosPlan& plan)
{
    return [plan](uint64_t seq, int attempt) {
        const ServiceFault fault = plan.at(seq, attempt);
        if (fault.kind == ServiceFaultKind::kJobThrow) {
            throw std::runtime_error("chaos: planned throw at seq " +
                                     std::to_string(seq));
        }
        if (fault.kind == ServiceFaultKind::kWorkerStall) {
            std::this_thread::sleep_for(std::chrono::duration<double,
                                                              std::milli>(
                fault.stall_ms));
        }
    };
}

TEST(SchedulerChaosTest, ThrownJobsRetryToBitIdenticalResults)
{
    constexpr int kJobs = 24;

    ChaosOptions chaos;
    chaos.seed = 11;
    chaos.p_throw = 0.4; // ~40% of first attempts die and retry clean
    const ChaosPlan plan(chaos);
    ASSERT_GT(plan.plannedFaults(kJobs), 0u);

    SchedulerOptions options;
    options.workers = 4;
    options.cache_capacity = 0; // force real re-execution on retry
    options.retry.base_backoff_ms = 0.1;
    options.exec_hook = hookFromPlan(plan);
    Scheduler scheduler(options);

    std::vector<std::future<JobResult>> futures;
    futures.reserve(kJobs);
    for (int j = 0; j < kJobs; ++j) {
        futures.push_back(scheduler.submit(coinSpec(1000 + uint64_t(j))));
    }
    for (int j = 0; j < kJobs; ++j) {
        const JobResult result = futures[size_t(j)].get();
        EXPECT_EQ(int(result.status), int(JobStatus::kOk))
            << result.error_message;
        // Recovery must be invisible in the payload: compare against a
        // direct, chaos-free execution of the same spec.
        expectResultsIdentical(result,
                               executeJob(coinSpec(1000 + uint64_t(j))));
    }

    const serve::MetricsSnapshot metrics = scheduler.metrics();
    EXPECT_EQ(metrics.completed, uint64_t(kJobs));
    EXPECT_EQ(metrics.failed, 0u);
    EXPECT_GT(metrics.retried, 0u);
}

TEST(SchedulerChaosTest, ExhaustedRetriesFailWithTheTransientError)
{
    ChaosOptions chaos;
    chaos.p_throw = 1.0;
    chaos.first_attempt_only = false; // every attempt dies
    const ChaosPlan plan(chaos);

    SchedulerOptions options;
    options.workers = 1;
    options.retry.max_attempts = 3;
    options.retry.base_backoff_ms = 0.1;
    options.exec_hook = hookFromPlan(plan);
    Scheduler scheduler(options);

    const JobResult result = scheduler.submit(coinSpec(5)).get();
    EXPECT_EQ(int(result.status), int(JobStatus::kFailed));
    EXPECT_EQ(result.error_code, ErrorCode::kGeneric);

    const serve::MetricsSnapshot metrics = scheduler.metrics();
    EXPECT_EQ(metrics.failed, 1u);
    EXPECT_EQ(metrics.retried, 2u); // attempts 0 and 1 were re-queued
}

TEST(SchedulerChaosTest, PermanentErrorsDoNotBurnRetries)
{
    SchedulerOptions options;
    options.workers = 1;
    Scheduler scheduler(options);

    JobSpec bad = coinSpec(1);
    bad.policy = AssertionPolicy::kRetry; // plain path: unsupported
    const JobResult result = scheduler.submit(std::move(bad)).get();
    EXPECT_EQ(int(result.status), int(JobStatus::kFailed));
    EXPECT_EQ(result.error_code, ErrorCode::kPolicyUnsupported);
    EXPECT_EQ(scheduler.metrics().retried, 0u);
}

// ---------------------------------------------------------------------
// Scheduler chaos: wedged workers, watchdog, respawn
// ---------------------------------------------------------------------

TEST(SchedulerChaosTest, WedgedWorkersAreReclaimedRespawnedAndRetried)
{
    constexpr int kJobs = 4;

    ChaosOptions chaos;
    chaos.p_stall = 1.0;     // every first attempt wedges its worker
    chaos.stall_ms = 400.0;  // far past the stall timeout
    const ChaosPlan plan(chaos);

    SchedulerOptions options;
    options.workers = 2;
    options.cache_capacity = 0;
    options.retry.max_attempts = 5;
    options.retry.base_backoff_ms = 0.1;
    options.supervisor.stall_timeout_ms = 100.0;
    options.supervisor.poll_interval_ms = 5.0;
    options.exec_hook = hookFromPlan(plan);

    std::atomic<int> callbacks{0};
    std::vector<JobResult> results(kJobs);
    {
        Scheduler scheduler(options);
        std::vector<std::promise<void>> done(kJobs);
        for (int j = 0; j < kJobs; ++j) {
            scheduler.submit(coinSpec(2000 + uint64_t(j)),
                             [j, &results, &callbacks,
                              &done](JobResult result) {
                                 results[size_t(j)] = std::move(result);
                                 callbacks.fetch_add(1);
                                 done[size_t(j)].set_value();
                             });
        }
        for (int j = 0; j < kJobs; ++j) {
            done[size_t(j)].get_future().wait();
        }

        const serve::MetricsSnapshot metrics = scheduler.metrics();
        EXPECT_EQ(metrics.completed, uint64_t(kJobs));
        EXPECT_GT(metrics.worker_lost, 0u);
        EXPECT_GT(metrics.respawned, 0u);
        EXPECT_GT(metrics.retried, 0u);
        // Destructor: stop() must join the respawned workers AND the
        // zombies still sleeping inside their stalled attempts.
    }

    // Exactly one resolution per job, ever — the zombie's late result
    // lost the claim CAS and was dropped, not double-delivered.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(callbacks.load(), kJobs);
    for (int j = 0; j < kJobs; ++j) {
        EXPECT_EQ(int(results[size_t(j)].status), int(JobStatus::kOk));
        expectResultsIdentical(results[size_t(j)],
                               executeJob(coinSpec(2000 + uint64_t(j))));
    }
}

TEST(SchedulerChaosTest, WorkerLostWithoutBudgetFailsTyped)
{
    ChaosOptions chaos;
    chaos.p_stall = 1.0;
    chaos.stall_ms = 300.0;
    chaos.first_attempt_only = false;
    const ChaosPlan plan(chaos);

    SchedulerOptions options;
    options.workers = 1;
    options.retry.max_attempts = 1; // no budget: first loss is final
    options.supervisor.stall_timeout_ms = 50.0;
    options.supervisor.poll_interval_ms = 5.0;
    options.exec_hook = hookFromPlan(plan);
    Scheduler scheduler(options);

    const JobResult result = scheduler.submit(coinSpec(3)).get();
    EXPECT_EQ(int(result.status), int(JobStatus::kFailed));
    EXPECT_EQ(result.error_code, ErrorCode::kWorkerLost);
    EXPECT_EQ(scheduler.metrics().worker_lost, 1u);
}

// ---------------------------------------------------------------------
// Scheduler: breaker integration and graceful drain
// ---------------------------------------------------------------------

TEST(SchedulerChaosTest, BreakerShedsAfterFailuresAndRecovers)
{
    ManualClock clock;
    ChaosOptions chaos;
    chaos.p_throw = 1.0;
    chaos.first_attempt_only = false;
    const ChaosPlan plan(chaos);

    SchedulerOptions options;
    options.workers = 1;
    options.retry.max_attempts = 1; // failures reach the breaker directly
    options.breaker.enabled = true;
    options.breaker.window = 8;
    options.breaker.min_samples = 4;
    options.breaker.failure_threshold = 0.5;
    options.breaker.open_cooldown_ms = 50.0;
    options.clock = &clock;
    // Fault only the first four jobs; later ones run clean.
    options.exec_hook = [plan](uint64_t seq, int attempt) {
        if (seq < 4) hookFromPlan(plan)(seq, attempt);
    };
    Scheduler scheduler(options);

    for (int j = 0; j < 4; ++j) {
        const JobResult result = scheduler.submit(coinSpec(10)).get();
        EXPECT_EQ(int(result.status), int(JobStatus::kFailed));
    }
    EXPECT_EQ(scheduler.breakerStats().state,
              resilience::CircuitBreaker::State::kOpen);

    // Open: submissions shed with a typed error, costing no queue slot.
    try {
        scheduler.submit(coinSpec(11));
        FAIL() << "open breaker must shed";
    } catch (const UserError& err) {
        EXPECT_EQ(err.code(), ErrorCode::kShedding);
    }
    EXPECT_EQ(scheduler.metrics().shed, 1u);

    // Cooldown elapses (manual time): the probe runs clean and closes.
    clock.advanceMs(51.0);
    const JobResult probe = scheduler.submit(coinSpec(12)).get();
    EXPECT_EQ(int(probe.status), int(JobStatus::kOk));
    EXPECT_EQ(scheduler.breakerStats().state,
              resilience::CircuitBreaker::State::kClosed);
    const JobResult after = scheduler.submit(coinSpec(13)).get();
    EXPECT_EQ(int(after.status), int(JobStatus::kOk));
}

TEST(SchedulerChaosTest, DrainForTimesOutThenStopCancelsCleanly)
{
    SchedulerOptions options;
    options.workers = 1;
    options.exec_hook = [](uint64_t, int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
    };
    Scheduler scheduler(options);

    auto running = scheduler.submit(coinSpec(1));
    auto queued = scheduler.submit(coinSpec(2));

    EXPECT_FALSE(scheduler.drainFor(5.0)); // far too short

    scheduler.stop();
    const JobResult first = running.get();
    const JobResult second = queued.get();
    // The in-flight job finished; the queued one was cancelled typed.
    EXPECT_EQ(int(first.status), int(JobStatus::kOk));
    EXPECT_EQ(int(second.status), int(JobStatus::kCancelled));
    EXPECT_EQ(second.error_code, ErrorCode::kServiceStopped);
    EXPECT_EQ(scheduler.metrics().cancelled, 1u);

    // Idle after stop: drainFor reports drained immediately.
    EXPECT_TRUE(scheduler.drainFor(1.0));
}

// ---------------------------------------------------------------------
// Malformed-input corpus (wire protocol + JSON parser)
// ---------------------------------------------------------------------

TEST(CorpusTest, AdversarialPayloadsFailTypedAndNeverCrash)
{
    const auto& corpus = adversarialWireCorpus();
    ASSERT_GE(corpus.size(), 50u);

    for (const AdversarialPayload& entry : corpus) {
        bool threw_typed = false;
        try {
            serve::parseRequest(entry.payload);
        } catch (const UserError& err) {
            threw_typed = true;
            // Every rejection is a typed caller error, never a retryable
            // or internal classification.
            EXPECT_TRUE(err.code() == ErrorCode::kBadRequest ||
                        err.code() == ErrorCode::kQasmSyntax)
                << entry.why << ": surfaced " << errorCodeName(err.code());
        }
        // No other exception type may escape (std::exception would have
        // aborted the test run via gtest's unexpected-exception path).
        if (entry.must_fail) {
            EXPECT_TRUE(threw_typed)
                << "payload survived but must fail: " << entry.why;
        }
    }
}

TEST(CorpusTest, CorpusSurvivorsProduceUsableRequests)
{
    // The must_fail=false entries exist to prove hostile-but-legal input
    // parses into a well-formed request.
    for (const AdversarialPayload& entry : adversarialWireCorpus()) {
        if (entry.must_fail) continue;
        const serve::WireRequest request =
            serve::parseRequest(entry.payload);
        EXPECT_TRUE(request.op == serve::RequestOp::kMetrics ||
                    request.op == serve::RequestOp::kShutdown)
            << entry.why;
    }
}

// ---------------------------------------------------------------------
// Bounded line reader
// ---------------------------------------------------------------------

TEST(ReadLineTest, SplitsLinesAndReportsEof)
{
    std::istringstream in("alpha\nbeta\n\ngamma");
    std::string line;
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 64)),
              int(serve::ReadLineStatus::kOk));
    EXPECT_EQ(line, "alpha");
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 64)),
              int(serve::ReadLineStatus::kOk));
    EXPECT_EQ(line, "beta");
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 64)),
              int(serve::ReadLineStatus::kOk));
    EXPECT_EQ(line, "");
    // No trailing newline: the partial line still comes back.
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 64)),
              int(serve::ReadLineStatus::kOk));
    EXPECT_EQ(line, "gamma");
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 64)),
              int(serve::ReadLineStatus::kEof));
}

TEST(ReadLineTest, OversizeLineIsConsumedAndStreamResyncs)
{
    const std::string huge(100, 'x');
    std::istringstream in(huge + "\nnext\n");
    std::string line;
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 16)),
              int(serve::ReadLineStatus::kOverflow));
    // The oversize line was consumed to its terminator, so the next
    // read starts at the next request instead of mid-garbage.
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 16)),
              int(serve::ReadLineStatus::kOk));
    EXPECT_EQ(line, "next");
}

TEST(ReadLineTest, ExactBoundIsNotOverflow)
{
    std::istringstream in("1234\n12345\n");
    std::string line;
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 4)),
              int(serve::ReadLineStatus::kOk));
    EXPECT_EQ(line, "1234");
    EXPECT_EQ(int(serve::readLineBounded(in, &line, 4)),
              int(serve::ReadLineStatus::kOverflow));
}

// ---------------------------------------------------------------------
// Replay payloads
// ---------------------------------------------------------------------

TEST(ReplayTest, PayloadHashIgnoresTimingAndCacheBits)
{
    const JobResult a = executeJob(coinSpec(77));
    JobResult b = executeJob(coinSpec(77));
    b.queue_ms = 123.0;
    b.exec_ms = 456.0;
    b.cache_hit = true;
    b.tag = "different";
    EXPECT_EQ(serve::payloadHash(a).str(), serve::payloadHash(b).str());

    const JobResult c = executeJob(coinSpec(78));
    EXPECT_NE(serve::payloadHash(a).str(), serve::payloadHash(c).str());
}

TEST(ReplayTest, EncodeReplayIsTimingFreeAndReproducible)
{
    JobResult a = executeJob(coinSpec(9));
    JobResult b = executeJob(coinSpec(9));
    a.queue_ms = 1.0;
    b.queue_ms = 99.0; // timing noise must not reach the encoding
    const std::string line_a = serve::encodeReplay("job", a);
    const std::string line_b = serve::encodeReplay("job", b);
    EXPECT_EQ(line_a, line_b);
    EXPECT_EQ(line_a.find("queue_ms"), std::string::npos);
    EXPECT_EQ(line_a.find("exec_ms"), std::string::npos);
    EXPECT_EQ(line_a.find("cache_hit"), std::string::npos);
}

// ---------------------------------------------------------------------
// Network-fault plans (qa_netchaos model)
// ---------------------------------------------------------------------

TEST(NetFaultTest, EmptyPlanFaultsNothing)
{
    const NetFaultPlan plan = NetFaultPlan::parse("", 1);
    for (uint64_t conn = 0; conn < 20; ++conn) {
        EXPECT_FALSE(plan.connFaults(conn).any());
        EXPECT_FALSE(plan.partialWrite(conn, 0));
    }
    EXPECT_FALSE(plan.hasPartition());
}

TEST(NetFaultTest, EveryCountsOneBasedSoTheFirstConnectionIsSpared)
{
    // every=3 hits connections 2, 5, 8, ...: a fresh fleet's first
    // connection to each shard comes up clean before faults start.
    const NetFaultPlan plan = NetFaultPlan::parse("reset:every=3", 7);
    for (uint64_t conn = 0; conn < 12; ++conn) {
        EXPECT_EQ(plan.connFaults(conn).reset, conn % 3 == 2)
            << "conn " << conn;
    }
}

TEST(NetFaultTest, FamiliesComposeOnOneConnection)
{
    const NetFaultPlan plan = NetFaultPlan::parse(
        "reset:every=2,after_bytes=512;"
        "slowloris:every=2,delay_ms=20,chunk=8,bytes=4096;"
        "blackhole:every=4,dur=250",
        3);
    const NetConnFaults faults = plan.connFaults(3); // hit by all three
    EXPECT_TRUE(faults.reset);
    EXPECT_EQ(faults.reset_after_bytes, 512u);
    EXPECT_TRUE(faults.slowloris);
    EXPECT_EQ(faults.slowloris_delay_ms, 20.0);
    EXPECT_EQ(faults.slowloris_chunk, 8u);
    EXPECT_EQ(faults.slowloris_bytes, 4096u);
    EXPECT_TRUE(faults.blackhole);
    EXPECT_EQ(faults.blackhole_dur_ms, 250.0);
    EXPECT_TRUE(faults.any());

    const NetConnFaults spared = plan.connFaults(0);
    EXPECT_FALSE(spared.any());
}

TEST(NetFaultTest, PartitionWindowIsHalfOpen)
{
    const NetFaultPlan plan =
        NetFaultPlan::parse("partition:at=1000,dur=500", 1);
    ASSERT_TRUE(plan.hasPartition());
    EXPECT_EQ(plan.partitionAtMs(), 1000.0);
    EXPECT_EQ(plan.partitionEndMs(), 1500.0);
    EXPECT_FALSE(plan.inPartition(999.0));
    EXPECT_TRUE(plan.inPartition(1000.0));
    EXPECT_TRUE(plan.inPartition(1499.0));
    EXPECT_FALSE(plan.inPartition(1500.0));
}

TEST(NetFaultTest, PartialWritesAreSeededAndDeterministic)
{
    const NetFaultPlan a = NetFaultPlan::parse("partial:p=0.5", 11);
    const NetFaultPlan b = NetFaultPlan::parse("partial:p=0.5", 11);
    const NetFaultPlan c = NetFaultPlan::parse("partial:p=0.5", 12);
    size_t hits = 0;
    size_t differs_from_c = 0;
    for (uint64_t conn = 0; conn < 8; ++conn) {
        for (uint64_t chunk = 0; chunk < 64; ++chunk) {
            const bool split = a.partialWrite(conn, chunk);
            // Same seed -> identical per-chunk decisions, every time.
            EXPECT_EQ(split, b.partialWrite(conn, chunk));
            if (split) hits++;
            if (split != c.partialWrite(conn, chunk)) differs_from_c++;
        }
    }
    // p=0.5 over 512 chunks: comfortably within [25%, 75%].
    EXPECT_GT(hits, 128u);
    EXPECT_LT(hits, 384u);
    // A different seed is a different fault schedule.
    EXPECT_GT(differs_from_c, 0u);

    // p=0 never splits, p=1 always splits — no RNG on the edges.
    const NetFaultPlan never = NetFaultPlan::parse("partial:p=0", 1);
    const NetFaultPlan always = NetFaultPlan::parse("partial:p=1", 1);
    EXPECT_FALSE(never.partialWrite(0, 0));
    EXPECT_TRUE(always.partialWrite(0, 0));
}

TEST(NetFaultTest, MalformedPlansAreTypedErrors)
{
    const uint64_t seed = 1;
    // Unknown family.
    EXPECT_THROW(NetFaultPlan::parse("explode:every=2", seed), UserError);
    // Unknown key within a known family.
    EXPECT_THROW(NetFaultPlan::parse("reset:every=2,whoops=1", seed),
                 UserError);
    // Missing required key.
    EXPECT_THROW(NetFaultPlan::parse("slowloris:every=2", seed),
                 UserError);
    // Malformed number and malformed key=value.
    EXPECT_THROW(NetFaultPlan::parse("reset:every=abc", seed), UserError);
    EXPECT_THROW(NetFaultPlan::parse("reset:every", seed), UserError);
    // Probability out of range.
    EXPECT_THROW(NetFaultPlan::parse("partial:p=1.5", seed), UserError);
}

TEST(NetFaultTest, DescribeSummarizesEveryActiveFamily)
{
    const NetFaultPlan plan = NetFaultPlan::parse(
        "reset:every=7;partition:at=2000,dur=5000;partial:p=0.25", 9);
    const std::string text = plan.describe();
    EXPECT_NE(text.find("seed=9"), std::string::npos) << text;
    EXPECT_NE(text.find("reset(every=7"), std::string::npos) << text;
    EXPECT_NE(text.find("partition(at=2000ms,dur=5000ms"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("partial(p=0.25)"), std::string::npos) << text;
}

} // namespace
} // namespace resilience
} // namespace qa
