/**
 * @file
 * Tests for the baseline assertion schemes: statistical assertion
 * (chi-square machinery + phase blindness), the ASPLOS'20 primitives,
 * and the Proq projection baseline's coverage.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "algos/states.hpp"
#include "baselines/chi_square.hpp"
#include "baselines/primitives.hpp"
#include "baselines/stat_assertion.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

TEST(ChiSquareTest, GammaFunctionSanity)
{
    // Q(a, 0) = 1; Q(0.5, large) -> 0.
    EXPECT_NEAR(regularizedGammaQ(0.5, 0.0), 1.0, 1e-12);
    EXPECT_LT(regularizedGammaQ(0.5, 50.0), 1e-10);
    // Chi-square with 1 dof: P(X >= 3.841) ~= 0.05.
    EXPECT_NEAR(chiSquareSurvival(3.841, 1), 0.05, 0.001);
    // 2 dof: survival is exp(-x/2).
    EXPECT_NEAR(chiSquareSurvival(4.0, 2), std::exp(-2.0), 1e-9);
}

TEST(ChiSquareTest, GoodnessOfFit)
{
    // Perfect fit: tiny statistic, p ~ 1.
    ChiSquareResult good = chiSquareTest({500, 500}, {0.5, 0.5});
    EXPECT_LT(good.statistic, 1e-9);
    EXPECT_GT(good.p_value, 0.99);

    // Strong misfit rejects.
    ChiSquareResult bad = chiSquareTest({900, 100}, {0.5, 0.5});
    EXPECT_LT(bad.p_value, 1e-6);

    // Mass in an impossible cell rejects.
    ChiSquareResult impossible = chiSquareTest({100, 100}, {1.0, 0.0});
    EXPECT_LT(impossible.p_value, 1e-6);
}

TEST(StatAssertionTest, AcceptsCorrectState)
{
    StatAssertionOptions options;
    options.shots = 4096;
    StatAssertionResult result = statAssertState(
        algos::ghzPrep(3), {0, 1, 2}, algos::ghzVector(3), options);
    EXPECT_FALSE(result.rejected);
    // Only |000> and |111> observed.
    EXPECT_EQ(result.observed[1], 0);
    EXPECT_EQ(result.observed[6], 0);
}

TEST(StatAssertionTest, DetectsWrongEntanglement)
{
    // GHZ Bug2 changes which basis states appear: Stat catches it.
    StatAssertionResult result = statAssertState(
        algos::ghzPrep(3, /*bug=*/2), {0, 1, 2}, algos::ghzVector(3),
        StatAssertionOptions{});
    EXPECT_TRUE(result.rejected);
}

TEST(StatAssertionTest, BlindToPhaseBug)
{
    // GHZ Bug1 flips a sign: same computational-basis distribution, so
    // the statistical assertion cannot reject (Table I row 1).
    StatAssertionResult result = statAssertState(
        algos::ghzPrep(3, /*bug=*/1), {0, 1, 2}, algos::ghzVector(3),
        StatAssertionOptions{});
    EXPECT_FALSE(result.rejected);
}

TEST(StatAssertionTest, SubsetOfQubits)
{
    // Assert only qubit 0 of a GHZ: expected marginal is uniform.
    StatAssertionResult result = statAssert(
        algos::ghzPrep(3), {0}, {0.5, 0.5}, StatAssertionOptions{});
    EXPECT_FALSE(result.rejected);
}

TEST(PrimitivesTest, ClassicalAssertion)
{
    for (int expected : {0, 1}) {
        for (int actual : {0, 1}) {
            QuantumCircuit prep(1);
            if (actual == 1) prep.x(0);
            AssertedProgram prog(prep);
            primitiveAssertClassical(prog, 0, expected);
            const AssertionOutcomeExact outcome = runAssertedExact(prog);
            EXPECT_NEAR(outcome.slot_error_prob[0],
                        expected == actual ? 0.0 : 1.0, 1e-9);
        }
    }
}

TEST(PrimitivesTest, ClassicalAssertionIsNonDestructive)
{
    QuantumCircuit prep(1);
    prep.x(0);
    AssertedProgram prog(prep);
    primitiveAssertClassical(prog, 0, 1);
    prog.measureProgram();
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_NEAR(outcome.program_dist.probability("1"), 1.0, 1e-9);
}

TEST(PrimitivesTest, SuperpositionAssertion)
{
    // |+> passes the plus assertion, |-> fails it, and vice versa.
    for (bool plus_state : {true, false}) {
        QuantumCircuit prep(1);
        prep.h(0);
        if (!plus_state) prep.z(0);
        for (bool assert_plus : {true, false}) {
            AssertedProgram prog(prep);
            primitiveAssertSuperposition(prog, 0, assert_plus);
            const AssertionOutcomeExact outcome = runAssertedExact(prog);
            EXPECT_NEAR(outcome.slot_error_prob[0],
                        plus_state == assert_plus ? 0.0 : 1.0, 1e-9)
                << "state " << plus_state << " assert " << assert_plus;
        }
    }
}

TEST(PrimitivesTest, ParityAssertion)
{
    // Bell pair is in the even span; flipping one qubit moves it to odd.
    AssertedProgram even_prog(algos::bellPrep(algos::BellKind::kPhiPlus));
    primitiveAssertParity(even_prog, {0, 1}, true);
    EXPECT_NEAR(runAssertedExact(even_prog).slot_error_prob[0], 0.0, 1e-9);

    QuantumCircuit odd = algos::bellPrep(algos::BellKind::kPhiPlus);
    odd.x(1);
    AssertedProgram odd_prog(odd);
    primitiveAssertParity(odd_prog, {0, 1}, true);
    EXPECT_NEAR(runAssertedExact(odd_prog).slot_error_prob[0], 1.0, 1e-9);

    AssertedProgram odd_ok(odd);
    primitiveAssertParity(odd_ok, {0, 1}, false);
    EXPECT_NEAR(runAssertedExact(odd_ok).slot_error_prob[0], 0.0, 1e-9);
}

TEST(PrimitivesTest, ParityCannotSeeCoefficients)
{
    // The parity primitive accepts ANY a|00> + b|11>, including the
    // sign-flipped GHZ-type bug -- the limitation motivating precise
    // assertion (Sec. III).
    QuantumCircuit flipped(2);
    flipped.h(0);
    flipped.cx(0, 1);
    flipped.z(0);
    AssertedProgram prog(flipped);
    primitiveAssertParity(prog, {0, 1}, true);
    EXPECT_NEAR(runAssertedExact(prog).slot_error_prob[0], 0.0, 1e-9);
}

TEST(PrimitivesTest, ParityPreservesEntanglement)
{
    // A Bell pair sits in the even-parity span; the parity primitive
    // must pass AND leave the entangled state intact for the follow-up
    // precise assertion.
    AssertedProgram prog(algos::bellPrep(algos::BellKind::kPhiPlus));
    primitiveAssertParity(prog, {0, 1}, true);
    prog.assertState({0, 1},
                     StateSet::pure(algos::bellVector(
                         algos::BellKind::kPhiPlus)),
                     AssertionDesign::kSwap);
    const AssertionOutcomeExact outcome = runAssertedExact(prog);
    EXPECT_NEAR(outcome.slot_error_prob[0], 0.0, 1e-7);
    EXPECT_NEAR(outcome.slot_error_prob[1], 0.0, 1e-7);
}

TEST(PrimitivesTest, ParityCannotExpressGhz)
{
    // The paper's motivating gap (Sec. II-B): a 3-qubit GHZ has mixed
    // parity, so the even-parity primitive falsely fires half the time
    // even on the CORRECT state.
    AssertedProgram prog(algos::ghzPrep(3));
    primitiveAssertParity(prog, {0, 1, 2}, true);
    EXPECT_NEAR(runAssertedExact(prog).slot_error_prob[0], 0.5, 1e-9);
}

TEST(ProqTest, CatchesBothGhzBugs)
{
    // Table I: Proq detects Bug1 and Bug2.
    for (int bug : {1, 2}) {
        AssertedProgram prog(algos::ghzPrep(3, bug));
        prog.assertState({0, 1, 2}, StateSet::pure(algos::ghzVector(3)),
                         AssertionDesign::kProq);
        EXPECT_GT(runAssertedExact(prog).slot_error_prob[0], 0.4)
            << "bug " << bug;
    }
    AssertedProgram clean(algos::ghzPrep(3));
    clean.assertState({0, 1, 2}, StateSet::pure(algos::ghzVector(3)),
                      AssertionDesign::kProq);
    EXPECT_NEAR(runAssertedExact(clean).slot_error_prob[0], 0.0, 1e-7);
}

TEST(ProqTest, NeedsNoAncilla)
{
    AssertedProgram prog(algos::ghzPrep(3));
    prog.assertState({0, 1, 2}, StateSet::pure(algos::ghzVector(3)),
                     AssertionDesign::kProq);
    EXPECT_TRUE(prog.slots()[0].ancillas.empty());
    EXPECT_EQ(prog.circuit().numQubits(), 3);
}

} // namespace
} // namespace qa
