/**
 * @file
 * Unit tests for the circuit IR: gate matrices, instruction validation,
 * composition, inversion, cost metrics, and QASM export.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"
#include "synth/unitary_synth.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

using test::expectMatrixNear;

TEST(StdGatesTest, PauliAlgebra)
{
    expectMatrixNear(gates::x() * gates::x(), CMatrix::identity(2));
    expectMatrixNear(gates::y() * gates::y(), CMatrix::identity(2));
    expectMatrixNear(gates::z() * gates::z(), CMatrix::identity(2));
    // XY = iZ.
    expectMatrixNear(gates::x() * gates::y(), gates::z() * kI);
}

TEST(StdGatesTest, HadamardConjugation)
{
    expectMatrixNear(gates::h() * gates::x() * gates::h(), gates::z());
    expectMatrixNear(gates::h() * gates::z() * gates::h(), gates::x());
}

TEST(StdGatesTest, PhaseFamilies)
{
    expectMatrixNear(gates::s() * gates::s(), gates::z());
    expectMatrixNear(gates::t() * gates::t(), gates::s(), 1e-12);
    expectMatrixNear(gates::sx() * gates::sx(), gates::x(), 1e-12);
    expectMatrixNear(gates::p(M_PI), gates::z(), 1e-12);
}

TEST(StdGatesTest, U3Conventions)
{
    // u3(pi/2, 0, pi) == H; u2(0, pi) == H (the paper's GHZ prep gate).
    expectMatrixNear(gates::u3(M_PI / 2, 0, M_PI), gates::h(), 1e-12);
    expectMatrixNear(gates::u2(0, M_PI), gates::h(), 1e-12);
    // u3(theta, 0, 0) == Ry(theta).
    expectMatrixNear(gates::u3(0.7, 0, 0), gates::ry(0.7), 1e-12);
}

TEST(StdGatesTest, RotationsComposeAdditively)
{
    expectMatrixNear(gates::rz(0.3) * gates::rz(0.4), gates::rz(0.7),
                     1e-12);
    expectMatrixNear(gates::ry(0.3) * gates::ry(0.4), gates::ry(0.7),
                     1e-12);
}

TEST(StdGatesTest, ControlledConstruction)
{
    CMatrix cx = gates::controlled(gates::x());
    EXPECT_EQ(cx(0, 0), Complex(1.0));
    EXPECT_EQ(cx(1, 1), Complex(1.0));
    EXPECT_EQ(cx(2, 3), Complex(1.0));
    EXPECT_EQ(cx(3, 2), Complex(1.0));

    // Open control fires on |0>.
    CMatrix open_cx = gates::controlledOpen(gates::x(), 1, 1u);
    EXPECT_EQ(open_cx(0, 1), Complex(1.0));
    EXPECT_EQ(open_cx(1, 0), Complex(1.0));
    EXPECT_EQ(open_cx(2, 2), Complex(1.0));
}

TEST(StdGatesTest, ToffoliMatrix)
{
    CMatrix ccx = gates::ccx();
    for (size_t i = 0; i < 6; ++i) EXPECT_EQ(ccx(i, i), Complex(1.0));
    EXPECT_EQ(ccx(6, 7), Complex(1.0));
    EXPECT_EQ(ccx(7, 6), Complex(1.0));
}

TEST(CircuitTest, ValidatesQubitIndices)
{
    QuantumCircuit qc(2, 1);
    EXPECT_THROW(qc.h(2), UserError);
    EXPECT_THROW(qc.cx(0, 0), UserError); // duplicate qubit
    EXPECT_THROW(qc.measure(0, 1), UserError); // clbit out of range
    EXPECT_THROW(QuantumCircuit(0), UserError);
}

TEST(CircuitTest, UnitaryValidation)
{
    QuantumCircuit qc(2);
    CMatrix not_unitary{{1, 1}, {0, 1}};
    EXPECT_THROW(qc.unitary(not_unitary, {0}), UserError);
    CMatrix wrong_dim = CMatrix::identity(4);
    EXPECT_THROW(qc.unitary(wrong_dim, {0}), UserError);
}

TEST(CircuitTest, CountingMetrics)
{
    QuantumCircuit qc(3, 3);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(1, 2);
    qc.rz(2, 0.1);
    qc.measure(2, 2);
    EXPECT_EQ(qc.countCx(), 2);
    EXPECT_EQ(qc.countSingleQubit(), 2);
    EXPECT_EQ(qc.countMeasure(), 1);
    EXPECT_EQ(qc.countGates("h"), 1);
}

TEST(CircuitTest, DepthComputation)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.h(1); // parallel with the first h
    qc.cx(0, 1);
    qc.h(2); // parallel with everything above
    EXPECT_EQ(qc.depth(), 2);
    qc.cx(1, 2);
    EXPECT_EQ(qc.depth(), 3);
}

TEST(CircuitTest, InverseRoundTrip)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.u3(1, 0.3, 0.9, -0.2);
    qc.u2(2, 0.5, 1.1);
    qc.cx(0, 1);
    qc.crz(1, 2, 0.7);
    qc.ccx(0, 1, 2);
    qc.t(0);
    qc.sdg(1);
    qc.swap(0, 2);

    QuantumCircuit inv = qc.inverse();
    QuantumCircuit both(3);
    std::vector<int> ident{0, 1, 2};
    both.compose(qc, ident);
    both.compose(inv, ident);
    EXPECT_TRUE(circuitUnitary(both).equalsUpToPhase(
        CMatrix::identity(8), 1e-9));
}

TEST(CircuitTest, InverseNameMapping)
{
    QuantumCircuit qc(1);
    qc.s(0);
    qc.rz(0, 0.4);
    QuantumCircuit inv = qc.inverse();
    EXPECT_EQ(inv.instructions()[0].name, "rz");
    EXPECT_DOUBLE_EQ(inv.instructions()[0].params[0], -0.4);
    EXPECT_EQ(inv.instructions()[1].name, "sdg");
}

TEST(CircuitTest, InverseRejectsMeasurement)
{
    QuantumCircuit qc(1, 1);
    qc.measure(0, 0);
    EXPECT_THROW(qc.inverse(), UserError);
}

TEST(CircuitTest, ComposeRelocatesQubits)
{
    QuantumCircuit inner(2);
    inner.h(0);
    inner.cx(0, 1);

    QuantumCircuit outer(4);
    outer.compose(inner, {2, 3});
    EXPECT_EQ(outer.instructions()[0].qubits, std::vector<int>{2});
    EXPECT_EQ(outer.instructions()[1].qubits, (std::vector<int>{2, 3}));
}

TEST(CircuitTest, ComposeRequiresClbitMapForMeasures)
{
    QuantumCircuit inner(1, 1);
    inner.measure(0, 0);
    QuantumCircuit outer(2, 2);
    EXPECT_THROW(outer.compose(inner, {1}), UserError);
    outer.compose(inner, {1}, {1});
    EXPECT_EQ(outer.instructions()[0].cbit, 1);
}

TEST(CircuitTest, MeasureAllNeedsClbits)
{
    QuantumCircuit qc(3, 2);
    EXPECT_THROW(qc.measureAll(), UserError);
    QuantumCircuit ok(3, 3);
    ok.measureAll();
    EXPECT_EQ(ok.countMeasure(), 3);
}

TEST(CircuitTest, QasmExport)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    qc.rz(1, 0.25);
    qc.measure(0, 0);
    const std::string qasm = qc.toQasm();
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.25) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(CircuitTest, QasmRejectsOpaqueGates)
{
    Rng rng(1);
    QuantumCircuit qc(2);
    qc.unitary(randomUnitary(4, rng), {0, 1});
    EXPECT_THROW(qc.toQasm(), UserError);
}

TEST(CircuitTest, GateMatricesMatchNames)
{
    // Every named emission must carry the matching matrix (the
    // simulators trust the matrix field blindly).
    QuantumCircuit qc(3);
    qc.cu3(0, 1, 0.4, 0.5, 0.6);
    expectMatrixNear(qc.instructions()[0].matrix,
                     gates::controlled(gates::u3(0.4, 0.5, 0.6)), 1e-12);
    qc.ccrz(0, 1, 2, 0.9);
    expectMatrixNear(qc.instructions()[1].matrix,
                     gates::controlled(gates::rz(0.9), 2), 1e-12);
}

} // namespace
} // namespace qa
