/**
 * @file
 * Gate-fusion and kernel-dispatch tests: fused evolution matches the
 * unfused reference amplitude-for-amplitude, fusion refuses to cross
 * measurement/reset/barrier boundaries, per-gate Kraus noise keeps the
 * noisy stream unfused (bit-identical counts with fusion on or off),
 * sampled counts stay bit-deterministic across thread counts with
 * fusion enabled, and the kernel classifier recognizes the structures
 * the dispatcher specializes on.
 */
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "circuit/stdgates.hpp"
#include "sim/engine.hpp"
#include "sim/fusion.hpp"
#include "sim/kernels.hpp"
#include "sim/noise.hpp"
#include "sim/statevector.hpp"

namespace qa
{
namespace
{

/** Layered pseudo-random 1q+2q circuit (no measurements). */
QuantumCircuit
randomLayers(int n, int layers, uint64_t seed)
{
    QuantumCircuit qc(n);
    Rng rng(seed);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) {
            qc.u3(q, rng.uniform(0, 3), rng.uniform(0, 3),
                  rng.uniform(0, 3));
        }
        for (int q = 0; q + 1 < n; q += 2) qc.cx(q, q + 1);
        for (int q = 1; q + 1 < n; q += 2) qc.cz(q, q + 1);
        for (int q = 0; q < n; ++q) {
            if (rng.uniform() < 0.3) qc.t(q);
        }
    }
    return qc;
}

void
expectAmplitudesEqual(const Statevector& a, const Statevector& b,
                      double tol)
{
    ASSERT_EQ(a.amplitudes().dim(), b.amplitudes().dim());
    for (uint64_t i = 0; i < a.amplitudes().dim(); ++i) {
        EXPECT_NEAR(std::abs(a.amplitudes()[i] - b.amplitudes()[i]),
                    0.0, tol)
            << "amplitude " << i;
    }
}

TEST(FusionTest, FusedMatchesUnfusedAmplitudes)
{
    for (int n : {2, 3, 5, 7}) {
        for (int max_qubits : {2, 3}) {
            const QuantumCircuit qc = randomLayers(n, 4, 17 + n);
            const Statevector reference =
                finalState(qc, FusionOptions{false, 2}, false);
            const Statevector fused = finalState(
                qc, FusionOptions{true, max_qubits}, true);
            expectAmplitudesEqual(reference, fused, 1e-12);
        }
    }
}

TEST(FusionTest, ScalarAndSimdKernelsAgree)
{
    const QuantumCircuit qc = randomLayers(6, 5, 23);
    const Statevector scalar =
        finalState(qc, FusionOptions{true, 2}, false);
    const Statevector simd =
        finalState(qc, FusionOptions{true, 2}, true);
    expectAmplitudesEqual(scalar, simd, 1e-12);
}

TEST(FusionTest, PassReducesGateCount)
{
    const QuantumCircuit qc = randomLayers(6, 4, 5);
    const FusedProgram prog = fuseCircuit(qc, FusionOptions{true, 2});
    EXPECT_EQ(prog.stats.gates_in, qc.size());
    EXPECT_LT(prog.stats.gates_out, prog.stats.gates_in);
    EXPECT_GE(prog.stats.fused_groups, 1u);
    EXPECT_GE(prog.stats.max_group, 2u);
    EXPECT_LT(prog.stats.ratio(), 1.0);

    size_t kernel_total = 0;
    for (const auto& [name, count] : prog.stats.kernel_counts) {
        kernel_total += count;
    }
    EXPECT_EQ(kernel_total, prog.stats.gates_out);
}

TEST(FusionTest, BarrierIsAFusionBoundary)
{
    QuantumCircuit qc(1);
    qc.t(0);
    qc.barrier();
    qc.t(0);
    const FusedProgram prog = fuseCircuit(qc, FusionOptions{true, 2});
    EXPECT_EQ(prog.stats.gates_out, 2u);
    EXPECT_EQ(prog.stats.fused_groups, 0u);
    ASSERT_EQ(prog.instructions.size(), 3u);
    EXPECT_EQ(prog.instructions[1].type, OpType::kBarrier);

    // Without the barrier the same pair fuses into one kernel.
    QuantumCircuit open(1);
    open.t(0);
    open.t(0);
    EXPECT_EQ(fuseCircuit(open, FusionOptions{true, 2})
                  .stats.gates_out,
              1u);
}

TEST(FusionTest, MeasureAndResetAreFusionBoundaries)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.measure(0, 0);
    qc.h(0);
    qc.reset(1);
    qc.h(0);
    const auto& instrs = qc.instructions();
    const FusedProgram prog =
        fuseInstructions(instrs, 0, instrs.size(),
                         FusionOptions{true, 2});
    // Every h(0) is pinned by a boundary: nothing fuses.
    EXPECT_EQ(prog.stats.gates_out, 3u);
    EXPECT_EQ(prog.stats.fused_groups, 0u);
    ASSERT_EQ(prog.instructions.size(), instrs.size());
    for (size_t i = 0; i < instrs.size(); ++i) {
        EXPECT_EQ(prog.instructions[i].type, instrs[i].type);
    }
}

TEST(FusionTest, GatesWiderThanLimitPassThrough)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.ccx(0, 1, 2);
    qc.h(0);
    const FusedProgram prog = fuseCircuit(qc, FusionOptions{true, 2});
    EXPECT_EQ(prog.stats.gates_out, 3u);
    bool found = false;
    for (const Instruction& instr : prog.instructions) {
        if (instr.name == "ccx") found = true;
    }
    EXPECT_TRUE(found);

    // Stretch mode folds the whole run into one 8x8 kernel.
    const FusedProgram wide = fuseCircuit(qc, FusionOptions{true, 3});
    EXPECT_EQ(wide.stats.gates_out, 1u);
    const Statevector reference =
        finalState(qc, FusionOptions{false, 2}, false);
    const Statevector fused =
        finalState(qc, FusionOptions{true, 3}, true);
    expectAmplitudesEqual(reference, fused, 1e-12);
}

TEST(FusionTest, DisjointOneQubitRunsShareAKernel)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.h(1);
    const FusedProgram prog = fuseCircuit(qc, FusionOptions{true, 2});
    EXPECT_EQ(prog.stats.gates_out, 1u);
    ASSERT_EQ(prog.instructions.size(), 1u);
    EXPECT_EQ(prog.instructions[0].qubits.size(), 2u);
    const Statevector reference =
        finalState(qc, FusionOptions{false, 2}, false);
    const Statevector fused = finalState(qc, FusionOptions{true, 2});
    expectAmplitudesEqual(reference, fused, 1e-12);
}

TEST(FusionTest, KrausNoiseKeepsTheNoisyStreamUnfused)
{
    QuantumCircuit qc(4, 4);
    std::vector<int> ident{0, 1, 2, 3};
    qc.compose(randomLayers(4, 3, 31), ident);
    qc.measureAll();

    const NoiseModel noise = NoiseModel::depolarizing(1e-2, 2e-2);
    SimOptions fused;
    fused.shots = 512;
    fused.seed = 99;
    fused.num_threads = 1;
    fused.noise = &noise;
    SimOptions unfused = fused;
    unfused.fusion = false;

    // With per-gate Kraus channels the engine must replay the raw
    // stream either way, so the trajectories consume identical RNG
    // draws and the counts match bit-for-bit.
    const Counts a = runShotsStatevector(qc, fused);
    const Counts b = runShotsStatevector(qc, unfused);
    EXPECT_EQ(a.map, b.map);

    // And the executor reports that nothing past the split fused.
    const ShotExecutor executor(qc, &noise, false, FusionOptions{},
                                true);
    EXPECT_EQ(executor.plan().split, 0u);
    EXPECT_EQ(executor.fusionStats().fused_groups, 0u);
}

TEST(FusionTest, CountsAreBitIdenticalAcrossThreadCounts)
{
    // Mid-circuit measurement defeats the terminal-sampling fast path,
    // so every shot replays the (fused) suffix.
    QuantumCircuit qc(6, 6);
    std::vector<int> ident{0, 1, 2, 3, 4, 5};
    qc.compose(randomLayers(6, 2, 7), ident);
    qc.measure(0, 0);
    qc.compose(randomLayers(6, 1, 8), ident);
    qc.measureAll();

    SimOptions options;
    options.shots = 1024;
    options.seed = 4242;

    options.num_threads = 1;
    const Counts one = runShotsStatevector(qc, options);
    for (int threads : {2, 8}) {
        options.num_threads = threads;
        const Counts many = runShotsStatevector(qc, options);
        EXPECT_EQ(one.map, many.map) << threads << " threads";
        EXPECT_EQ(one.shots, many.shots);
    }

    // The unfused reference samples the same outcomes for this seed.
    options.num_threads = 1;
    options.fusion = false;
    EXPECT_EQ(one.map, runShotsStatevector(qc, options).map);
}

TEST(FusionTest, DensityBackendFusedMatchesUnfused)
{
    QuantumCircuit qc(4, 4);
    std::vector<int> ident{0, 1, 2, 3};
    qc.compose(randomLayers(4, 3, 13), ident);
    qc.measureAll();

    SimOptions options;
    options.shots = 512;
    options.seed = 7;
    options.num_threads = 1;
    options.backend = BackendRequest::kDensityMatrix;
    const Counts fused =
        backend::backendFor(BackendKind::kDensityMatrix)
            .runShots(qc, options);
    options.fusion = false;
    const Counts unfused =
        backend::backendFor(BackendKind::kDensityMatrix)
            .runShots(qc, options);
    EXPECT_EQ(fused.map, unfused.map);
}

TEST(KernelClassTest, RecognizesGateStructure)
{
    QuantumCircuit qc(2);
    qc.z(0);
    qc.x(0);
    qc.h(0);
    qc.cz(0, 1);
    qc.cx(0, 1);
    qc.swap(0, 1);
    const auto& instrs = qc.instructions();
    EXPECT_EQ(classifyKernel(instrs[0].matrix),
              KernelClass::kDiagonal1q);
    EXPECT_EQ(classifyKernel(instrs[1].matrix),
              KernelClass::kPermutation1q);
    EXPECT_EQ(classifyKernel(instrs[2].matrix),
              KernelClass::kGeneral1q);
    EXPECT_EQ(classifyKernel(instrs[3].matrix),
              KernelClass::kDiagonal2q);
    EXPECT_EQ(classifyKernel(instrs[4].matrix),
              KernelClass::kControlled1q);
    EXPECT_EQ(classifyKernel(instrs[5].matrix),
              KernelClass::kPermutation2q);

    QuantumCircuit three(3);
    three.ccx(0, 1, 2);
    EXPECT_EQ(classifyKernel(three.instructions()[0].matrix),
              KernelClass::kGeneral3q);
}

TEST(KernelClassTest, ControlOnEitherLocalQubitIsRecognized)
{
    // cx(1, 0): the control is the local LSB after the MSB-first
    // operand ordering — the dispatcher must still find the I (+) U
    // block structure.
    QuantumCircuit qc(2);
    qc.cx(1, 0);
    EXPECT_EQ(classifyKernel(qc.instructions()[0].matrix),
              KernelClass::kControlled1q);

    const Statevector reference =
        finalState(qc, FusionOptions{false, 2}, false);
    const Statevector fused = finalState(qc, FusionOptions{true, 2});
    expectAmplitudesEqual(reference, fused, 1e-12);
}

TEST(KernelDispatchTest, SimdAvailabilityIsConsistent)
{
    // simdAvailable implies simdCompiledIn; both are stable across
    // calls (cached cpuid).
    if (simdAvailable()) {
        EXPECT_TRUE(simdCompiledIn());
    }
    EXPECT_EQ(simdAvailable(), simdAvailable());
}

TEST(KernelDispatchTest, ExpandToUnionEmbedsIdentityOnRestQubits)
{
    // Expanding h on qubit 1 into the {0, 1} union and applying the
    // 4x4 must equal applying h directly.
    QuantumCircuit direct(2);
    direct.h(1);
    direct.cx(0, 1);

    const Instruction& h = direct.instructions()[0];
    const CMatrix wide = expandToUnion(h.matrix, h.qubits, {0, 1});
    QuantumCircuit embedded(2);
    embedded.unitary(wide, {0, 1});
    embedded.cx(0, 1);

    expectAmplitudesEqual(
        finalState(direct, FusionOptions{false, 2}, false),
        finalState(embedded, FusionOptions{false, 2}, false), 1e-12);
}

} // namespace
} // namespace qa
