/**
 * @file
 * Unit tests for the simulators: statevector evolution, measurement and
 * collapse, exact branching distributions, density-matrix evolution,
 * Kraus channels, noise, and cross-backend agreement.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/stdgates.hpp"
#include "common/error.hpp"
#include "linalg/states.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"
#include "test_util.hpp"

namespace qa
{
namespace
{

using test::expectMatrixNear;
using test::expectVectorNear;

TEST(StatevectorTest, GroundStateAndSingleGate)
{
    Statevector sv(2);
    EXPECT_EQ(sv.amplitudes()[0], Complex(1.0));
    sv.applyMatrix(gates::x(), {1});
    EXPECT_EQ(sv.amplitudes()[1], Complex(1.0)); // |01>
    sv.applyMatrix(gates::x(), {0});
    EXPECT_EQ(sv.amplitudes()[3], Complex(1.0)); // |11>
}

TEST(StatevectorTest, QubitOrderingMsbFirst)
{
    // X on qubit 0 must set the MOST significant bit.
    Statevector sv(3);
    sv.applyMatrix(gates::x(), {0});
    EXPECT_EQ(sv.amplitudes()[4], Complex(1.0));
}

TEST(StatevectorTest, TwoQubitGateOnArbitraryPair)
{
    // CX with control 2, target 0 on a 3-qubit register.
    Statevector sv(3);
    sv.applyMatrix(gates::x(), {2}); // |001>
    sv.applyMatrix(gates::cx(), {2, 0});
    EXPECT_EQ(sv.amplitudes()[5], Complex(1.0)); // |101>
}

TEST(StatevectorTest, MatchesDenseMatrixReference)
{
    // Random circuit applied gate-by-gate must equal the dense product.
    Rng rng(41);
    for (int trial = 0; trial < 5; ++trial) {
        const int n = 3;
        Statevector sv(n);
        CMatrix dense = CMatrix::identity(8);
        for (int g = 0; g < 6; ++g) {
            if (rng.bernoulli(0.5)) {
                int q = int(rng.index(n));
                CMatrix u = randomUnitary(2, rng);
                sv.applyMatrix(u, {q});
                CMatrix full = CMatrix::identity(1);
                for (int i = 0; i < n; ++i) {
                    full = kron(full, i == q ? u : CMatrix::identity(2));
                }
                dense = full * dense;
            } else {
                int a = int(rng.index(n));
                int b = (a + 1 + int(rng.index(n - 1))) % n;
                CMatrix u = randomUnitary(4, rng);
                sv.applyMatrix(u, {a, b});
                // Build the embedded matrix by explicit index mapping.
                CMatrix full(8, 8);
                for (size_t r = 0; r < 8; ++r) {
                    for (size_t c = 0; c < 8; ++c) {
                        auto sub = [&](size_t idx) {
                            size_t ba = (idx >> (n - 1 - a)) & 1;
                            size_t bb = (idx >> (n - 1 - b)) & 1;
                            return ba * 2 + bb;
                        };
                        auto rest = [&](size_t idx) {
                            return idx & ~((size_t(1) << (n - 1 - a)) |
                                           (size_t(1) << (n - 1 - b)));
                        };
                        if (rest(r) != rest(c)) {
                            full(r, c) = 0.0;
                        } else {
                            full(r, c) = u(sub(r), sub(c));
                        }
                    }
                }
                dense = full * dense;
            }
        }
        CVector expected = dense * CVector::basisState(8, 0);
        expectVectorNear(sv.amplitudes(), expected, 1e-9);
    }
}

TEST(StatevectorTest, ProbabilityAndCollapse)
{
    Statevector sv(2);
    sv.applyMatrix(gates::h(), {0});
    sv.applyMatrix(gates::cx(), {0, 1});
    EXPECT_NEAR(sv.probabilityOne(0), 0.5, 1e-12);
    sv.collapse(0, 1);
    EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1.0, 1e-12); // |11>
    EXPECT_THROW(sv.collapse(0, 0), UserError); // zero-probability branch
}

TEST(StatevectorTest, MeasurementStatistics)
{
    QuantumCircuit qc(1, 1);
    qc.h(0);
    qc.measure(0, 0);
    Counts counts = runShots(qc, SimOptions{20000, 7, nullptr});
    EXPECT_NEAR(counts.fraction([](const std::string& b) {
        return b == "1";
    }), 0.5, 0.02);
}

TEST(StatevectorTest, ReducedDensity)
{
    Statevector sv(2);
    sv.applyMatrix(gates::h(), {0});
    sv.applyMatrix(gates::cx(), {0, 1});
    CMatrix rho = sv.reducedDensity(0);
    EXPECT_NEAR(rho(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(rho(0, 1)), 0.0, 1e-12);
}

TEST(StatevectorTest, ExactDistributionBellPair)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    qc.measureAll();
    Distribution d = exactDistribution(qc);
    EXPECT_NEAR(d.probability("00"), 0.5, 1e-12);
    EXPECT_NEAR(d.probability("11"), 0.5, 1e-12);
    EXPECT_NEAR(d.probability("01"), 0.0, 1e-12);
}

TEST(StatevectorTest, ExactDistributionMidCircuitMeasure)
{
    // Measure then use the collapsed qubit: teleport-like correlation.
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.measure(0, 0);
    qc.cx(0, 1);
    qc.measure(1, 1);
    Distribution d = exactDistribution(qc);
    EXPECT_NEAR(d.probability("00"), 0.5, 1e-12);
    EXPECT_NEAR(d.probability("11"), 0.5, 1e-12);
}

TEST(StatevectorTest, ResetBranches)
{
    QuantumCircuit qc(1, 1);
    qc.h(0);
    qc.reset(0);
    qc.measure(0, 0);
    Distribution d = exactDistribution(qc);
    EXPECT_NEAR(d.probability("0"), 1.0, 1e-12);
}

TEST(StatevectorTest, SampledMatchesExact)
{
    QuantumCircuit qc(3, 3);
    qc.h(0);
    qc.cx(0, 1);
    qc.u3(2, 1.1, 0.3, 0.2);
    qc.cx(2, 1);
    qc.measureAll();
    Distribution exact = exactDistribution(qc);
    Counts counts = runShots(qc, SimOptions{40000, 99, nullptr});
    for (const auto& [bits, p] : exact.probs) {
        EXPECT_NEAR(counts.toDistribution().probability(bits), p, 0.02)
            << bits;
    }
}

TEST(KrausTest, ChannelValidation)
{
    EXPECT_THROW(KrausChannel("bad", {gates::h() * Complex(0.5, 0.0)}),
                 UserError);
    EXPECT_NO_THROW(KrausChannel::depolarizing(0.1));
    EXPECT_THROW(KrausChannel::depolarizing(1.5), UserError);
}

TEST(KrausTest, AmplitudeDampingFixedPoint)
{
    // |0> is a fixed point of amplitude damping.
    DensityState state(1);
    state.applyKraus(KrausChannel::amplitudeDamping(0.3), 0);
    EXPECT_NEAR(state.rho()(0, 0).real(), 1.0, 1e-12);

    // |1> decays toward |0> with probability gamma.
    DensityState one(densityFromPure(CVector::basisState(2, 1)));
    one.applyKraus(KrausChannel::amplitudeDamping(0.3), 0);
    EXPECT_NEAR(one.rho()(0, 0).real(), 0.3, 1e-12);
    EXPECT_NEAR(one.rho()(1, 1).real(), 0.7, 1e-12);
}

TEST(KrausTest, DepolarizingShrinksBloch)
{
    DensityState plus(densityFromPure(
        CVector{1.0 / std::sqrt(2), 1.0 / std::sqrt(2)}));
    plus.applyKraus(KrausChannel::depolarizing(0.3), 0);
    // Off-diagonal shrinks by (1 - 4p/3 + ...) = 1 - 2*2p/3.
    EXPECT_LT(std::abs(plus.rho()(0, 1)), 0.5);
    EXPECT_NEAR(plus.rho()(0, 0).real(), 0.5, 1e-12);
}

TEST(DensityTest, PureCircuitMatchesStatevector)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.cx(0, 1);
    qc.u3(2, 0.4, 0.8, 1.2);
    qc.cz(1, 2);
    CMatrix rho = finalDensity(qc);
    CMatrix expected = densityFromPure(finalState(qc).amplitudes());
    expectMatrixNear(rho, expected, 1e-9);
}

TEST(DensityTest, ExactDistributionAgreesWithStatevector)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    qc.cx(0, 1);
    qc.measure(0, 0);
    qc.h(1);
    qc.measure(1, 1);
    Distribution sv = exactDistribution(qc);
    Distribution dm = exactDistributionDM(qc);
    for (const auto& [bits, p] : sv.probs) {
        EXPECT_NEAR(dm.probability(bits), p, 1e-9) << bits;
    }
}

TEST(DensityTest, TrajectoryNoiseMatchesExactChannel)
{
    // Statevector trajectory sampling must converge to the DM channel.
    QuantumCircuit qc(1, 1);
    qc.h(0);
    qc.h(0); // two gates => two noise applications
    qc.measure(0, 0);

    NoiseModel noise = NoiseModel::depolarizing(0.2, 0.0);
    Distribution exact = exactDistributionDM(qc, &noise);
    Counts sampled = runShots(qc, SimOptions{60000, 5, &noise});
    EXPECT_NEAR(sampled.toDistribution().probability("1"),
                exact.probability("1"), 0.01);
}

TEST(DensityTest, ReadoutErrorAsymmetry)
{
    NoiseModel noise;
    noise.readout_p01 = 0.1;
    noise.readout_p10 = 0.3;

    QuantumCircuit zero(1, 1);
    zero.measure(0, 0);
    Distribution d0 = exactDistributionDM(zero, &noise);
    EXPECT_NEAR(d0.probability("1"), 0.1, 1e-9);

    QuantumCircuit one(1, 1);
    one.x(0);
    one.measure(0, 0);
    Distribution d1 = exactDistributionDM(one, &noise);
    EXPECT_NEAR(d1.probability("0"), 0.3, 1e-9);
}

TEST(DensityTest, CollapseNormalizes)
{
    DensityState state(2);
    state.applyMatrix(gates::h(), {0});
    state.applyMatrix(gates::cx(), {0, 1});
    EXPECT_NEAR(state.probabilityOne(1), 0.5, 1e-12);
    state.collapse(1, 1);
    test::expectComplexNear(state.rho().trace(), Complex(1.0), 1e-10);
    EXPECT_NEAR(state.rho()(3, 3).real(), 1.0, 1e-10);
}

TEST(ResultTest, MarginalAndPredicates)
{
    Counts counts;
    counts.shots = 10;
    counts.map["010"] = 4;
    counts.map["110"] = 6;
    Counts marg = marginalCounts(counts, {1, 2});
    EXPECT_EQ(marg.map.at("10"), 10);
    EXPECT_NEAR(counts.fractionAllZero({2}), 1.0, 1e-12);
    EXPECT_NEAR(counts.fractionAllZero({0}), 0.4, 1e-12);

    Distribution dist;
    dist.probs["01"] = 0.25;
    dist.probs["00"] = 0.75;
    EXPECT_NEAR(dist.allZero({0}), 1.0, 1e-12);
    EXPECT_NEAR(dist.allZero({1}), 0.75, 1e-12);
    Distribution dmarg = marginalDistribution(dist, {1});
    EXPECT_NEAR(dmarg.probability("1"), 0.25, 1e-12);
}

TEST(ResultTest, MergeCountsSumsEntriesAndShots)
{
    Counts a;
    a.shots = 3;
    a.map["00"] = 2;
    a.map["01"] = 1;
    Counts b;
    b.shots = 4;
    b.map["01"] = 3;
    b.map["11"] = 1;

    mergeCounts(a, b);
    EXPECT_EQ(a.shots, 7);
    EXPECT_EQ(a.map.at("00"), 2);
    EXPECT_EQ(a.map.at("01"), 4);
    EXPECT_EQ(a.map.at("11"), 1);
    EXPECT_FALSE(a.truncated);

    // Merging an empty source is a no-op.
    mergeCounts(a, Counts{});
    EXPECT_EQ(a.shots, 7);
    EXPECT_EQ(a.map.size(), 3u);
}

TEST(ResultTest, MergeCountsOrsTruncatedFlag)
{
    Counts full;
    full.shots = 5;
    full.map["0"] = 5;
    Counts cut;
    cut.shots = 2;
    cut.map["1"] = 2;
    cut.truncated = true;

    // Either merge order leaves the result marked truncated.
    Counts lhs = full;
    mergeCounts(lhs, cut);
    EXPECT_TRUE(lhs.truncated);
    EXPECT_EQ(lhs.shots, 7);

    Counts rhs = cut;
    mergeCounts(rhs, full);
    EXPECT_TRUE(rhs.truncated);
    EXPECT_EQ(rhs.shots, 7);
}

TEST(ResultTest, MarginalCountsPropagatesTruncated)
{
    Counts counts;
    counts.shots = 4;
    counts.truncated = true;
    counts.map["01"] = 4;
    const Counts marg = marginalCounts(counts, {1});
    EXPECT_TRUE(marg.truncated);
    EXPECT_EQ(marg.shots, 4);
    EXPECT_EQ(marg.map.at("1"), 4);
}

TEST(NoiseTest, PresetsEnabled)
{
    EXPECT_FALSE(NoiseModel{}.enabled());
    EXPECT_TRUE(NoiseModel::ibmqMelbourneLike().enabled());
    EXPECT_TRUE(NoiseModel::depolarizing(0.01, 0.05).enabled());
}

} // namespace
} // namespace qa
