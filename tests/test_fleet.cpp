/**
 * @file
 * Tests for the fleet layer (src/fleet): consistent-hash ring edge
 * cases (single shard, all shards down, flap-and-recover affinity,
 * distribution uniformity), the shard health state machine, the
 * exactly-once pending table, child-process line plumbing, and — when
 * the qassertd binary is available — FleetRouter integration against
 * real shard processes, including SIGKILL failover and the typed
 * all-shards-down error.
 */
#include <signal.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "fleet/health.hpp"
#include "fleet/pending.hpp"
#include "fleet/process.hpp"
#include "fleet/ring.hpp"
#include "fleet/router.hpp"
#include "serve/job.hpp"
#include "serve/json.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace fleet
{
namespace
{

uint64_t
splitmix64(uint64_t& state)
{
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

Hash128
randomKey(uint64_t& state)
{
    Hash128 key;
    key.hi = splitmix64(state);
    key.lo = splitmix64(state);
    return key;
}

// ---------------------------------------------------------------- ring

TEST(RingTest, SingleShardOwnsEverything)
{
    const HashRing ring(1);
    uint64_t state = 1;
    for (int i = 0; i < 100; ++i) {
        const Hash128 key = randomKey(state);
        EXPECT_EQ(ring.shardFor(key), 0u);
        const auto routed = ring.route(key, [](size_t) { return true; });
        ASSERT_TRUE(routed.has_value());
        EXPECT_EQ(*routed, 0u);
        EXPECT_EQ(ring.preferenceChain(key),
                  std::vector<size_t>{0});
    }
}

TEST(RingTest, ZeroShardsIsATypedError)
{
    EXPECT_THROW(HashRing(0), UserError);
}

TEST(RingTest, AllShardsDownRoutesToNothingNotForever)
{
    const HashRing ring(4);
    uint64_t state = 2;
    for (int i = 0; i < 50; ++i) {
        const auto routed =
            ring.route(randomKey(state), [](size_t) { return false; });
        EXPECT_FALSE(routed.has_value());
    }
}

TEST(RingTest, FlapRestoresAffinity)
{
    const HashRing ring(4);
    uint64_t state = 3;
    for (int i = 0; i < 200; ++i) {
        const Hash128 key = randomKey(state);
        const size_t home = ring.shardFor(key);
        const std::vector<size_t> chain = ring.preferenceChain(key);
        ASSERT_EQ(chain.size(), 4u);
        EXPECT_EQ(chain[0], home);

        // Home goes down: the key spills to the first chain successor.
        const auto spilled = ring.route(
            key, [&](size_t shard) { return shard != home; });
        ASSERT_TRUE(spilled.has_value());
        EXPECT_NE(*spilled, home);
        EXPECT_EQ(*spilled, chain[1]);

        // Home recovers: the very same key routes home again — cache
        // affinity restored by construction, not by bookkeeping.
        const auto recovered =
            ring.route(key, [](size_t) { return true; });
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(*recovered, home);
    }
}

TEST(RingTest, PreferenceChainListsEveryShardOnce)
{
    const HashRing ring(8);
    uint64_t state = 4;
    for (int i = 0; i < 50; ++i) {
        const std::vector<size_t> chain =
            ring.preferenceChain(randomKey(state));
        ASSERT_EQ(chain.size(), 8u);
        EXPECT_EQ(std::set<size_t>(chain.begin(), chain.end()).size(), 8u);
    }
}

TEST(RingTest, DistributionIsRoughlyUniformAcrossShardCounts)
{
    // jobKey output is uniform by construction (it is a hash); the ring
    // must not concentrate it. With 64 vnodes per shard the max/min
    // share stays well within ±45% of the mean for every fleet size the
    // smoke tests run.
    for (const size_t shards : {size_t(2), size_t(4), size_t(8)}) {
        const HashRing ring(shards);
        std::vector<size_t> hits(shards, 0);
        uint64_t state = 0xD15C0 + shards;
        const size_t keys = 20000;
        for (size_t i = 0; i < keys; ++i) {
            hits[ring.shardFor(randomKey(state))]++;
        }
        const double mean = double(keys) / double(shards);
        for (size_t s = 0; s < shards; ++s) {
            EXPECT_GT(double(hits[s]), 0.55 * mean)
                << shards << " shards, shard " << s;
            EXPECT_LT(double(hits[s]), 1.45 * mean)
                << shards << " shards, shard " << s;
        }
    }
}

TEST(RingTest, LayoutIsDeterministicAcrossInstances)
{
    // Same parameters => same mapping, so affinity survives a router
    // restart (and a respawned router finds the same cache-warm shards).
    const HashRing a(5), b(5);
    uint64_t state = 6;
    for (int i = 0; i < 200; ++i) {
        const Hash128 key = randomKey(state);
        EXPECT_EQ(a.shardFor(key), b.shardFor(key));
        EXPECT_EQ(a.preferenceChain(key), b.preferenceChain(key));
    }
}

// -------------------------------------------------------------- health

TEST(HealthTest, FailureStreakTakesAShardDownRecoveryBringsItBack)
{
    HealthTracker health; // fail_threshold 3, recover_threshold 2
    EXPECT_EQ(health.state(), ShardHealth::kUp);

    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDegraded);

    // A success clears the streak: degraded is sticky only while
    // failures keep coming.
    health.onSuccess();
    EXPECT_EQ(health.state(), ShardHealth::kUp);

    health.onFailure();
    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDegraded);
    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    EXPECT_EQ(health.downTransitions(), 1u);

    // One pong is not recovery.
    health.onSuccess();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    health.onSuccess();
    EXPECT_EQ(health.state(), ShardHealth::kUp);
}

TEST(HealthTest, ProcessExitIsImmediatelyDown)
{
    HealthTracker health;
    health.onProcessExit();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    EXPECT_EQ(health.downTransitions(), 1u);

    // Interleaved failures must not double-count the transition.
    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    EXPECT_EQ(health.downTransitions(), 1u);
}

// ------------------------------------------------------------- pending

TEST(PendingTest, ResolveThroughAnyAliasIsExactlyOnce)
{
    PendingTable table;
    serve::JsonValue request = serve::JsonValue::parse("{\"op\":\"run\"}");
    const PendingPtr job =
        table.add("client-1", std::move(request), Hash128{}, 0.0, {0, 1},
                  Clock::TimePoint{});
    const std::string first = table.issueAlias(job);
    const std::string hedge = table.issueAlias(job);
    EXPECT_NE(first, hedge);
    EXPECT_EQ(table.find(first).get(), job.get());
    EXPECT_EQ(table.find(hedge).get(), job.get());
    EXPECT_EQ(table.size(), 1u);

    // First response wins...
    EXPECT_EQ(table.resolve(hedge).get(), job.get());
    EXPECT_EQ(table.size(), 0u);
    // ...and every other alias of the job is dead: the hedge loser is a
    // stray, not a second client response.
    EXPECT_EQ(table.resolve(first), nullptr);
    EXPECT_EQ(table.resolve(hedge), nullptr);
    EXPECT_EQ(table.find(first), nullptr);
}

TEST(PendingTest, EraseDropsJobsThatNeverDispatched)
{
    PendingTable table;
    const PendingPtr job =
        table.add("c", serve::JsonValue::parse("{}"), Hash128{}, 0.0, {0},
                  Clock::TimePoint{});
    EXPECT_EQ(table.size(), 1u);
    table.erase(job);
    EXPECT_EQ(table.size(), 0u);
}

TEST(PendingTest, OnShardFindsOutstandingDispatches)
{
    PendingTable table;
    const PendingPtr a =
        table.add("a", serve::JsonValue::parse("{}"), Hash128{}, 0.0,
                  {0, 1}, Clock::TimePoint{});
    const PendingPtr b =
        table.add("b", serve::JsonValue::parse("{}"), Hash128{}, 0.0,
                  {1, 0}, Clock::TimePoint{});
    a->awaiting = {0};
    b->awaiting = {1};
    EXPECT_EQ(table.onShard(0).size(), 1u);
    EXPECT_EQ(table.onShard(0)[0].get(), a.get());
    EXPECT_EQ(table.onShard(1)[0].get(), b.get());
    EXPECT_TRUE(table.onShard(2).empty());
}

// ------------------------------------------------------------- process

TEST(ProcessTest, EchoRoundTripAndEofDrain)
{
    ChildProcess cat({"/bin/cat"});
    ASSERT_TRUE(cat.writeLine("hello fleet"));
    LineReader reader(cat.readFd());
    std::string line;
    ASSERT_EQ(reader.next(&line), LineReader::Status::kOk);
    EXPECT_EQ(line, "hello fleet");

    // EOF on stdin drains cat; its stdout EOF follows.
    cat.closeStdin();
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
    for (int i = 0; i < 200 && !cat.tryReap(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(cat.reaped());
}

TEST(ProcessTest, OverlongLinesAreBoundedNotBuffered)
{
    ChildProcess cat({"/bin/cat"});
    ASSERT_TRUE(cat.writeLine(std::string(300, 'x')));
    ASSERT_TRUE(cat.writeLine("short"));
    cat.closeStdin();
    LineReader reader(cat.readFd(), 64);
    std::string line;
    EXPECT_EQ(reader.next(&line), LineReader::Status::kOverflow);
    ASSERT_EQ(reader.next(&line), LineReader::Status::kOk);
    EXPECT_EQ(line, "short"); // stream stayed line-synchronised
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
}

TEST(ProcessTest, ExecFailureIsImmediateEofNotAHang)
{
    ChildProcess broken({"/nonexistent/binary/for/sure"});
    LineReader reader(broken.readFd());
    std::string line;
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
}

// ---------------------------------------------- router (real qassertd)

#ifdef QA_QASSERTD_BIN

/** Thread-safe collector for router-emitted response lines. */
struct Collector
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::string> lines;

    FleetRouter::Emit
    sink()
    {
        return [this](const std::string& line) {
            std::lock_guard<std::mutex> lock(mutex);
            lines.push_back(line);
            cv.notify_all();
        };
    }

    bool
    waitForCount(size_t n, double timeout_ms)
    {
        std::unique_lock<std::mutex> lock(mutex);
        return cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(timeout_ms),
            [&] { return lines.size() >= n; });
    }

    std::vector<std::string>
    snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return lines;
    }
};

std::string
ghzRequest(const std::string& id, int width, uint64_t seed)
{
    std::string qasm = "OPENQASM 2.0;\nqreg q[" + std::to_string(width) +
                       "];\ncreg c[" + std::to_string(width) +
                       "];\nh q[0];\n";
    for (int k = 1; k < width; ++k) {
        qasm += "cx q[0],q[" + std::to_string(k) + "];\n";
    }
    for (int k = 0; k < width; ++k) {
        qasm += "measure q[" + std::to_string(k) + "] -> c[" +
                std::to_string(k) + "];\n";
    }
    return "{\"id\":\"" + id + "\",\"qasm\":\"" + serve::jsonEscape(qasm) +
           "\",\"shots\":64,\"seed\":" + std::to_string(seed) +
           ",\"assert_clbits\":[[0]]}";
}

RouterOptions
fastOptions(size_t shards)
{
    RouterOptions options;
    options.shards = shards;
    options.shard_command = {QA_QASSERTD_BIN, "--workers", "1"};
    options.probe_interval_ms = 50.0;
    options.maintenance_tick_ms = 5.0;
    return options;
}

TEST(RouterTest, RoutesJobsAndAnswersWithClientIds)
{
    Collector collector;
    FleetRouter router(fastOptions(2), collector.sink());
    router.start();
    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(router.handleLine(
            ghzRequest("job-" + std::to_string(i), 2 + i % 3, 100 + i)));
    }
    EXPECT_TRUE(router.drainFor(20000.0));
    ASSERT_TRUE(collector.waitForCount(6, 5000.0));
    router.stop();

    std::set<std::string> ids;
    for (const std::string& line : collector.snapshot()) {
        std::string id;
        ASSERT_TRUE(serve::peekResponseId(line, &id)) << line;
        EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos)
            << line;
        ids.insert(id);
    }
    EXPECT_EQ(ids.size(), 6u); // every client id answered exactly once
    const FleetCounters counters = router.counters();
    EXPECT_EQ(counters.admitted, 6u);
    EXPECT_EQ(counters.resolved_ok, 6u);
}

TEST(RouterTest, AllShardsDownIsATypedErrorNotAHang)
{
    RouterOptions options;
    options.shards = 2;
    options.shard_command = {"/bin/false"}; // exits instantly, no wire
    options.respawn = false;
    options.retry.max_attempts = 2;
    options.maintenance_tick_ms = 5.0;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();
    EXPECT_TRUE(router.handleLine(ghzRequest("doomed", 2, 1)));
    EXPECT_TRUE(router.drainFor(10000.0));
    ASSERT_TRUE(collector.waitForCount(1, 5000.0));
    router.stop();

    const std::string line = collector.snapshot()[0];
    EXPECT_NE(line.find("\"id\":\"doomed\""), std::string::npos) << line;
    EXPECT_NE(line.find("no_shard_available"), std::string::npos) << line;
    EXPECT_EQ(router.counters().no_shard, 1u);
}

TEST(RouterTest, KilledShardFailsOverAndNothingIsLost)
{
    RouterOptions options = fastOptions(3);
    options.respawn = false; // keep the post-kill topology fixed
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    // Load the fleet, then SIGKILL one shard while jobs are in flight.
    const int jobs = 30;
    for (int i = 0; i < jobs; ++i) {
        EXPECT_TRUE(router.handleLine(
            ghzRequest("k" + std::to_string(i), 2 + i % 4, 500 + i)));
        if (i == 5) {
            const pid_t victim = router.shardStatus(1).pid;
            ASSERT_GT(victim, 0);
            ::kill(victim, SIGKILL);
        }
    }
    EXPECT_TRUE(router.drainFor(30000.0));
    ASSERT_TRUE(collector.waitForCount(size_t(jobs), 5000.0));
    router.stop();

    // Exactly-once at fleet scope: every id answered once, all ok
    // (failover re-executes deterministically; nothing lost, nothing
    // doubled).
    std::set<std::string> ids;
    for (const std::string& line : collector.snapshot()) {
        std::string id;
        ASSERT_TRUE(serve::peekResponseId(line, &id)) << line;
        EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos)
            << line;
        EXPECT_TRUE(ids.insert(id).second)
            << "duplicate response for " << id;
    }
    EXPECT_EQ(ids.size(), size_t(jobs));
    EXPECT_EQ(router.counters().resolved_ok, uint64_t(jobs));
    EXPECT_EQ(router.shardStatus(1).health, ShardHealth::kDown);
}

TEST(RouterTest, RespawnRestoresAffinityAfterAFlap)
{
    RouterOptions options = fastOptions(2);
    options.respawn_backoff.base_backoff_ms = 20.0;
    options.respawn_backoff.max_backoff_ms = 50.0;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    // Pick a request whose structural key homes on shard 0: the ring
    // in the router uses the same deterministic layout as a local one.
    const HashRing ring(2, options.vnodes);
    std::string line;
    size_t home = 0;
    for (uint64_t seed = 1;; ++seed) {
        line = ghzRequest("affinity", 3, seed);
        const serve::WireRequest request = serve::parseRequest(line);
        home = ring.shardFor(serve::jobKey(request.spec));
        if (home == 0) break;
    }

    EXPECT_TRUE(router.handleLine(line));
    EXPECT_TRUE(router.drainFor(20000.0));
    const uint64_t before = router.shardStatus(0).forwarded;
    EXPECT_GE(before, 1u);

    // Kill the home shard and wait for the full flap: death detected,
    // respawned, pinged back to kUp.
    ::kill(router.shardStatus(0).pid, SIGKILL);
    bool recovered = false;
    for (int i = 0; i < 1000; ++i) {
        const ShardStatus status = router.shardStatus(0);
        if (status.respawns >= 1 && status.alive &&
            status.health == ShardHealth::kUp) {
            recovered = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(recovered) << "shard 0 never recovered from the flap";
    EXPECT_GE(router.shardStatus(0).down_transitions, 1u);

    // The same structural key routes to its old home again.
    EXPECT_TRUE(router.handleLine(line));
    EXPECT_TRUE(router.drainFor(20000.0));
    router.stop();
    EXPECT_EQ(router.shardStatus(0).forwarded, before + 1);
    EXPECT_EQ(router.counters().resolved_ok, 2u);
}

#else // !QA_QASSERTD_BIN

TEST(RouterTest, DISABLED_NeedsQassertdBinary) { GTEST_SKIP(); }

#endif

} // namespace
} // namespace fleet
} // namespace qa
