/**
 * @file
 * Tests for the fleet layer (src/fleet): consistent-hash ring edge
 * cases (single shard, all shards down, flap-and-recover affinity,
 * distribution uniformity), the shard health state machine, the
 * exactly-once pending table, child-process line plumbing, and — when
 * the qassertd binary is available — FleetRouter integration against
 * real shard processes, including SIGKILL failover and the typed
 * all-shards-down error.
 */
#include <dirent.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/net.hpp"
#include "fleet/health.hpp"
#include "fleet/pending.hpp"
#include "fleet/process.hpp"
#include "fleet/ring.hpp"
#include "fleet/router.hpp"
#include "fleet/transport.hpp"
#include "serve/job.hpp"
#include "serve/json.hpp"
#include "serve/wire.hpp"

namespace qa
{
namespace fleet
{
namespace
{

uint64_t
splitmix64(uint64_t& state)
{
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

Hash128
randomKey(uint64_t& state)
{
    Hash128 key;
    key.hi = splitmix64(state);
    key.lo = splitmix64(state);
    return key;
}

// ---------------------------------------------------------------- ring

TEST(RingTest, SingleShardOwnsEverything)
{
    const HashRing ring(1);
    uint64_t state = 1;
    for (int i = 0; i < 100; ++i) {
        const Hash128 key = randomKey(state);
        EXPECT_EQ(ring.shardFor(key), 0u);
        const auto routed = ring.route(key, [](size_t) { return true; });
        ASSERT_TRUE(routed.has_value());
        EXPECT_EQ(*routed, 0u);
        EXPECT_EQ(ring.preferenceChain(key),
                  std::vector<size_t>{0});
    }
}

TEST(RingTest, ZeroShardsIsATypedError)
{
    EXPECT_THROW(HashRing(0), UserError);
}

TEST(RingTest, AllShardsDownRoutesToNothingNotForever)
{
    const HashRing ring(4);
    uint64_t state = 2;
    for (int i = 0; i < 50; ++i) {
        const auto routed =
            ring.route(randomKey(state), [](size_t) { return false; });
        EXPECT_FALSE(routed.has_value());
    }
}

TEST(RingTest, FlapRestoresAffinity)
{
    const HashRing ring(4);
    uint64_t state = 3;
    for (int i = 0; i < 200; ++i) {
        const Hash128 key = randomKey(state);
        const size_t home = ring.shardFor(key);
        const std::vector<size_t> chain = ring.preferenceChain(key);
        ASSERT_EQ(chain.size(), 4u);
        EXPECT_EQ(chain[0], home);

        // Home goes down: the key spills to the first chain successor.
        const auto spilled = ring.route(
            key, [&](size_t shard) { return shard != home; });
        ASSERT_TRUE(spilled.has_value());
        EXPECT_NE(*spilled, home);
        EXPECT_EQ(*spilled, chain[1]);

        // Home recovers: the very same key routes home again — cache
        // affinity restored by construction, not by bookkeeping.
        const auto recovered =
            ring.route(key, [](size_t) { return true; });
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(*recovered, home);
    }
}

TEST(RingTest, PreferenceChainListsEveryShardOnce)
{
    const HashRing ring(8);
    uint64_t state = 4;
    for (int i = 0; i < 50; ++i) {
        const std::vector<size_t> chain =
            ring.preferenceChain(randomKey(state));
        ASSERT_EQ(chain.size(), 8u);
        EXPECT_EQ(std::set<size_t>(chain.begin(), chain.end()).size(), 8u);
    }
}

TEST(RingTest, DistributionIsRoughlyUniformAcrossShardCounts)
{
    // jobKey output is uniform by construction (it is a hash); the ring
    // must not concentrate it. With 64 vnodes per shard the max/min
    // share stays well within ±45% of the mean for every fleet size the
    // smoke tests run.
    for (const size_t shards : {size_t(2), size_t(4), size_t(8)}) {
        const HashRing ring(shards);
        std::vector<size_t> hits(shards, 0);
        uint64_t state = 0xD15C0 + shards;
        const size_t keys = 20000;
        for (size_t i = 0; i < keys; ++i) {
            hits[ring.shardFor(randomKey(state))]++;
        }
        const double mean = double(keys) / double(shards);
        for (size_t s = 0; s < shards; ++s) {
            EXPECT_GT(double(hits[s]), 0.55 * mean)
                << shards << " shards, shard " << s;
            EXPECT_LT(double(hits[s]), 1.45 * mean)
                << shards << " shards, shard " << s;
        }
    }
}

TEST(RingTest, LayoutIsDeterministicAcrossInstances)
{
    // Same parameters => same mapping, so affinity survives a router
    // restart (and a respawned router finds the same cache-warm shards).
    const HashRing a(5), b(5);
    uint64_t state = 6;
    for (int i = 0; i < 200; ++i) {
        const Hash128 key = randomKey(state);
        EXPECT_EQ(a.shardFor(key), b.shardFor(key));
        EXPECT_EQ(a.preferenceChain(key), b.preferenceChain(key));
    }
}

// ------------------------------------------------------ weighted ring

TEST(RingTest, WeightedVnodeCountsScaleWithWeight)
{
    const HashRing ring(4, {2.0, 1.0, 1.0, 0.5}, 64);
    EXPECT_EQ(ring.vnodesOf(0), 128u);
    EXPECT_EQ(ring.vnodesOf(1), 64u);
    EXPECT_EQ(ring.vnodesOf(2), 64u);
    EXPECT_EQ(ring.vnodesOf(3), 32u);

    // A tiny weight still owns at least one position: a shard on the
    // ring is always reachable.
    const HashRing floor(2, {1.0, 0.001}, 64);
    EXPECT_EQ(floor.vnodesOf(1), 1u);
}

TEST(RingTest, UnitWeightsMatchTheUnweightedLayout)
{
    const HashRing plain(4, 64);
    const HashRing weighted(4, {1.0, 1.0, 1.0, 1.0}, 64);
    uint64_t state = 7;
    for (int i = 0; i < 300; ++i) {
        const Hash128 key = randomKey(state);
        EXPECT_EQ(plain.shardFor(key), weighted.shardFor(key));
    }
}

TEST(RingTest, ReweightMovesKeysOnlyToTheUpweightedShard)
{
    // Vnode positions depend only on (seed, shard, vnode index), so
    // raising one shard's weight adds positions for that shard and
    // leaves every other position where it was: a key either keeps its
    // owner or moves to the up-weighted shard — adaptive placement can
    // never scramble unrelated affinity.
    const HashRing before(4, 64);
    const HashRing after(4, {1.0, 1.0, 1.0, 1.25}, 64);
    uint64_t state = 8;
    size_t moved = 0;
    const size_t keys = 4000;
    for (size_t i = 0; i < keys; ++i) {
        const Hash128 key = randomKey(state);
        const size_t was = before.shardFor(key);
        const size_t now = after.shardFor(key);
        if (was != now) {
            moved++;
            EXPECT_EQ(now, 3u) << "key moved to a shard whose weight "
                                  "did not change";
        }
    }
    // Movement is proportional to the weight delta (16 of 272 vnodes),
    // not a rehash of the keyspace.
    EXPECT_LT(double(moved) / double(keys), 0.15);
}

TEST(RingTest, InvalidWeightsAreTypedErrors)
{
    EXPECT_THROW(HashRing(2, std::vector<double>{1.0}, 64), UserError);
    EXPECT_THROW(HashRing(2, {1.0, 0.0}, 64), UserError);
    EXPECT_THROW(HashRing(2, {1.0, -2.0}, 64), UserError);
}

// -------------------------------------------------------------- health

TEST(HealthTest, FailureStreakTakesAShardDownRecoveryBringsItBack)
{
    HealthTracker health; // fail_threshold 3, recover_threshold 2
    EXPECT_EQ(health.state(), ShardHealth::kUp);

    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDegraded);

    // A success clears the streak: degraded is sticky only while
    // failures keep coming.
    health.onSuccess();
    EXPECT_EQ(health.state(), ShardHealth::kUp);

    health.onFailure();
    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDegraded);
    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    EXPECT_EQ(health.downTransitions(), 1u);

    // One pong is not recovery.
    health.onSuccess();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    health.onSuccess();
    EXPECT_EQ(health.state(), ShardHealth::kUp);
}

TEST(HealthTest, ProcessExitIsImmediatelyDown)
{
    HealthTracker health;
    health.onProcessExit();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    EXPECT_EQ(health.downTransitions(), 1u);

    // Interleaved failures must not double-count the transition.
    health.onFailure();
    EXPECT_EQ(health.state(), ShardHealth::kDown);
    EXPECT_EQ(health.downTransitions(), 1u);
}

TEST(HealthTest, ProbeJitterOscillationNeverReachesDown)
{
    // Satellite: rapid up->degraded->up flapping — one dropped probe
    // followed by a good one, over and over, as network jitter produces
    // — must never accumulate into a down transition (which would
    // trigger failover and dump the shard's keyspace on its siblings).
    HealthTracker health; // fail_threshold 3
    for (int i = 0; i < 1000; ++i) {
        health.onFailure();
        EXPECT_EQ(health.state(), ShardHealth::kDegraded);
        health.onSuccess();
        EXPECT_EQ(health.state(), ShardHealth::kUp);
    }
    EXPECT_EQ(health.downTransitions(), 0u);

    // Even two failures out of every three probes stays degraded: only
    // a *consecutive* failure streak is allowed to take a shard down.
    for (int i = 0; i < 300; ++i) {
        health.onFailure();
        health.onFailure();
        health.onSuccess();
        EXPECT_NE(health.state(), ShardHealth::kDown);
    }
    EXPECT_EQ(health.downTransitions(), 0u);
}

// ------------------------------------------------------------- pending

TEST(PendingTest, ResolveThroughAnyAliasIsExactlyOnce)
{
    PendingTable table;
    serve::JsonValue request = serve::JsonValue::parse("{\"op\":\"run\"}");
    const PendingPtr job =
        table.add("client-1", std::move(request), Hash128{}, 0.0, {0, 1},
                  Clock::TimePoint{});
    const std::string first = table.issueAlias(job);
    const std::string hedge = table.issueAlias(job);
    EXPECT_NE(first, hedge);
    EXPECT_EQ(table.find(first).get(), job.get());
    EXPECT_EQ(table.find(hedge).get(), job.get());
    EXPECT_EQ(table.size(), 1u);

    // First response wins...
    EXPECT_EQ(table.resolve(hedge).get(), job.get());
    EXPECT_EQ(table.size(), 0u);
    // ...and every other alias of the job is dead: the hedge loser is a
    // stray, not a second client response.
    EXPECT_EQ(table.resolve(first), nullptr);
    EXPECT_EQ(table.resolve(hedge), nullptr);
    EXPECT_EQ(table.find(first), nullptr);
}

TEST(PendingTest, EraseDropsJobsThatNeverDispatched)
{
    PendingTable table;
    const PendingPtr job =
        table.add("c", serve::JsonValue::parse("{}"), Hash128{}, 0.0, {0},
                  Clock::TimePoint{});
    EXPECT_EQ(table.size(), 1u);
    table.erase(job);
    EXPECT_EQ(table.size(), 0u);
}

TEST(PendingTest, OnShardFindsOutstandingDispatches)
{
    PendingTable table;
    const PendingPtr a =
        table.add("a", serve::JsonValue::parse("{}"), Hash128{}, 0.0,
                  {0, 1}, Clock::TimePoint{});
    const PendingPtr b =
        table.add("b", serve::JsonValue::parse("{}"), Hash128{}, 0.0,
                  {1, 0}, Clock::TimePoint{});
    a->awaiting = {0};
    b->awaiting = {1};
    EXPECT_EQ(table.onShard(0).size(), 1u);
    EXPECT_EQ(table.onShard(0)[0].get(), a.get());
    EXPECT_EQ(table.onShard(1)[0].get(), b.get());
    EXPECT_TRUE(table.onShard(2).empty());
}

// ------------------------------------------------------------- process

TEST(ProcessTest, EchoRoundTripAndEofDrain)
{
    ChildProcess cat({"/bin/cat"});
    ASSERT_TRUE(cat.writeLine("hello fleet"));
    LineReader reader(cat.readFd());
    std::string line;
    ASSERT_EQ(reader.next(&line), LineReader::Status::kOk);
    EXPECT_EQ(line, "hello fleet");

    // EOF on stdin drains cat; its stdout EOF follows.
    cat.closeStdin();
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
    for (int i = 0; i < 200 && !cat.tryReap(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(cat.reaped());
}

TEST(ProcessTest, OverlongLinesAreBoundedNotBuffered)
{
    ChildProcess cat({"/bin/cat"});
    ASSERT_TRUE(cat.writeLine(std::string(300, 'x')));
    ASSERT_TRUE(cat.writeLine("short"));
    cat.closeStdin();
    LineReader reader(cat.readFd(), 64);
    std::string line;
    EXPECT_EQ(reader.next(&line), LineReader::Status::kOverflow);
    ASSERT_EQ(reader.next(&line), LineReader::Status::kOk);
    EXPECT_EQ(line, "short"); // stream stayed line-synchronised
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
}

TEST(ProcessTest, ExecFailureIsImmediateEofNotAHang)
{
    ChildProcess broken({"/nonexistent/binary/for/sure"});
    LineReader reader(broken.readFd());
    std::string line;
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
}

size_t
countOpenFds()
{
    size_t count = 0;
    DIR* dir = opendir("/proc/self/fd");
    if (dir == nullptr) return 0;
    while (readdir(dir) != nullptr) count++;
    closedir(dir);
    return count;
}

TEST(ProcessTest, ReapPathClosesPipeFdsNoLeakAcrossRespawns)
{
    // Satellite regression: a respawn loop (exec failures included)
    // must return every pipe fd — a leak here starves a long-lived
    // router of descriptors one flap at a time.
    const size_t before = countOpenFds();
    for (int i = 0; i < 8; ++i) {
        ChildProcess broken({"/nonexistent/binary/for/sure"});
        LineReader reader(broken.readFd());
        std::string line;
        EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
        broken.forceReap();
    }
    for (int i = 0; i < 4; ++i) {
        ChildProcess cat({"/bin/cat"});
        cat.closeStdin();
        cat.forceReap();
    }
    EXPECT_EQ(countOpenFds(), before);
}

TEST(ProcessTest, IdleReadTimeoutSurfacesInsteadOfBlockingForever)
{
    // cat echoes only what it is sent: an idle stream must surface
    // kTimeout within the bound, and the reader must stay usable.
    ChildProcess cat({"/bin/cat"});
    LineReader reader(cat.readFd(), size_t(1) << 20, 60.0);
    std::string line;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(reader.next(&line), LineReader::Status::kTimeout);
    const double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(waited_ms, 50.0);
    EXPECT_LT(waited_ms, 5000.0);

    // Bytes that arrive after a timeout are not lost.
    ASSERT_TRUE(cat.writeLine("late but intact"));
    ASSERT_EQ(reader.next(&line), LineReader::Status::kOk);
    EXPECT_EQ(line, "late but intact");
    cat.forceReap();
}

// ---------------------------------------------------------- harnesses

/** Thread-safe collector for router-emitted response lines. */
struct Collector
{
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::string> lines;

    FleetRouter::Emit
    sink()
    {
        return [this](const std::string& line) {
            std::lock_guard<std::mutex> lock(mutex);
            lines.push_back(line);
            cv.notify_all();
        };
    }

    bool
    waitForCount(size_t n, double timeout_ms)
    {
        std::unique_lock<std::mutex> lock(mutex);
        return cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(timeout_ms),
            [&] { return lines.size() >= n; });
    }

    std::vector<std::string>
    snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return lines;
    }
};

std::string
ghzRequest(const std::string& id, int width, uint64_t seed)
{
    std::string qasm = "OPENQASM 2.0;\nqreg q[" + std::to_string(width) +
                       "];\ncreg c[" + std::to_string(width) +
                       "];\nh q[0];\n";
    for (int k = 1; k < width; ++k) {
        qasm += "cx q[0],q[" + std::to_string(k) + "];\n";
    }
    for (int k = 0; k < width; ++k) {
        qasm += "measure q[" + std::to_string(k) + "] -> c[" +
                std::to_string(k) + "];\n";
    }
    return "{\"id\":\"" + id + "\",\"qasm\":\"" + serve::jsonEscape(qasm) +
           "\",\"shots\":64,\"seed\":" + std::to_string(seed) +
           ",\"assert_clbits\":[[0]]}";
}

/** A ghzRequest whose structural jobKey homes on `home` of `shards`. */
std::string
requestHomedOn(size_t home, size_t shards, size_t vnodes,
               const std::string& id)
{
    const HashRing ring(shards, vnodes);
    for (uint64_t seed = 1;; ++seed) {
        const std::string line = ghzRequest(id, 3, seed);
        const serve::WireRequest request = serve::parseRequest(line);
        if (ring.shardFor(serve::jobKey(request.spec)) == home) {
            return line;
        }
    }
}

/**
 * In-test remote shard: a real TCP listener speaking just enough of the
 * qassertd wire protocol for router tests — pongs with a configurable
 * queue depth, scripted shedding, scripted response swallowing — so the
 * TCP fleet path is testable without a daemon binary or real jobs.
 */
class FakeTcpShard
{
  public:
    struct Behavior
    {
        size_t queue_depth = 0;   ///< Reported in every pong.
        int shed_first = 0;       ///< Shed the first N run requests.
        double retry_after_ms = 40.0;
        bool swallow_runs = false; ///< Accept runs, never answer them.
    };

    FakeTcpShard() : FakeTcpShard(Behavior()) {}

    explicit FakeTcpShard(Behavior behavior) : behavior_(behavior)
    {
        std::string error;
        listen_fd_ =
            net::tcpListen("127.0.0.1", 0, 8, &port_, &error);
        if (listen_fd_ < 0) {
            throw InternalError("FakeTcpShard listen failed: " + error);
        }
        accept_thread_ = std::thread([this] { acceptLoop(); });
    }

    ~FakeTcpShard() { stop(); }

    int port() const { return port_; }

    std::string
    endpoint() const
    {
        return "127.0.0.1:" + std::to_string(port_);
    }

    size_t
    connections()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return accepted_;
    }

    size_t
    runsSeen()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return runs_seen_;
    }

    /** Hard-drop every live connection (simulated shard crash/reset). */
    void
    dropConnections()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const int fd : live_fds_) net::shutdownBoth(fd);
    }

    void
    stop()
    {
        if (stopping_.exchange(true)) return;
        dropConnections();
        if (accept_thread_.joinable()) accept_thread_.join();
        std::vector<std::thread> workers;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            workers.swap(threads_);
        }
        for (std::thread& t : workers) t.join();
        net::closeQuiet(listen_fd_);
    }

  private:
    void
    acceptLoop()
    {
        while (!stopping_.load()) {
            const int fd = net::tcpAccept(listen_fd_, 50.0);
            if (fd == -2) break;
            if (fd < 0) continue;
            std::lock_guard<std::mutex> lock(mutex_);
            accepted_++;
            live_fds_.push_back(fd);
            threads_.emplace_back([this, fd] { serveConn(fd); });
        }
    }

    void
    serveConn(int fd)
    {
        LineReader reader(fd, size_t(1) << 20, 50.0);
        std::string line;
        for (;;) {
            const LineReader::Status status = reader.next(&line);
            if (status == LineReader::Status::kEof) break;
            if (status == LineReader::Status::kTimeout) {
                if (stopping_.load()) break;
                continue;
            }
            if (status != LineReader::Status::kOk) continue;
            handleLine(fd, line);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            live_fds_.erase(
                std::remove(live_fds_.begin(), live_fds_.end(), fd),
                live_fds_.end());
        }
        net::closeQuiet(fd);
    }

    void
    handleLine(int fd, const std::string& line)
    {
        std::string op;
        std::string id;
        try {
            const serve::JsonValue parsed = serve::JsonValue::parse(line);
            op = parsed.stringOr("op", "run");
            id = parsed.stringOr("id", "");
        } catch (const UserError&) {
            return;
        }
        std::string reply;
        if (op == "ping") {
            reply = serve::encodePing(id, behavior_.queue_depth, 0);
        } else if (op == "shutdown") {
            return; // remote daemons ignore fleet-scope shutdowns here
        } else {
            bool shed = false;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                runs_seen_++;
                if (sheds_issued_ < behavior_.shed_first) {
                    sheds_issued_++;
                    shed = true;
                }
                if (behavior_.swallow_runs) return;
            }
            reply = shed ? serve::encodeError(id, ErrorCode::kShedding,
                                              "fake shard saturated",
                                              behavior_.retry_after_ms)
                         : "{\"id\":\"" + serve::jsonEscape(id) +
                               "\",\"status\":\"ok\",\"fake\":true}";
        }
        reply += "\n";
        net::writeAllBounded(fd, reply.data(), reply.size(), 5000.0);
    }

    Behavior behavior_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread accept_thread_;
    std::mutex mutex_;
    std::vector<std::thread> threads_;
    std::vector<int> live_fds_;
    size_t accepted_ = 0;
    size_t runs_seen_ = 0;
    int sheds_issued_ = 0;
};

/** Fast probe/maintenance cadence for a remote (TCP) fake-shard fleet. */
RouterOptions
remoteOptions(const std::vector<std::string>& endpoints)
{
    RouterOptions options;
    options.connect = endpoints;
    options.probe_interval_ms = 30.0;
    options.maintenance_tick_ms = 5.0;
    options.respawn_backoff.base_backoff_ms = 20.0;
    options.respawn_backoff.max_backoff_ms = 50.0;
    return options;
}

// ---------------------------------------------------------- transport

TEST(TransportTest, PipeTransportEchoAndTerminate)
{
    PipeTransport cat({"/bin/cat"});
    EXPECT_FALSE(cat.remote());
    EXPECT_STREQ(cat.kindName(), "pipe");
    ASSERT_TRUE(cat.writeLine("over the pipe"));
    LineReader reader(cat.readFd());
    std::string line;
    ASSERT_EQ(reader.next(&line), LineReader::Status::kOk);
    EXPECT_EQ(line, "over the pipe");

    cat.terminate();
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
    EXPECT_TRUE(cat.finished());
}

TEST(TransportTest, TcpTransportRoundTripAgainstFakeShard)
{
    FakeTcpShard shard;
    TcpTransport::Options topts;
    TcpTransport tcp(net::parseEndpoint(shard.endpoint()), topts);
    ASSERT_TRUE(tcp.connected());
    EXPECT_TRUE(tcp.remote());
    EXPECT_STREQ(tcp.kindName(), "tcp");
    EXPECT_EQ(tcp.describe(), shard.endpoint());
    EXPECT_EQ(tcp.pid(), -1);

    ASSERT_TRUE(tcp.writeLine("{\"op\":\"ping\",\"id\":\"t1\"}"));
    LineReader reader(tcp.readFd());
    std::string line;
    ASSERT_EQ(reader.next(&line), LineReader::Status::kOk);
    EXPECT_NE(line.find("\"pong\":true"), std::string::npos) << line;

    // terminate() must unblock the reader with EOF (shutdown, not a
    // close racing the read) and latch finished().
    tcp.terminate();
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
    EXPECT_TRUE(tcp.finished());
    EXPECT_FALSE(tcp.writeLine("after death"));
}

TEST(TransportTest, FailedConnectIsImmediateEofNotAThrowOrHang)
{
    // Grab an ephemeral port, then close the listener: connecting to it
    // must now be refused.
    int port = 0;
    std::string error;
    const int probe = net::tcpListen("127.0.0.1", 0, 1, &port, &error);
    ASSERT_GE(probe, 0) << error;
    net::closeQuiet(probe);

    TcpTransport::Options topts;
    topts.connect_timeout_ms = 200.0;
    TcpTransport tcp(net::Endpoint{"127.0.0.1", port}, topts);
    EXPECT_FALSE(tcp.connected());
    EXPECT_TRUE(tcp.finished());
    EXPECT_FALSE(tcp.writeLine("never sent"));

    // The stand-in readFd must deliver EOF instantly — the exact shape
    // an exec failure has on the pipe path.
    LineReader reader(tcp.readFd());
    std::string line;
    EXPECT_EQ(reader.next(&line), LineReader::Status::kEof);
}

// ------------------------------------------------- router (fake shards)

TEST(RemoteRouterTest, RoutesOverTcpAndAnswersExactlyOnce)
{
    FakeTcpShard a;
    FakeTcpShard b;
    Collector collector;
    FleetRouter router(remoteOptions({a.endpoint(), b.endpoint()}),
                       collector.sink());
    router.start();
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(router.handleLine(
            ghzRequest("t" + std::to_string(i), 2 + i % 3, 40 + i)));
    }
    EXPECT_TRUE(router.drainFor(20000.0));
    ASSERT_TRUE(collector.waitForCount(8, 5000.0));
    router.stop();

    std::set<std::string> ids;
    for (const std::string& line : collector.snapshot()) {
        std::string id;
        ASSERT_TRUE(serve::peekResponseId(line, &id)) << line;
        EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos)
            << line;
        EXPECT_TRUE(ids.insert(id).second) << "duplicate for " << id;
    }
    EXPECT_EQ(ids.size(), 8u);
    EXPECT_EQ(router.counters().resolved_ok, 8u);
    EXPECT_EQ(a.runsSeen() + b.runsSeen(), 8u);
    EXPECT_EQ(router.shardStatus(0).transport, "tcp");
    EXPECT_EQ(router.shardStatus(0).attachment, a.endpoint());
}

TEST(RemoteRouterTest, ShedThenRetryLandsOnTheSameShard)
{
    // Satellite: a shed is saturation, not failure — after the shard's
    // retry_after_ms hint (propagated over TCP like over pipes) the
    // retry must land on the *same* shard, keeping cache affinity.
    FakeTcpShard::Behavior shedding;
    shedding.shed_first = 1;
    shedding.retry_after_ms = 30.0;
    FakeTcpShard home(shedding);
    FakeTcpShard sibling;
    RouterOptions options =
        remoteOptions({home.endpoint(), sibling.endpoint()});
    options.retry.max_attempts = 3;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    EXPECT_TRUE(router.handleLine(
        requestHomedOn(0, 2, options.vnodes, "affine")));
    EXPECT_TRUE(router.drainFor(20000.0));
    ASSERT_TRUE(collector.waitForCount(1, 5000.0));
    router.stop();

    const std::string line = collector.snapshot()[0];
    EXPECT_NE(line.find("\"id\":\"affine\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos) << line;
    EXPECT_EQ(home.runsSeen(), 2u);    // shed once, then served
    EXPECT_EQ(sibling.runsSeen(), 0u); // affinity never leaked away
    EXPECT_EQ(router.counters().retried, 1u);
}

TEST(RemoteRouterTest, DroppedConnectionReconnectsAndRestoresAffinity)
{
    FakeTcpShard home;
    FakeTcpShard sibling;
    RouterOptions options =
        remoteOptions({home.endpoint(), sibling.endpoint()});
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    const std::string line =
        requestHomedOn(0, 2, options.vnodes, "sticky");
    EXPECT_TRUE(router.handleLine(line));
    EXPECT_TRUE(router.drainFor(20000.0));
    EXPECT_EQ(home.runsSeen(), 1u);
    const uint64_t generation_before = router.shardStatus(0).generation;

    // Hard-drop the shard's connection: the router must observe EOF,
    // re-dial with a fresh generation, and probe the shard back to kUp.
    home.dropConnections();
    bool recovered = false;
    for (int i = 0; i < 1000; ++i) {
        const ShardStatus status = router.shardStatus(0);
        if (status.respawns >= 1 && status.alive &&
            status.generation > generation_before &&
            status.health == ShardHealth::kUp) {
            recovered = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    {
        const ShardStatus s = router.shardStatus(0);
        ASSERT_TRUE(recovered)
            << "shard 0 never reconnected: respawns=" << s.respawns
            << " alive=" << s.alive << " gen=" << s.generation
            << " health=" << int(s.health)
            << " pings_ok=" << s.pings_ok
            << " pings_failed=" << s.pings_failed
            << " down_transitions=" << s.down_transitions
            << " conns=" << home.connections();
    }
    EXPECT_GE(home.connections(), 2u);

    // Same structural key routes to its old home over the new
    // connection — affinity is by construction, not by bookkeeping.
    EXPECT_TRUE(router.handleLine(line));
    EXPECT_TRUE(router.drainFor(20000.0));
    router.stop();
    EXPECT_EQ(home.runsSeen(), 2u);
    EXPECT_EQ(sibling.runsSeen(), 0u);
    EXPECT_EQ(router.counters().resolved_ok, 2u);
}

TEST(RemoteRouterTest, EofClearsPendingAliasesExactlyOnce)
{
    // Satellite: a job in flight on a shard whose socket dies must be
    // resolved exactly once through the EOF path — with no other shard
    // to fail over to and respawn off, that is one typed error line.
    FakeTcpShard::Behavior mute;
    mute.swallow_runs = true;
    FakeTcpShard shard(mute);
    RouterOptions options = remoteOptions({shard.endpoint()});
    options.respawn = false;
    options.retry.max_attempts = 2;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    EXPECT_TRUE(router.handleLine(ghzRequest("doomed", 2, 7)));
    // Let it dispatch (and be swallowed), then kill the connection.
    for (int i = 0; i < 500 && shard.runsSeen() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(shard.runsSeen(), 1u);
    shard.dropConnections();

    EXPECT_TRUE(router.drainFor(20000.0));
    ASSERT_TRUE(collector.waitForCount(1, 5000.0));
    router.stop();

    const std::vector<std::string> lines = collector.snapshot();
    ASSERT_EQ(lines.size(), 1u); // exactly once, not zero, not twice
    EXPECT_NE(lines[0].find("\"id\":\"doomed\""), std::string::npos)
        << lines[0];
    EXPECT_NE(lines[0].find("no_shard_available"), std::string::npos)
        << lines[0];
    EXPECT_EQ(router.counters().no_shard, 1u);
}

TEST(RemoteRouterTest, SustainedQueueDepthOutlierIsSpilledPast)
{
    FakeTcpShard::Behavior drowning;
    drowning.queue_depth = 100;
    FakeTcpShard slow(drowning);
    FakeTcpShard fast_a;
    FakeTcpShard fast_b;
    RouterOptions options = remoteOptions(
        {slow.endpoint(), fast_a.endpoint(), fast_b.endpoint()});
    options.spill = true;
    options.spill_streak = 3;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    // Three consecutive pongs reporting depth 100 against peers at 0
    // must mark the shard an outlier.
    bool flagged = false;
    for (int i = 0; i < 1000; ++i) {
        if (router.shardStatus(0).outlier) {
            flagged = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(flagged) << "queue-depth outlier never flagged";

    // Dispatch must route around it: the drowning shard is "up" but
    // gets no work while its siblings can take it.
    for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(router.handleLine(
            ghzRequest("s" + std::to_string(i), 2 + i % 3, 900 + i)));
    }
    EXPECT_TRUE(router.drainFor(20000.0));
    ASSERT_TRUE(collector.waitForCount(20, 5000.0));
    router.stop();

    EXPECT_EQ(slow.runsSeen(), 0u);
    EXPECT_GE(router.counters().spills, 1u);
    EXPECT_EQ(router.counters().resolved_ok, 20u);
}

TEST(RemoteRouterTest, FleetStatusBodyIsCachedWithinTtl)
{
    FakeTcpShard shard;
    RouterOptions options = remoteOptions({shard.endpoint()});
    options.status_cache_ms = 10000.0;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();
    EXPECT_TRUE(router.handleLine(
        "{\"op\":\"fleet_status\",\"id\":\"s1\"}"));
    EXPECT_TRUE(router.handleLine(
        "{\"op\":\"fleet_status\",\"id\":\"s2\"}"));
    ASSERT_TRUE(collector.waitForCount(2, 5000.0));
    router.stop();

    // Same cached body, each client's own id.
    const std::vector<std::string> lines = collector.snapshot();
    EXPECT_NE(lines[0].find("\"id\":\"s1\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"id\":\"s2\""), std::string::npos);
    EXPECT_EQ(lines[0].substr(lines[0].find(',')),
              lines[1].substr(lines[1].find(',')));
    EXPECT_EQ(router.counters().status_cache_hits, 1u);
}

// ---------------------------------------------- router (real qassertd)

#ifdef QA_QASSERTD_BIN

RouterOptions
fastOptions(size_t shards)
{
    RouterOptions options;
    options.shards = shards;
    options.shard_command = {QA_QASSERTD_BIN, "--workers", "1"};
    options.probe_interval_ms = 50.0;
    options.maintenance_tick_ms = 5.0;
    return options;
}

TEST(RouterTest, RoutesJobsAndAnswersWithClientIds)
{
    Collector collector;
    FleetRouter router(fastOptions(2), collector.sink());
    router.start();
    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(router.handleLine(
            ghzRequest("job-" + std::to_string(i), 2 + i % 3, 100 + i)));
    }
    EXPECT_TRUE(router.drainFor(20000.0));
    ASSERT_TRUE(collector.waitForCount(6, 5000.0));
    router.stop();

    std::set<std::string> ids;
    for (const std::string& line : collector.snapshot()) {
        std::string id;
        ASSERT_TRUE(serve::peekResponseId(line, &id)) << line;
        EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos)
            << line;
        ids.insert(id);
    }
    EXPECT_EQ(ids.size(), 6u); // every client id answered exactly once
    const FleetCounters counters = router.counters();
    EXPECT_EQ(counters.admitted, 6u);
    EXPECT_EQ(counters.resolved_ok, 6u);
}

TEST(RouterTest, AllShardsDownIsATypedErrorNotAHang)
{
    RouterOptions options;
    options.shards = 2;
    options.shard_command = {"/bin/false"}; // exits instantly, no wire
    options.respawn = false;
    options.retry.max_attempts = 2;
    options.maintenance_tick_ms = 5.0;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();
    EXPECT_TRUE(router.handleLine(ghzRequest("doomed", 2, 1)));
    EXPECT_TRUE(router.drainFor(10000.0));
    ASSERT_TRUE(collector.waitForCount(1, 5000.0));
    router.stop();

    const std::string line = collector.snapshot()[0];
    EXPECT_NE(line.find("\"id\":\"doomed\""), std::string::npos) << line;
    EXPECT_NE(line.find("no_shard_available"), std::string::npos) << line;
    EXPECT_EQ(router.counters().no_shard, 1u);
}

TEST(RouterTest, KilledShardFailsOverAndNothingIsLost)
{
    RouterOptions options = fastOptions(3);
    options.respawn = false; // keep the post-kill topology fixed
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    // Load the fleet, then SIGKILL one shard while jobs are in flight.
    const int jobs = 30;
    for (int i = 0; i < jobs; ++i) {
        EXPECT_TRUE(router.handleLine(
            ghzRequest("k" + std::to_string(i), 2 + i % 4, 500 + i)));
        if (i == 5) {
            const pid_t victim = router.shardStatus(1).pid;
            ASSERT_GT(victim, 0);
            ::kill(victim, SIGKILL);
        }
    }
    EXPECT_TRUE(router.drainFor(30000.0));
    ASSERT_TRUE(collector.waitForCount(size_t(jobs), 5000.0));
    router.stop();

    // Exactly-once at fleet scope: every id answered once, all ok
    // (failover re-executes deterministically; nothing lost, nothing
    // doubled).
    std::set<std::string> ids;
    for (const std::string& line : collector.snapshot()) {
        std::string id;
        ASSERT_TRUE(serve::peekResponseId(line, &id)) << line;
        EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos)
            << line;
        EXPECT_TRUE(ids.insert(id).second)
            << "duplicate response for " << id;
    }
    EXPECT_EQ(ids.size(), size_t(jobs));
    EXPECT_EQ(router.counters().resolved_ok, uint64_t(jobs));
    EXPECT_EQ(router.shardStatus(1).health, ShardHealth::kDown);
}

TEST(RouterTest, RespawnRestoresAffinityAfterAFlap)
{
    RouterOptions options = fastOptions(2);
    options.respawn_backoff.base_backoff_ms = 20.0;
    options.respawn_backoff.max_backoff_ms = 50.0;
    Collector collector;
    FleetRouter router(options, collector.sink());
    router.start();

    // Pick a request whose structural key homes on shard 0: the ring
    // in the router uses the same deterministic layout as a local one.
    const HashRing ring(2, options.vnodes);
    std::string line;
    size_t home = 0;
    for (uint64_t seed = 1;; ++seed) {
        line = ghzRequest("affinity", 3, seed);
        const serve::WireRequest request = serve::parseRequest(line);
        home = ring.shardFor(serve::jobKey(request.spec));
        if (home == 0) break;
    }

    EXPECT_TRUE(router.handleLine(line));
    EXPECT_TRUE(router.drainFor(20000.0));
    const uint64_t before = router.shardStatus(0).forwarded;
    EXPECT_GE(before, 1u);

    // Kill the home shard and wait for the full flap: death detected,
    // respawned, pinged back to kUp.
    ::kill(router.shardStatus(0).pid, SIGKILL);
    bool recovered = false;
    for (int i = 0; i < 1000; ++i) {
        const ShardStatus status = router.shardStatus(0);
        if (status.respawns >= 1 && status.alive &&
            status.health == ShardHealth::kUp) {
            recovered = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(recovered) << "shard 0 never recovered from the flap";
    EXPECT_GE(router.shardStatus(0).down_transitions, 1u);

    // The same structural key routes to its old home again.
    EXPECT_TRUE(router.handleLine(line));
    EXPECT_TRUE(router.drainFor(20000.0));
    router.stop();
    EXPECT_EQ(router.shardStatus(0).forwarded, before + 1);
    EXPECT_EQ(router.counters().resolved_ok, 2u);
}

#else // !QA_QASSERTD_BIN

TEST(RouterTest, DISABLED_NeedsQassertdBinary) { GTEST_SKIP(); }

#endif

} // namespace
} // namespace fleet
} // namespace qa
