#!/usr/bin/env bash
#
# Fleet throughput/latency bench: qa_loadgen against qa_router with 1,
# 2, and 4 shards (closed loop, Zipf-popular Clifford circuits), plus a
# kill-one-shard-under-load chaos run (open loop, shard 1 SIGKILLed
# mid-run). Each run's p50/p90/p99/p999 latencies and jobs/sec land as
# one JSON object in the "runs" array of the output file
# (BENCH_PR7.json by default).
#
# Interpreting the numbers: on a single-CPU container all shards share
# one core, so the multi-shard configs measure the overhead of routing,
# health probing, and journaling — not parallel speedup. The host note
# in the output records nproc for exactly this reason.
#
# Usage: scripts/bench_fleet.sh [build-dir] [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OUT="${2:-BENCH_PR7.json}"
ROUTER="$BUILD/tools/qa_router"
LOADGEN="$BUILD/tools/qa_loadgen"
QASSERTD="$BUILD/tools/qassertd"
for bin in "$ROUTER" "$LOADGEN" "$QASSERTD"; do
    if [[ ! -x "$bin" ]]; then
        echo "bench_fleet: binary not found at $bin" >&2
        exit 2
    fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
runs="$workdir/runs.ndjson"

JOBS=400
CIRCUITS=48

for shards in 1 2 4; do
    echo "bench_fleet: closed loop, $shards shard(s), $JOBS jobs" >&2
    "$LOADGEN" \
        --target-cmd "$ROUTER --shards $shards --journal-dir $workdir/j$shards --shard-cmd $QASSERTD" \
        --mode closed --jobs "$JOBS" --concurrency 16 \
        --circuits "$CIRCUITS" --zipf 1.1 --seed 42 \
        --label "closed_${shards}shard" --out "$runs" > /dev/null \
        2> "$workdir/run$shards.err" \
        || { echo "bench_fleet: ${shards}-shard run failed" >&2;
             cat "$workdir/run$shards.err" >&2; exit 1; }
done

echo "bench_fleet: chaos, 4 shards, SIGKILL shard 1 under open load" >&2
"$LOADGEN" \
    --target-cmd "$ROUTER --shards 4 --journal-dir $workdir/jchaos --probe-ms 50 --shard-cmd $QASSERTD" \
    --mode open --rate 400 --burst 8 --jobs "$JOBS" \
    --circuits "$CIRCUITS" --zipf 1.1 --seed 43 \
    --kill-shard 1 --kill-after 60 \
    --label "open_4shard_kill1" --out "$runs" > /dev/null \
    2> "$workdir/chaos.err" \
    || { echo "bench_fleet: chaos run lost or duplicated jobs" >&2;
         cat "$workdir/chaos.err" >&2; exit 1; }

{
    printf '{\n'
    printf '  "bench": "qa_router fleet serving (PR 7)",\n'
    printf '  "date": "%s",\n' "$(date -u +%FT%TZ)"
    printf '  "host": {"nproc": %s, "note": "all shards share these cores; on a single-CPU host the multi-shard configs measure routing/journaling overhead, not parallel speedup"},\n' \
        "$(nproc)"
    printf '  "workload": {"jobs": %s, "circuits": %s, "zipf": 1.1, "body": "Clifford GHZ catalog, stabilizer fast path"},\n' \
        "$JOBS" "$CIRCUITS"
    printf '  "runs": [\n'
    sed 's/^/    /; $!s/$/,/' "$runs"
    printf '  ]\n}\n'
} > "$OUT"

echo "bench_fleet OK: $(wc -l < "$runs") runs -> $OUT" >&2
