#!/usr/bin/env bash
#
# MPS-backend smoke test: a 30-qubit non-Clifford Trotter chain — far
# past dense reach (2^30 amplitudes), not tableau-simulable — through a
# live qassertd.
#
# Three checks:
#   1. the explain op auto-routes the circuit to the MPS backend and
#      reports the entanglement facts (chi, ent_width, trunc_bound) on
#      the wire;
#   2. a real 256-shot job executes ok on the auto-routed MPS backend,
#      returns 30-bit count keys, and reports zero truncation error at
#      the default chi (the chain's Schmidt rank fits);
#   3. a deliberately starved override (backend=mps with chi=2 against
#      a tight truncation tolerance) is rejected up front with the
#      typed capability error, not a wrong-answer run.
#
# Usage: scripts/mps_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
QASSERTD="$BUILD/tools/qassertd"
if [[ ! -x "$QASSERTD" ]]; then
    echo "mps_smoke: binary not found at $QASSERTD" >&2
    exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# 30-qubit Trotterized transverse-field chain: an rx layer, then two
# rounds of cx/rz/cx nearest-neighbour couplers plus another rx layer,
# then terminal measurement. Non-Clifford, low-entanglement — the MPS
# regime.
n=30
qasm='OPENQASM 2.0;\nqreg q['"$n"'];\ncreg c['"$n"'];\n'
for ((q = 0; q < n; q++)); do
    qasm+='rx(0.3) q['"$q"'];\n'
done
for layer in 1 2; do
    for ((q = 0; q + 1 < n; q++)); do
        qasm+='cx q['"$q"'],q['"$((q + 1))"'];\n'
        qasm+='rz(0.17) q['"$((q + 1))"'];\n'
        qasm+='cx q['"$q"'],q['"$((q + 1))"'];\n'
    done
    for ((q = 0; q < n; q++)); do
        qasm+='rx(0.21) q['"$q"'];\n'
    done
done
for ((q = 0; q < n; q++)); do
    qasm+='measure q['"$q"'] -> c['"$q"'];\n'
done

printf '%s\n' \
    "{\"op\":\"explain\",\"id\":\"why\",\"qasm\":\"$qasm\",\"shots\":256}" \
    "{\"id\":\"run\",\"qasm\":\"$qasm\",\"shots\":256,\"seed\":11}" \
    "{\"id\":\"starved\",\"qasm\":\"$qasm\",\"shots\":256,\"seed\":12,\"backend\":\"mps\",\"mps_chi\":2,\"mps_trunc_tol\":1e-12}" \
    '{"op":"shutdown"}' \
    | "$QASSERTD" --workers 2 \
    > "$workdir/daemon.out" 2> "$workdir/daemon.err" \
    || { echo "mps_smoke: qassertd run failed" >&2;
         cat "$workdir/daemon.err" >&2; exit 1; }

# --- 1. explain: auto-route lands on MPS with the facts attached ----
explain_line=$(grep '"id":"why"' "$workdir/daemon.out")
grep -q '"backend":"mps"' <<< "$explain_line" \
    || { echo "mps_smoke: 30q Trotter chain did not route to MPS" >&2;
         echo "$explain_line" >&2; exit 1; }
grep -q '"mps":{"chi":' <<< "$explain_line" \
    || { echo "mps_smoke: explain lacks the mps facts block" >&2;
         echo "$explain_line" >&2; exit 1; }
grep -q '"ent_width":' <<< "$explain_line" \
    || { echo "mps_smoke: explain lacks the entanglement width" >&2;
         echo "$explain_line" >&2; exit 1; }

# --- 2. the job actually executes on MPS at 30 qubits ----------------
run_line=$(grep '"id":"run"' "$workdir/daemon.out")
grep -q '"status":"ok"' <<< "$run_line" \
    || { echo "mps_smoke: 30q run did not complete ok" >&2;
         echo "$run_line" >&2; exit 1; }
grep -q '"backend":"mps"' <<< "$run_line" \
    || { echo "mps_smoke: 30q run did not execute on MPS" >&2;
         echo "$run_line" >&2; exit 1; }
grep -Eq "\"[01]{$n}\":" <<< "$run_line" \
    || { echo "mps_smoke: counts lack $n-bit keys" >&2;
         echo "$run_line" >&2; exit 1; }
grep -q '"truncation_error":0' <<< "$run_line" \
    || { echo "mps_smoke: unexpected truncation at the default chi" >&2;
         echo "$run_line" >&2; exit 1; }

# --- 3. starved explicit override is a typed refusal, not a run ------
starved_line=$(grep '"id":"starved"' "$workdir/daemon.out")
grep -q '"status":"error"' <<< "$starved_line" \
    || { echo "mps_smoke: starved chi=2 override was not refused" >&2;
         echo "$starved_line" >&2; exit 1; }
grep -q '"code":"bad_request"' <<< "$starved_line" \
    || { echo "mps_smoke: refusal is not the typed capability error" >&2;
         echo "$starved_line" >&2; exit 1; }
grep -qi 'trunc' <<< "$starved_line" \
    || { echo "mps_smoke: refusal does not name the truncation bound" >&2;
         echo "$starved_line" >&2; exit 1; }

echo "mps_smoke OK: 30-qubit Trotter chain auto-routed to MPS," \
     "executed 256 shots ok with zero truncation, and the starved" \
     "chi=2 override was refused with the typed capability error"
