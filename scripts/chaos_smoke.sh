#!/usr/bin/env bash
#
# Kill-and-replay smoke test for qassertd's crash-safe journal.
#
# Two runs of the same three-job workload:
#   1. a clean journaled run (shutdown request, graceful drain), whose
#      journal is replayed twice — the two replay outputs must be
#      byte-identical;
#   2. a run that is SIGKILLed after the responses appear, whose journal
#      then gets a deliberately torn final record appended (simulating a
#      crash mid-append) before replay.
#
# The replay of the killed+torn journal must be byte-identical to the
# replay of the clean journal: same requests, same seqs, same payloads —
# proof that neither the kill nor the torn tail loses or perturbs any
# acknowledged job. Replay itself re-verifies every completion record's
# payload hash and exits non-zero on any mismatch.
#
# Usage: scripts/chaos_smoke.sh [path/to/qassertd]
set -euo pipefail
cd "$(dirname "$0")/.."

QASSERTD="${1:-build/tools/qassertd}"
if [[ ! -x "$QASSERTD" ]]; then
    echo "chaos_smoke: qassertd not found at $QASSERTD" >&2
    exit 2
fi

workdir="$(mktemp -d)"
writer_pid=""
# The writer may already be gone at exit; never let the cleanup itself
# fail (set -e applies inside traps too).
trap 'kill "$writer_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

qasm='OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n'
requests=(
  "{\"id\":\"job-a\",\"qasm\":\"$qasm\",\"shots\":256,\"seed\":11,\"assert_clbits\":[[0]]}"
  "{\"id\":\"job-b\",\"qasm\":\"$qasm\",\"shots\":256,\"seed\":12}"
  "{\"id\":\"job-c\",\"qasm\":\"$qasm\",\"shots\":512,\"seed\":13,\"assert_clbits\":[[1]]}"
)

# --- 1. clean journaled run, replayed twice -------------------------
printf '%s\n' "${requests[@]}" '{"op":"shutdown"}' \
    | "$QASSERTD" --workers 2 --journal "$workdir/clean.ndjson" \
    > "$workdir/clean.out" 2> "$workdir/clean.err"

"$QASSERTD" --replay "$workdir/clean.ndjson" \
    > "$workdir/replay1.out" 2> /dev/null
"$QASSERTD" --replay "$workdir/clean.ndjson" \
    > "$workdir/replay2.out" 2> /dev/null
diff "$workdir/replay1.out" "$workdir/replay2.out" \
    || { echo "chaos_smoke: replay is not deterministic" >&2; exit 1; }

# --- 2. SIGKILL mid-session, then tear the journal tail -------------
# The writer subshell keeps stdin open (no EOF) so qassertd is idle but
# alive when the SIGKILL lands — the un-drained path.
( printf '%s\n' "${requests[@]}"; sleep 30 ) \
    | "$QASSERTD" --workers 2 --journal "$workdir/killed.ndjson" \
    > "$workdir/killed.out" 2> "$workdir/killed.err" &
daemon_pid=$!
writer_pid=$(jobs -p | head -n1)

for _ in $(seq 1 100); do
    [[ $(wc -l < "$workdir/killed.out") -ge ${#requests[@]} ]] && break
    sleep 0.1
done
if [[ $(wc -l < "$workdir/killed.out") -lt ${#requests[@]} ]]; then
    echo "chaos_smoke: daemon never answered all requests" >&2
    exit 1
fi
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

# Crash mid-append: a torn final record the scanner must drop.
printf '{"e":"accept","seq":99,"req":{"tr' >> "$workdir/killed.ndjson"

"$QASSERTD" --replay "$workdir/killed.ndjson" \
    > "$workdir/killed_replay.out" 2> "$workdir/killed_replay.err"
grep -q "torn final record" "$workdir/killed_replay.err" \
    || { echo "chaos_smoke: torn tail was not reported" >&2; exit 1; }

# The killed journal replays to the exact bytes of the clean replay.
diff "$workdir/replay1.out" "$workdir/killed_replay.out" \
    || { echo "chaos_smoke: killed-run replay diverged" >&2; exit 1; }

echo "chaos_smoke OK: replay bit-identical across clean run, SIGKILL, and torn tail"
