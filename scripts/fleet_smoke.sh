#!/usr/bin/env bash
#
# Fleet chaos smoke test: qa_router fronting three journaled qassertd
# shards, driven by qa_loadgen, with one shard SIGKILLed mid-run.
#
# Two runs:
#   1. steady state — closed-loop load against a 3-shard fleet; every
#      job must be answered exactly once and the router must drain
#      cleanly on shutdown;
#   2. chaos — open-loop load (arrivals do not slow down for a
#      struggling server, so jobs are genuinely in flight when the fault
#      lands), with shard 1 SIGKILLed after the 40th response. Zero lost
#      jobs and zero duplicate responses are required: the router must
#      fail the dead shard's in-flight work over to its ring successors
#      and never double-answer a hedged or retried job.
#
# Afterwards every shard journal written during the chaos run —
# including the killed shard's possibly-torn generation-1 journal and
# the respawned generation-2 journal — must replay cleanly, proving the
# kill lost no acknowledged work on the durability side either.
#
# qa_loadgen itself exits non-zero on lost or duplicate responses, so
# the exactly-once assertion is enforced by the tool, not by log
# scraping; the greps below only make the failure mode legible.
#
# Usage: scripts/fleet_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
ROUTER="$BUILD/tools/qa_router"
LOADGEN="$BUILD/tools/qa_loadgen"
QASSERTD="$BUILD/tools/qassertd"
for bin in "$ROUTER" "$LOADGEN" "$QASSERTD"; do
    if [[ ! -x "$bin" ]]; then
        echo "fleet_smoke: binary not found at $bin" >&2
        exit 2
    fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# --- 1. steady state: 3 shards, closed loop ------------------------
"$LOADGEN" \
    --target-cmd "$ROUTER --shards 3 --journal-dir $workdir/steady --shard-cmd $QASSERTD" \
    --mode closed --jobs 150 --concurrency 8 --circuits 24 --seed 7 \
    --label fleet_smoke_steady \
    > "$workdir/steady.json" 2> "$workdir/steady.err" \
    || { echo "fleet_smoke: steady-state run failed" >&2;
         cat "$workdir/steady.err" >&2; exit 1; }
# Exactly-once alone is not enough: a fleet whose shards all died at
# spawn would still "answer" every job with a typed error. Demand that
# every answer was an ok.
grep -q '"ok":150' "$workdir/steady.json" \
    || { echo "fleet_smoke: steady-state run had error responses" >&2;
         cat "$workdir/steady.json" "$workdir/steady.err" >&2; exit 1; }
grep -q "qa_router: done" "$workdir/steady.err" \
    || { echo "fleet_smoke: router did not drain cleanly (steady)" >&2
         cat "$workdir/steady.err" >&2; exit 1; }

# --- 2. chaos: open loop, SIGKILL shard 1 mid-run ------------------
"$LOADGEN" \
    --target-cmd "$ROUTER --shards 3 --journal-dir $workdir/chaos --probe-ms 50 --shard-cmd $QASSERTD" \
    --mode open --rate 400 --burst 8 --jobs 240 --circuits 24 --seed 8 \
    --kill-shard 1 --kill-after 40 \
    --label fleet_smoke_chaos \
    > "$workdir/chaos.json" 2> "$workdir/chaos.err" \
    || { echo "fleet_smoke: chaos run lost or duplicated jobs" >&2;
         cat "$workdir/chaos.err" >&2; exit 1; }
grep -q "SIGKILL shard 1" "$workdir/chaos.err" \
    || { echo "fleet_smoke: the kill never landed" >&2; exit 1; }
grep -q '"lost":0' "$workdir/chaos.json" \
    || { echo "fleet_smoke: lost jobs in chaos run" >&2;
         cat "$workdir/chaos.json" >&2; exit 1; }
grep -q '"ok":240' "$workdir/chaos.json" \
    || { echo "fleet_smoke: chaos run had error responses" >&2;
         cat "$workdir/chaos.json" "$workdir/chaos.err" >&2; exit 1; }
grep -q '"duplicates":0' "$workdir/chaos.json" \
    || { echo "fleet_smoke: duplicate responses in chaos run" >&2;
         cat "$workdir/chaos.json" >&2; exit 1; }
grep -q "qa_router: done" "$workdir/chaos.err" \
    || { echo "fleet_smoke: router did not drain cleanly (chaos)" >&2
         cat "$workdir/chaos.err" >&2; exit 1; }

# --- 3. every chaos-run shard journal replays clean ----------------
journals=("$workdir"/chaos/shard-*.ndjson)
if [[ ${#journals[@]} -lt 3 || ! -e "${journals[0]}" ]]; then
    echo "fleet_smoke: expected >=3 shard journals, found ${#journals[@]}" >&2
    exit 1
fi
for journal in "${journals[@]}"; do
    "$QASSERTD" --replay "$journal" > /dev/null 2> "$workdir/replay.err" \
        || { echo "fleet_smoke: replay of $journal failed" >&2;
             cat "$workdir/replay.err" >&2; exit 1; }
done

echo "fleet_smoke OK: 390 jobs answered exactly once across a shard" \
     "SIGKILL, clean drains, ${#journals[@]} journals replayed intact"
