#!/usr/bin/env bash
#
# Tier-1 verification: the canonical build + full ctest sweep (plus the
# qassertd kill-and-replay chaos smoke, scripts/chaos_smoke.sh, and the
# fleet chaos smoke, scripts/fleet_smoke.sh, which SIGKILLs one of a
# qa_router's three shards under open-loop load and requires every job
# answered exactly once), then a
# ThreadSanitizer build (QA_ENABLE_TSAN=ON) that runs the shot-engine,
# policy-runner, service-scheduler, backend-subsystem, MPS-backend,
# gate-fusion/kernel, and resilience-chaos tests — the multi-threaded code paths, including
# watchdog reclaim/respawn, zombie joins, and the pooled shot loops of
# all four simulation backends — under TSAN, and an ASan+UBSan build
# (QA_ENABLE_ASAN=ON) that runs the fault-injection, recovery-policy,
# service, backend, MPS, assertion-compiler, and resilience tests, whose
# error paths exercise exception propagation out of worker pools,
# scheduler callbacks, the backend router's incapable-request
# rejections, the compiler's unsupported-assertion diagnostics, and the
# adversarial wire corpus. The release half also runs the
# assertion-compiler smoke (scripts/acomp_smoke.sh): a raw GHZ circuit
# auto-asserted by qassertd --auto-assert must pass clean and flag an
# injected X fault on every shot, including through a 2-shard
# qa_router, and the remote-fleet network chaos smoke
# (scripts/netfleet_smoke.sh): qa_router --connect fronting three
# qassertd --listen TCP shards, one behind the qa_netchaos fault proxy
# (resets, a 5s partition, slow-loris, partial writes), with every job
# answered exactly once and the response digest bit-identical to a
# chaos-free run, and the MPS-backend smoke (scripts/mps_smoke.sh): a
# 30-qubit non-Clifford Trotter chain through qassertd must auto-route
# to the MPS backend, execute ok with zero truncation, and refuse a
# starved chi=2 override with the typed capability error. The TSan
# half additionally runs the fleet transport
# tests (TransportTest + RemoteRouterTest), whose per-connection socket
# reader threads race against router maintenance and teardown.
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan] [--skip-release]
#
# --skip-release drops the canonical build + ctest sweep, leaving only
# the requested sanitizer halves (CI runs each half as its own job and
# covers the release sweep separately).
set -euo pipefail
cd "$(dirname "$0")/.."

skip_tsan=0
skip_asan=0
skip_release=0
for arg in "$@"; do
    case "$arg" in
      --skip-tsan) skip_tsan=1 ;;
      --skip-asan) skip_asan=1 ;;
      --skip-release) skip_release=1 ;;
      *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

if [[ "$skip_release" -ne 1 ]]; then
    cmake -B build -S .
    cmake --build build -j
    (cd build && ctest --output-on-failure -j)
    scripts/chaos_smoke.sh build/tools/qassertd
    scripts/fleet_smoke.sh build
    scripts/acomp_smoke.sh build
    scripts/netfleet_smoke.sh build
    scripts/mps_smoke.sh build
fi

if [[ "$skip_tsan" -ne 1 ]]; then
    cmake -B build-tsan -S . \
        -DQA_ENABLE_TSAN=ON \
        -DQASSERT_BUILD_BENCHES=OFF \
        -DQASSERT_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j --target test_engine --target test_policy \
        --target test_serve --target test_backend --target test_resilience \
        --target test_fusion --target test_fleet --target test_mps
    ./build-tsan/tests/test_fusion \
        --gtest_filter='FusionTest.CountsAreBitIdenticalAcrossThreadCounts:FusionTest.KrausNoiseKeepsTheNoisyStreamUnfused'
    ./build-tsan/tests/test_engine \
        --gtest_filter='EngineTest.*:ShotPlanTest.*:ShotPoolTest.*'
    ./build-tsan/tests/test_policy \
        --gtest_filter='PolicyTest.*'
    ./build-tsan/tests/test_serve \
        --gtest_filter='SchedulerTest.*:CacheTest.*'
    ./build-tsan/tests/test_backend \
        --gtest_filter='BackendDeterminismTest.*:CrossBackendTest.*'
    ./build-tsan/tests/test_mps \
        --gtest_filter='MpsBackendTest.BitIdenticalAcrossThreadCounts:MpsBackendTest.MidCircuitBitIdenticalAcrossThreadCounts:RouterMpsTest.WideTrotterChainExecutesExactly'
    ./build-tsan/tests/test_resilience
    ./build-tsan/tests/test_fleet \
        --gtest_filter='TransportTest.*:RemoteRouterTest.*'
fi

if [[ "$skip_asan" -ne 1 ]]; then
    cmake -B build-asan -S . \
        -DQA_ENABLE_ASAN=ON \
        -DQASSERT_BUILD_BENCHES=OFF \
        -DQASSERT_BUILD_EXAMPLES=OFF
    cmake --build build-asan -j \
        --target test_inject --target test_policy --target test_engine \
        --target test_serve --target test_backend --target test_resilience \
        --target test_fusion --target test_acomp --target test_mps
    ./build-asan/tests/test_fusion
    ./build-asan/tests/test_acomp
    ./build-asan/tests/test_inject
    ./build-asan/tests/test_policy
    ./build-asan/tests/test_engine \
        --gtest_filter='ShotPoolTest.*:EngineTest.Deadline*'
    ./build-asan/tests/test_serve
    ./build-asan/tests/test_backend
    ./build-asan/tests/test_mps
    ./build-asan/tests/test_resilience
fi

echo "tier-1 OK"
