#!/usr/bin/env bash
#
# Tier-1 verification: the canonical build + full ctest sweep, then a
# ThreadSanitizer build (QA_ENABLE_TSAN=ON) that runs the shot-engine
# determinism tests — the only multi-threaded code paths — under TSAN.
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" != "--skip-tsan" ]]; then
    cmake -B build-tsan -S . \
        -DQA_ENABLE_TSAN=ON \
        -DQASSERT_BUILD_BENCHES=OFF \
        -DQASSERT_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j --target test_engine
    ./build-tsan/tests/test_engine \
        --gtest_filter='EngineTest.*:ShotPlanTest.*'
fi

echo "tier-1 OK"
