#!/usr/bin/env bash
#
# Remote-fleet network chaos smoke: qa_router --connect fronting three
# qassertd --listen TCP shards, one of them reached through the
# qa_netchaos fault-injection proxy, under open-loop qa_loadgen load.
#
# Two runs with the same workload seed:
#   1. clean — all three shards reached directly; records the
#      order-independent response digest (qa_loadgen --digest);
#   2. chaos — shard 0's traffic crosses qa_netchaos with a seeded
#      plan: connection resets after 4 KB on every 2nd connection, a
#      5-second partition starting at t=2.5s (existing connections
#      reset at the window edge, reconnect attempts black-holed inside
#      it), slow-loris byte-dribbling on every 3rd connection, and a
#      30% chance of any forwarded chunk being split into two partial
#      writes.
#
# Required outcomes, enforced by tools rather than log scraping:
#   - qa_loadgen exits non-zero on any lost or duplicated response, so
#     "every admitted job resolves exactly once" is the tool's own exit
#     code, through resets, the partition, and reconnects;
#   - every response is an ok (the fleet failed over and retried
#     through the faults rather than surfacing them to clients);
#   - the chaos digest is bit-identical to the clean digest: network
#     faults may move and delay work but must never change results;
#   - qa_netchaos proxied more than one connection: the partitioned
#     shard's router attachment really died and was re-dialed (the ring
#     hands its keyspace back on recovery — affinity by construction);
#   - every shard journal, written through all of the above, replays
#     cleanly.
#
# Usage: scripts/netfleet_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
ROUTER="$BUILD/tools/qa_router"
LOADGEN="$BUILD/tools/qa_loadgen"
QASSERTD="$BUILD/tools/qassertd"
NETCHAOS="$BUILD/tools/qa_netchaos"
for bin in "$ROUTER" "$LOADGEN" "$QASSERTD" "$NETCHAOS"; do
    if [[ ! -x "$bin" ]]; then
        echo "netfleet_smoke: binary not found at $bin" >&2
        exit 2
    fi
done

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2> /dev/null || true
    done
    wait 2> /dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# --- 0. three qassertd --listen shards on ephemeral ports ----------
for i in 0 1 2; do
    "$QASSERTD" --listen 127.0.0.1:0 --port-file "$workdir/s$i.port" \
        --workers 2 --journal "$workdir/shard-$i.ndjson" \
        2> "$workdir/s$i.err" &
    pids+=($!)
done
for _ in $(seq 100); do
    [[ -s "$workdir/s0.port" && -s "$workdir/s1.port" \
       && -s "$workdir/s2.port" ]] && break
    sleep 0.1
done
p0="$(cat "$workdir/s0.port")"
p1="$(cat "$workdir/s1.port")"
p2="$(cat "$workdir/s2.port")"

LOAD_ARGS=(--mode open --rate 60 --burst 4 --jobs 420 --circuits 24
           --seed 31 --digest)
ROUTE_ARGS="--probe-ms 50 --ping-timeout-ms 250 --idle-timeout-ms 2000"

# --- 1. clean run: direct connections, record the digest -----------
"$LOADGEN" \
    --target-cmd "$ROUTER --connect 127.0.0.1:$p0,127.0.0.1:$p1,127.0.0.1:$p2 $ROUTE_ARGS" \
    "${LOAD_ARGS[@]}" --label netfleet_clean \
    > "$workdir/clean.json" 2> "$workdir/clean.err" \
    || { echo "netfleet_smoke: clean run failed" >&2;
         cat "$workdir/clean.err" >&2; exit 1; }
grep -q '"ok":420' "$workdir/clean.json" \
    || { echo "netfleet_smoke: clean run had error responses" >&2;
         cat "$workdir/clean.json" >&2; exit 1; }
clean_digest="$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' \
    "$workdir/clean.json")"
[[ -n "$clean_digest" ]] \
    || { echo "netfleet_smoke: no digest in clean run output" >&2;
         exit 1; }

# --- 2. chaos run: shard 0 behind qa_netchaos ----------------------
"$NETCHAOS" --listen 127.0.0.1:0 --target "127.0.0.1:$p0" \
    --plan "reset:every=2,after_bytes=4000;partition:at=2500,dur=5000;slowloris:every=3,delay_ms=5,chunk=32;partial:p=0.3" \
    --seed 1913 --port-file "$workdir/nc.port" \
    2> "$workdir/nc.err" &
pids+=($!)
nc_pid=$!
for _ in $(seq 100); do
    [[ -s "$workdir/nc.port" ]] && break
    sleep 0.1
done
pnc="$(cat "$workdir/nc.port")"

"$LOADGEN" \
    --target-cmd "$ROUTER --connect 127.0.0.1:$pnc,127.0.0.1:$p1,127.0.0.1:$p2 $ROUTE_ARGS" \
    "${LOAD_ARGS[@]}" --label netfleet_chaos \
    > "$workdir/chaos.json" 2> "$workdir/chaos.err" \
    || { echo "netfleet_smoke: chaos run lost or duplicated jobs" >&2;
         cat "$workdir/chaos.err" >&2; exit 1; }
grep -q '"lost":0' "$workdir/chaos.json" \
    || { echo "netfleet_smoke: lost jobs under network chaos" >&2;
         cat "$workdir/chaos.json" >&2; exit 1; }
grep -q '"duplicates":0' "$workdir/chaos.json" \
    || { echo "netfleet_smoke: duplicated responses under chaos" >&2;
         cat "$workdir/chaos.json" >&2; exit 1; }
grep -q '"ok":420' "$workdir/chaos.json" \
    || { echo "netfleet_smoke: chaos run surfaced error responses" >&2;
         cat "$workdir/chaos.json" "$workdir/chaos.err" >&2; exit 1; }
grep -q "qa_router: done" "$workdir/chaos.err" \
    || { echo "netfleet_smoke: router did not drain cleanly" >&2;
         cat "$workdir/chaos.err" >&2; exit 1; }

chaos_digest="$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' \
    "$workdir/chaos.json")"
if [[ "$chaos_digest" != "$clean_digest" ]]; then
    echo "netfleet_smoke: digest mismatch — chaos changed results" >&2
    echo "  clean: $clean_digest" >&2
    echo "  chaos: $chaos_digest" >&2
    exit 1
fi

# The proxy must have seen reconnects: one long-lived connection would
# mean the partition never actually severed the shard.
kill "$nc_pid" 2> /dev/null || true
wait "$nc_pid" 2> /dev/null || true
nc_conns="$(sed -n 's/.*done (\([0-9]*\) connections.*/\1/p' \
    "$workdir/nc.err")"
if [[ -z "$nc_conns" || "$nc_conns" -lt 2 ]]; then
    echo "netfleet_smoke: expected reconnects through the proxy," \
         "saw ${nc_conns:-none}" >&2
    cat "$workdir/nc.err" >&2
    exit 1
fi

# --- 3. drain the daemons and replay every shard journal -----------
for port in "$p0" "$p1" "$p2"; do
    python3 - "$port" <<'EOF'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=5)
s.sendall(b'{"op":"shutdown"}\n')
s.close()
EOF
done
for pid in "${pids[@]}"; do
    wait "$pid" 2> /dev/null || true
done
pids=()

for i in 0 1 2; do
    journal="$workdir/shard-$i.ndjson"
    [[ -s "$journal" ]] \
        || { echo "netfleet_smoke: shard $i journal is missing" >&2;
             exit 1; }
    "$QASSERTD" --replay "$journal" > /dev/null 2> "$workdir/replay.err" \
        || { echo "netfleet_smoke: replay of $journal failed" >&2;
             cat "$workdir/replay.err" >&2; exit 1; }
done

echo "netfleet_smoke OK: 840 jobs answered exactly once across" \
     "resets, a 5s partition, slow-loris and partial writes" \
     "($nc_conns proxied connections), chaos digest == clean digest," \
     "3 journals replayed intact"
