#!/usr/bin/env bash
#
# Assertion-compiler smoke test: raw (assertion-free) GHZ circuits
# through `qassertd --auto-assert` and through a qa_router fleet.
#
# Four checks:
#   1. a clean GHZ-5 prep gets an auto-generated stabilizer assertion,
#      lowered to the ancilla-free Pauli parity form, and passes every
#      shot (pass_rate 1, slot_error_rate 0);
#   2. the same circuit with an X fault injected mid-prep is flagged
#      deterministically (pass_rate 0, slot_error_rate 1) — the
#      detection the paper's runtime assertions exist to provide,
#      with no hand-written assertion in the program;
#   3. the explain op under --auto-assert reports the lowering table on
#      the wire (form, zero ancillas, generator count, source anchor);
#   4. the same auto-assert jobs via request-level "auto_assert":true
#      through a 2-shard qa_router are answered exactly once each,
#      with the same verdicts — the compiler composes with the fleet
#      path unchanged.
#
# Usage: scripts/acomp_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
QASSERTD="$BUILD/tools/qassertd"
ROUTER="$BUILD/tools/qa_router"
for bin in "$QASSERTD" "$ROUTER"; do
    if [[ ! -x "$bin" ]]; then
        echo "acomp_smoke: binary not found at $bin" >&2
        exit 2
    fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# GHZ-5 prep with terminal measurements and no assertions anywhere —
# the generator has to discover the invariant on its own.
clean='OPENQASM 2.0;\nqreg q[5];\ncreg c[5];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\ncx q[3],q[4];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\nmeasure q[2] -> c[2];\nmeasure q[3] -> c[3];\nmeasure q[4] -> c[4];\n'
# Same prep with an X fault injected after the first entangling layer.
fault='OPENQASM 2.0;\nqreg q[5];\ncreg c[5];\nh q[0];\ncx q[0],q[1];\nx q[1];\ncx q[1],q[2];\ncx q[2],q[3];\ncx q[3],q[4];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\nmeasure q[2] -> c[2];\nmeasure q[3] -> c[3];\nmeasure q[4] -> c[4];\n'

# --- 1+2+3. qassertd --auto-assert: clean pass, fault caught, explain
printf '%s\n' \
    "{\"id\":\"clean\",\"qasm\":\"$clean\",\"shots\":512,\"seed\":21}" \
    "{\"id\":\"fault\",\"qasm\":\"$fault\",\"shots\":512,\"seed\":22}" \
    "{\"op\":\"explain\",\"id\":\"why\",\"qasm\":\"$clean\",\"shots\":512}" \
    '{"op":"shutdown"}' \
    | "$QASSERTD" --auto-assert --workers 2 \
    > "$workdir/daemon.out" 2> "$workdir/daemon.err" \
    || { echo "acomp_smoke: qassertd --auto-assert run failed" >&2;
         cat "$workdir/daemon.err" >&2; exit 1; }

clean_line=$(grep '"id":"clean"' "$workdir/daemon.out")
grep -q '"pass_rate":1,"slot_error_rate":\[0\]' <<< "$clean_line" \
    || { echo "acomp_smoke: clean GHZ did not pass every shot" >&2;
         echo "$clean_line" >&2; exit 1; }
grep -q '"auto_assert":{"generated":1' <<< "$clean_line" \
    || { echo "acomp_smoke: response lacks the auto_assert block" >&2;
         echo "$clean_line" >&2; exit 1; }
grep -q '"form":"pauli".*"ancillas":0' <<< "$clean_line" \
    || { echo "acomp_smoke: slot not lowered to ancilla-free pauli" >&2;
         echo "$clean_line" >&2; exit 1; }

# A mid-prep X fault anticommutes with the discovered generators, so
# every shot must be flagged — not a statistical catch.
fault_line=$(grep '"id":"fault"' "$workdir/daemon.out")
grep -q '"pass_rate":0,"slot_error_rate":\[1\]' <<< "$fault_line" \
    || { echo "acomp_smoke: injected X fault was not detected" >&2;
         echo "$fault_line" >&2; exit 1; }

explain_line=$(grep '"id":"why"' "$workdir/daemon.out")
grep -q '"auto_assert":{.*"form":"pauli"' <<< "$explain_line" \
    || { echo "acomp_smoke: explain lacks the lowering table" >&2;
         echo "$explain_line" >&2; exit 1; }
grep -q '"source":{"line":' <<< "$explain_line" \
    || { echo "acomp_smoke: explain slot lacks a source anchor" >&2;
         echo "$explain_line" >&2; exit 1; }

# --- 4. exactly-once through a 2-shard router -----------------------
# auto_assert rides in the request JSON here, so plain qassertd shards
# apply the compiler without any daemon-side flag.
jobs=8
{ for i in $(seq 1 "$jobs"); do
      if (( i % 2 )); then q="$clean"; else q="$fault"; fi
      printf '{"id":"r%d","qasm":"%s","shots":256,"seed":%d,"auto_assert":true}\n' \
          "$i" "$q" $((30 + i))
  done
  printf '{"op":"shutdown"}\n'
} | "$ROUTER" --shards 2 --shard-cmd "$QASSERTD" \
    > "$workdir/router.out" 2> "$workdir/router.err" \
    || { echo "acomp_smoke: router run failed" >&2;
         cat "$workdir/router.err" >&2; exit 1; }

for i in $(seq 1 "$jobs"); do
    n=$(grep -c "\"id\":\"r$i\"" "$workdir/router.out" || true)
    if [[ "$n" -ne 1 ]]; then
        echo "acomp_smoke: job r$i answered $n times (want exactly 1)" >&2
        cat "$workdir/router.out" >&2
        exit 1
    fi
done
ok=$(grep -c '"status":"ok"' "$workdir/router.out" || true)
if [[ "$ok" -ne "$jobs" ]]; then
    echo "acomp_smoke: $ok/$jobs router jobs ok" >&2
    cat "$workdir/router.out" >&2
    exit 1
fi
for i in $(seq 1 "$jobs"); do
    line=$(grep "\"id\":\"r$i\"" "$workdir/router.out")
    if (( i % 2 )); then want='"slot_error_rate":[0]'; else want='"slot_error_rate":[1]'; fi
    grep -qF "$want" <<< "$line" \
        || { echo "acomp_smoke: r$i verdict wrong through the router" >&2;
             echo "$line" >&2; exit 1; }
done

echo "acomp_smoke OK: auto-generated Pauli assertion passed clean GHZ," \
     "caught the injected fault every shot, explained its lowering," \
     "and ran exactly-once through a 2-shard router"
