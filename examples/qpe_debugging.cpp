/**
 * @file
 * The paper's Sec. IX case study: debugging 4-qubit quantum phase
 * estimation by inserting one precise assertion per slot (Fig. 15/16).
 * The pattern of failing slots localizes each injected bug to a gate
 * range.
 *
 *   $ ./qpe_debugging
 */
#include <cmath>
#include <iostream>

#include "algos/qpe.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"

int
main()
{
    using namespace qa;
    using namespace qa::algos;

    const double lambda = M_PI / 8;
    QpeProgram reference(4, lambda);

    std::cout
        << "4-qubit QPE with U = p(pi/8); assertion slots 1.."
        << reference.numSlots() << " sit between program stages.\n"
        << "Expected slot states V1..V6 are precalculated from the\n"
        << "bug-free program (paper Fig. 16 line 9).\n\n";

    const std::vector<std::pair<const char*, QpeBug>> scenarios = {
        {"clean program", QpeBug::kNone},
        {"Bug1: loop index dropped (angle stuck at lambda)",
         QpeBug::kFixedAngle},
        {"Bug2: 'cu3' typed as 'u3' (control lost)",
         QpeBug::kMissingControl},
    };

    for (const auto& [label, bug] : scenarios) {
        std::cout << "--- " << label << " ---\n";
        int first_failing = -1;
        for (int slot = 1; slot <= reference.numSlots(); ++slot) {
            // Build the program prefix up to this slot and assert the
            // expected state there.
            QpeProgram program(4, lambda, bug);
            QuantumCircuit prefix(program.numQubits());
            std::vector<int> ident{0, 1, 2, 3, 4};
            for (int s = 0; s < slot; ++s) {
                prefix.compose(program.stage(s), ident);
            }
            AssertedProgram asserted(prefix);
            asserted.assertState(
                {0, 1, 2, 3, 4},
                StateSet::pure(reference.expectedStateAtSlot(slot)),
                AssertionDesign::kSwap);
            const double err =
                runAssertedExact(asserted).slot_error_prob[0];
            std::cout << "  slot " << slot << ": P(assertion error) = "
                      << formatDouble(err, 4) << "\n";
            if (err > 1e-6 && first_failing < 0) first_failing = slot;
        }
        if (first_failing < 0) {
            std::cout << "  all slots pass: no bug detected.\n\n";
        } else {
            std::cout << "  => first failing slot is " << first_failing
                      << ": the bug sits in the gates between slot "
                      << first_failing - 1 << " and slot "
                      << first_failing << ".\n\n";
        }
    }

    std::cout
        << "Cheaper alternatives at slot 5 (Sec. IX-A2/A3): a mixed-state\n"
        << "assertion of the counting register costs less but misses\n"
        << "Bug2; the two-member approximate set catches both bugs --\n"
        << "run bench_qpe_slots for the full comparison table.\n";
    return 0;
}
