/**
 * @file
 * The paper's Figure 1 / Table I walkthrough: five ways to assert a GHZ
 * state, trading assertion precision against circuit cost, applied to
 * the two GHZ preparation bugs of Sec. III.
 *
 *   $ ./ghz_debugging
 */
#include <cmath>
#include <iostream>

#include "algos/states.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"

int
main()
{
    using namespace qa;
    using namespace qa::algos;

    const CVector ghz = ghzVector(3);
    const CMatrix rho23 = partialTrace(densityFromPure(ghz), {1, 2});
    auto pair = [](int a, int b) {
        CVector v(8);
        v[a] = v[b] = 1.0 / std::sqrt(2.0);
        return v;
    };

    struct Variant
    {
        const char* name;
        StateSet set;
        std::vector<int> qubits;
        AssertionDesign design;
    };
    const std::vector<Variant> variants = {
        {"precise 3-qubit pure state (SWAP)", StateSet::pure(ghz),
         {0, 1, 2}, AssertionDesign::kSwap},
        {"precise mixed state of qubits 1,2 (SWAP)",
         StateSet::mixed(rho23), {1, 2}, AssertionDesign::kSwap},
        {"approximate {|000>,|111>} (SWAP)",
         StateSet::approximate({CVector::basisState(8, 0),
                                CVector::basisState(8, 7)}),
         {0, 1, 2}, AssertionDesign::kSwap},
        {"approximate 4-state superset (SWAP)",
         StateSet::approximate({CVector::basisState(8, 0),
                                CVector::basisState(8, 3),
                                CVector::basisState(8, 4),
                                CVector::basisState(8, 7)}),
         {0, 1, 2}, AssertionDesign::kSwap},
        {"approximate GHZ-parity set (NDD)",
         StateSet::approximate({pair(0, 7), pair(1, 6), pair(3, 4),
                                pair(2, 5)}),
         {0, 1, 2}, AssertionDesign::kNdd},
    };

    std::cout << "GHZ preparation bugs (paper Sec. III):\n"
              << "  Bug1: swapped u2 arguments -> (|000> - |111>)/sqrt2\n"
              << "  Bug2: reordered CX chain  -> (|000> + |011>)/sqrt2\n\n";

    TextTable table({"assertion variant", "#CX", "P(err|correct)",
                     "P(err|Bug1)", "P(err|Bug2)"});
    for (const Variant& v : variants) {
        auto errorProb = [&](int bug) {
            AssertedProgram prog(ghzPrep(3, bug));
            prog.assertState(v.qubits, v.set, v.design);
            return runAssertedExact(prog).slot_error_prob[0];
        };
        const CircuitCost cost = estimateAssertionCost(v.set, v.design);
        table.addRow({v.name, std::to_string(cost.cx),
                      formatDouble(errorProb(0), 3),
                      formatDouble(errorProb(1), 3),
                      formatDouble(errorProb(2), 3)});
    }
    std::cout << table.render() << "\n";

    std::cout
        << "Reading the table:\n"
        << " * Every variant stays silent on the correct state\n"
        << "   (dynamic assertions are non-destructive).\n"
        << " * Only the precise variants see Bug1 -- coefficients are\n"
        << "   invisible to basis-set membership checks.\n"
        << " * Every variant sees Bug2, at falling circuit cost:\n"
        << "   that is the Fig. 1 precision/cost trade-off.\n";
    return 0;
}
