/**
 * @file
 * The paper's Sec. IX-B use of assertions beyond debugging: improving a
 * noisy program's success rate by post-selecting on assertion success.
 * Runs QPE on a melbourne-like noise model and compares the raw output
 * distribution with the assertion-filtered one.
 *
 *   $ ./noisy_filtering
 */
#include <cmath>
#include <iostream>

#include "algos/qpe.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/eigen.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"

int
main()
{
    using namespace qa;
    using namespace qa::algos;

    const double theta = M_PI / 4;
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();

    // The ideal outcome distribution (noiseless) defines "success".
    AssertedProgram ideal(qpeRyProgram(4, theta, false));
    ideal.measureProgram();
    const Distribution ideal_dist =
        runAssertedExact(ideal).program_dist;

    auto successRate = [&](const Counts& counts) {
        double total = 0.0;
        const Distribution measured = counts.toDistribution();
        for (const auto& [bits, p] : ideal_dist.probs) {
            if (p > 1e-9) total += measured.probability(bits);
        }
        return total;
    };

    // Raw noisy run.
    SimOptions options;
    options.shots = 8192;
    options.seed = 2026;
    options.noise = &noise;

    AssertedProgram raw(qpeRyProgram(4, theta, false));
    raw.measureProgram();
    const AssertionOutcome raw_out = runAsserted(raw, options);

    // Asserted run: check the counting register's expected pure state
    // right before measurement, then keep only the shots whose
    // assertion ancillas all read |0>.
    const CVector final_state =
        finalState(qpeRyProgram(4, theta, false)).amplitudes();
    const CMatrix rho_counting =
        partialTrace(densityFromPure(final_state), {0, 1, 2, 3});
    const EigenResult eig = eigHermitian(rho_counting);

    AssertedProgram filtered(qpeRyProgram(4, theta, false));
    filtered.assertState({0, 1, 2, 3},
                         StateSet::pure(eig.vectors.column(0)),
                         AssertionDesign::kSwap);
    filtered.measureProgram();
    const AssertionOutcome filt_out = runAsserted(filtered, options);

    std::cout << "QPE(theta = pi/4) on the melbourne-like noise model, "
              << options.shots << " shots\n\n"
              << "raw success rate               : "
              << formatPercent(successRate(raw_out.program_counts))
              << "\n"
              << "assertion pass rate            : "
              << formatPercent(filt_out.pass_rate) << "\n"
              << "filtered success rate          : "
              << formatPercent(
                     successRate(filt_out.program_counts_passed))
              << "\n"
              << "shots surviving the filter     : "
              << filt_out.program_counts_passed.shots << "\n\n"
              << "The assertion trades shots for fidelity: discarded\n"
              << "runs are the ones the ancillas caught misbehaving --\n"
              << "the Sec. IX-B success-rate improvement.\n";
    return 0;
}
