/**
 * @file
 * The paper's Appendix D case study: a copy-paste bug inside a recursive
 * subroutine (the Fourier-space controlled adder emits rz / crz / ccrz
 * variants of the same loop; the doubly-controlled copy targets qr[j]
 * instead of qr[i]). Precise assertions placed after each adder layer
 * bracket the faulty rotation.
 *
 *   $ ./adder_recursion_debug
 */
#include <cmath>
#include <iostream>

#include "algos/adder.hpp"
#include "algos/qft.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "sim/statevector.hpp"

int
main()
{
    using namespace qa;
    using namespace qa::algos;

    const int width = 3;
    const uint64_t initial = 4, a = 3;

    std::cout << "Fourier-space controlled adder: qr = qr + " << a
              << " (qr starts at " << initial << ", " << width
              << " bits, 2 controls)\n\n";

    // Functional symptom: only the doubly-controlled path misbehaves.
    for (int nc : {0, 1, 2}) {
        QuantumCircuit qc = adderProgram(width, initial, a, nc, true,
                                         /*buggy=*/true);
        const auto probs = finalState(qc).basisProbabilities(1e-6);
        std::cout << "  " << nc << "-control call: ";
        if (probs.size() == 1) {
            std::cout << "result "
                      << formatBits(probs.begin()->first >> nc, width)
                      << (((probs.begin()->first >> nc) ==
                           (initial + a) % (1u << width))
                              ? " (correct)\n"
                              : " (WRONG)\n");
        } else {
            std::cout << "superposed output (WRONG)\n";
        }
    }

    // Localize with per-layer assertions on the 2-control variant.
    std::cout << "\nPer-layer precise assertions (2-control variant):\n";
    std::vector<int> data{0, 1, 2};
    std::vector<int> controls{3, 4};
    auto build = [&](bool buggy, int layers) {
        QuantumCircuit qc(width + 2);
        for (int q = 0; q < width; ++q) {
            if ((initial >> (width - 1 - q)) & 1) qc.x(q);
        }
        qc.x(3);
        qc.x(4);
        appendQft(qc, data);
        for (int i = width - 1, done = 0; i >= 0 && done < layers;
             --i, ++done) {
            for (int j = i; j >= 0; --j) {
                if (!((a >> j) & 1)) continue;
                const double angle = M_PI / double(uint64_t(1) << (i - j));
                qc.ccrz(3, 4, buggy ? data[j] : data[i], angle);
            }
        }
        return qc;
    };

    for (int layers = 1; layers <= width; ++layers) {
        const CVector expected =
            finalState(build(false, layers)).amplitudes();
        AssertedProgram prog(build(true, layers));
        prog.assertState({0, 1, 2, 3, 4}, StateSet::pure(expected),
                         AssertionDesign::kSwap);
        const double err = runAssertedExact(prog).slot_error_prob[0];
        std::cout << "  after layer " << layers
                  << " (paper loop i = " << width - layers
                  << "): P(err) = " << formatDouble(err, 3) << "\n";
    }
    std::cout
        << "\nThe first firing assertion brackets the faulty rotation;\n"
        << "because i == j in the very first emitted rotation, the bug\n"
        << "is invisible until a layer with i != j executes -- the\n"
        << "paper's observation that asserting after the second rz\n"
        << "suffices.\n";
    return 0;
}
