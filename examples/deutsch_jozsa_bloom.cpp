/**
 * @file
 * The paper's Sec. X case study: asserting a program you only PARTIALLY
 * understand. The Deutsch-Jozsa oracle is a black box guaranteed to be
 * constant or balanced; approximate assertion checks membership in the
 * corresponding state SET -- the quantum analogue of a Bloom filter:
 * "definitely not in the set" vs "probably in the set".
 *
 *   $ ./deutsch_jozsa_bloom
 */
#include <cmath>
#include <iostream>

#include "algos/deutsch_jozsa.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"

int
main()
{
    using namespace qa;
    using namespace qa::algos;

    std::cout
        << "Black-box f(x) over 2 input qubits; joint state |x>|f(x)>\n"
        << "prepared over inputs in |+>|+>. We cannot predict f, but we\n"
        << "can assert membership in the constant-function state set\n"
        << "(Table IV):\n\n";
    for (const CVector& v : djConstantSet(2)) {
        std::cout << "   " << v.toString(2) << "\n";
    }
    std::cout << "\n";

    const StateSet constant_set = StateSet::approximate(djConstantSet(2));
    const std::vector<std::tuple<const char*, DjOracle, uint64_t>>
        oracles = {
            {"f = 0 (constant)", DjOracle::kConstantZero, 0},
            {"f = 1 (constant)", DjOracle::kConstantOne, 0},
            {"f = x0 (balanced)", DjOracle::kBalancedMask, 0b01},
            {"f = x0 AND x1 (BUG: neither)", DjOracle::kBuggyAnd, 0},
        };

    std::cout << "assertion: joint state within the constant set?\n";
    for (const auto& [name, oracle, mask] : oracles) {
        AssertedProgram prog(djFunctionEval(2, oracle, mask));
        prog.assertState({0, 1, 2}, constant_set, AssertionDesign::kSwap);
        const double err = runAssertedExact(prog).slot_error_prob[0];
        std::cout << "  " << name << ": P(assertion error) = "
                  << formatDouble(err, 3) << "\n";
    }

    std::cout
        << "\nBloom-filter semantics (Sec. III):\n"
        << " * error raised        -> state DEFINITELY outside the set\n"
        << "   (balanced and buggy oracles trip it);\n"
        << " * no error            -> state within the SPAN of the set,\n"
        << "   not necessarily one of its members;\n"
        << " * the buggy 3:1 oracle errors with p = 0.375 < 1: it still\n"
        << "   overlaps the constant span -- exactly the paper's\n"
        << "   Fig. 17b observation.\n\n";

    // The over-wide filter: constant + balanced combined.
    std::vector<CVector> combined = djConstantSet(2);
    const auto balanced = djBalancedSet(2);
    combined.insert(combined.end(), balanced.begin(), balanced.end());
    AssertedProgram wide(djFunctionEval(2, DjOracle::kBuggyAnd));
    wide.assertState({0, 1, 2}, StateSet::approximate(combined),
                     AssertionDesign::kSwap);
    std::cout
        << "Over-widening the set (constant + balanced, a rank-5 span)\n"
        << "admits the buggy state as a false positive: P(err) = "
        << formatDouble(runAssertedExact(wide).slot_error_prob[0], 3)
        << "\nLike an over-full Bloom filter, a too-large state set\n"
        << "stops discriminating -- choose the tightest set you can\n"
        << "still guarantee.\n";
    return 0;
}
