/**
 * @file
 * Assertion-guarded quantum teleportation: the entanglement workload
 * the paper's related-work section motivates. A Bell-pair assertion
 * checks the resource mid-protocol (non-destructively!), and a precise
 * single-qubit assertion verifies delivery at the end.
 *
 *   $ ./teleport_assertions
 */
#include <cmath>
#include <iostream>

#include "algos/states.hpp"
#include "algos/teleport.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"

int
main()
{
    using namespace qa;
    using namespace qa::algos;

    const CVector payload{Complex(0.6, 0.0), Complex(0.0, 0.8)};
    std::cout << "Teleporting " << payload.toString(2)
              << " from qubit 0 to qubit 2 via a Bell pair on (1,2)\n\n";

    const std::vector<std::pair<const char*, TeleportBug>> scenarios = {
        {"clean protocol", TeleportBug::kNone},
        {"bug: resource pair prepared as Psi+ instead of Phi+",
         TeleportBug::kWrongBellPair},
        {"bug: CZ correction dropped", TeleportBug::kMissingZCorrection},
    };

    for (const auto& [label, bug] : scenarios) {
        // Slot A: assert the Bell resource right after its preparation.
        QuantumCircuit prefix(3);
        std::vector<int> ident{0, 1, 2};
        prefix.compose(teleportStage(payload, 0, bug), ident);
        prefix.compose(teleportStage(payload, 1, bug), ident);
        AssertedProgram mid(prefix);
        mid.assertState({1, 2},
                        StateSet::pure(bellVector(BellKind::kPhiPlus)),
                        AssertionDesign::kNdd);
        const double bell_err = runAssertedExact(mid).slot_error_prob[0];

        // Slot B: assert the delivered payload at the end.
        AssertedProgram full(teleportProgram(payload, bug));
        full.assertState({2}, StateSet::pure(payload),
                         AssertionDesign::kSwap);
        const double out_err = runAssertedExact(full).slot_error_prob[0];

        std::cout << "--- " << label << " ---\n"
                  << "  Bell-pair assertion (slot A): P(err) = "
                  << formatDouble(bell_err, 3) << "\n"
                  << "  payload assertion   (slot B): P(err) = "
                  << formatDouble(out_err, 3) << "\n";
        if (bell_err > 1e-9) {
            std::cout << "  => the resource pair is wrong: fix the "
                         "entanglement stage.\n";
        } else if (out_err > 1e-9) {
            std::cout << "  => resource fine, delivery wrong: the bug "
                         "is in the correction stage.\n";
        } else {
            std::cout << "  => protocol verified end to end.\n";
        }
        std::cout << "\n";
    }

    std::cout
        << "Note the division of labour: the mid-protocol assertion is\n"
        << "non-destructive (teleportation proceeds on pass), and the\n"
        << "two slots bracket WHICH stage broke -- the paper's slot\n"
        << "debugging methodology applied to a communication protocol.\n";
    return 0;
}
