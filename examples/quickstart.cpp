/**
 * @file
 * Quickstart: insert a runtime assertion into a quantum program and run
 * it. Mirrors the paper's API
 *     assert(circuit, qubitList, stateSet, design)
 * with qassert's AssertedProgram.
 *
 *   $ ./quickstart
 */
#include <cmath>
#include <iostream>

#include "core/runner.hpp"
#include "linalg/states.hpp"

int
main()
{
    using namespace qa;

    // 1. Write a quantum program: prepare a Bell pair... with a bug
    //    (an extra Z flips the relative sign).
    QuantumCircuit program(2);
    program.h(0);
    program.cx(0, 1);
    program.z(0); // <- the bug

    // 2. Say what the state SHOULD be at this point.
    CVector bell(4);
    bell[0] = bell[3] = 1.0 / std::sqrt(2.0);

    // 3. Insert a dynamic assertion. kAuto picks the cheapest of the
    //    three designs (SWAP / logical-OR / NDD), like the paper's
    //    design = NONE.
    AssertedProgram asserted(program);
    asserted.assertState({0, 1}, StateSet::pure(bell),
                         AssertionDesign::kAuto);
    asserted.measureProgram();

    // 4. Run. The assertion ancilla reads |1> when the state is wrong.
    SimOptions options;
    options.shots = 4096;
    options.seed = 7;
    const AssertionOutcome outcome = runAsserted(asserted, options);

    const auto& slot = asserted.slots()[0];
    std::cout << "design chosen : " << designName(slot.design) << "\n"
              << "assertion cost: " << slot.cost.cx << " CX, "
              << slot.cost.sg << " single-qubit gates, "
              << slot.cost.ancilla << " ancilla(s)\n"
              << "error rate    : " << outcome.slot_error_rate[0]
              << "  (a correct Bell pair would give 0)\n";

    // 5. Fix the bug and watch the assertion go quiet.
    QuantumCircuit fixed(2);
    fixed.h(0);
    fixed.cx(0, 1);
    AssertedProgram ok(fixed);
    ok.assertState({0, 1}, StateSet::pure(bell), AssertionDesign::kAuto);
    ok.measureProgram();
    const AssertionOutcome good = runAsserted(ok, options);
    std::cout << "after the fix : error rate "
              << good.slot_error_rate[0] << "\n"
              << "program counts (post-selected on assertion pass):\n";
    for (const auto& [bits, count] : good.program_counts_passed.map) {
        std::cout << "  " << bits << " : " << count << "\n";
    }
    return 0;
}
