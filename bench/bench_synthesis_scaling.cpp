/**
 * @file
 * Sec. VI-B reproduction: the asymptotic argument behind the SWAP design
 * being affordable. State preparation costs O(2^n) CX while generic
 * n-qubit unitary synthesis costs O(4^n) CX, so asserting a known state
 * is much cheaper than the program that computed it; the SWAP and OR
 * overheads on top scale linearly.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/asserted_program.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"
#include "synth/unitary_synth.hpp"
#include "transpile/peephole.hpp"

namespace
{

using namespace qa;

void
printScaling()
{
    Rng rng(7);
    bench::banner("Sec. VI-B: state-prep vs generic-unitary CX scaling");
    TextTable table({"n", "state prep #CX", "2^n", "generic unitary #CX",
                     "4^n", "SWAP assertion #CX", "OR assertion #CX"});
    for (int n = 1; n <= 6; ++n) {
        const CVector psi = randomState(n, rng);
        const QuantumCircuit prep =
            optimizeAndLower(prepareState(psi));

        int unitary_cx = -1;
        if (n <= 4) {
            const CMatrix u = randomUnitary(size_t(1) << n, rng);
            unitary_cx = optimizeAndLower(synthesizeUnitary(u)).countCx();
        }
        const CircuitCost swap_cost =
            estimateAssertionCost(StateSet::pure(psi),
                                  AssertionDesign::kSwap);
        const CircuitCost or_cost = estimateAssertionCost(
            StateSet::pure(psi), AssertionDesign::kOr);

        table.addRow({std::to_string(n),
                      std::to_string(prep.countCx()),
                      std::to_string(1 << n),
                      unitary_cx < 0 ? "-" : std::to_string(unitary_cx),
                      std::to_string(1 << (2 * n)),
                      std::to_string(swap_cost.cx),
                      std::to_string(or_cost.cx)});
    }
    std::cout << table.render();
    std::cout << "Shape: state-prep CX tracks O(2^n); generic unitary "
                 "CX tracks O(4^n); the SWAP assertion adds 2n CX of "
                 "swap overhead on top of prep + unprep.\n";

    bench::banner("Structured states stay cheap at any n");
    TextTable structured({"state", "prep #CX", "SWAP assertion #CX"});
    for (int n : {3, 5, 7}) {
        CVector ghz(size_t(1) << n);
        ghz[0] = ghz[ghz.dim() - 1] = 1.0 / std::sqrt(2.0);
        const QuantumCircuit prep = optimizeAndLower(prepareState(ghz));
        const CircuitCost cost = estimateAssertionCost(
            StateSet::pure(ghz), AssertionDesign::kSwap);
        structured.addRow({"GHZ n=" + std::to_string(n),
                           std::to_string(prep.countCx()),
                           std::to_string(cost.cx)});
    }
    std::cout << structured.render();
}

void
BM_StatePrep(benchmark::State& state)
{
    Rng rng(int(state.range(0)));
    const CVector psi = randomState(int(state.range(0)), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(prepareState(psi).size());
    }
}
BENCHMARK(BM_StatePrep)->DenseRange(2, 7);

void
BM_GenericUnitarySynthesis(benchmark::State& state)
{
    Rng rng(int(state.range(0)));
    const CMatrix u = randomUnitary(size_t(1) << state.range(0), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(synthesizeUnitary(u).size());
    }
}
BENCHMARK(BM_GenericUnitarySynthesis)->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

void
BM_PeepholeOptimize(benchmark::State& state)
{
    Rng rng(17);
    const CVector psi = randomState(int(state.range(0)), rng);
    const QuantumCircuit prep = prepareState(psi);
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimizeAndLower(prep).size());
    }
}
BENCHMARK(BM_PeepholeOptimize)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    printScaling();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
