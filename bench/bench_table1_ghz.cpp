/**
 * @file
 * Table I reproduction: assertion coverage and circuit cost for the GHZ
 * state across the six assertion schemes, against the paper's Bug1
 * (swapped u2 arguments -> sign-flipped coefficient) and Bug2 (reordered
 * CX chain -> wrong entanglement), plus google-benchmark timings of
 * assertion-circuit construction.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/states.hpp"
#include "baselines/stat_assertion.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

/** Detection verdict for one design against one bug. */
std::string
detects(AssertionDesign design, const StateSet& set,
        const std::vector<int>& qubits, int bug)
{
    AssertedProgram prog(ghzPrep(3, bug));
    prog.assertState(qubits, set, design);
    const double err = runAssertedExact(prog).slot_error_prob[0];
    return err > 1e-6 ? "True" : "False";
}

void
printTable1()
{
    const CVector ghz = ghzVector(3);
    const CMatrix rho23 = partialTrace(densityFromPure(ghz), {1, 2});
    auto mk = [](int a, int b) {
        CVector v(8);
        v[a] = v[b] = 1.0 / std::sqrt(2.0);
        return v;
    };
    const StateSet ndd_parity = StateSet::approximate(
        {mk(0, 7), mk(1, 6), mk(3, 4), mk(2, 5)});

    struct Row
    {
        std::string name;
        StateSet set;
        std::vector<int> qubits;
        AssertionDesign design;
        std::string paper; // "cx/sg/anc/meas"
    };
    const std::vector<Row> rows = {
        {"Proq [30]", StateSet::pure(ghz), {0, 1, 2},
         AssertionDesign::kProq, "4/2/0/3"},
        {"SWAP-based precise", StateSet::pure(ghz), {0, 1, 2},
         AssertionDesign::kSwap, "10/2/3/3"},
        {"SWAP-based mixed state", StateSet::mixed(rho23), {1, 2},
         AssertionDesign::kSwap, "4/0/1/1"},
        {"NDD-based approximate", ndd_parity, {0, 1, 2},
         AssertionDesign::kNdd, "3/2/1/1"},
    };

    bench::banner("Table I: GHZ assertion coverage and circuit cost");
    TextTable table({"Assertion type", "Bug1", "Bug2", "#CX", "#SG",
                     "#ancilla", "#measure"});

    // Stat baseline row: chi-square on the measured distribution.
    {
        auto stat = [&](int bug) {
            StatAssertionOptions options;
            options.seed = 1234;
            return statAssertState(ghzPrep(3, bug), {0, 1, 2}, ghz,
                                   options)
                           .rejected
                       ? std::string("True")
                       : std::string("False");
        };
        table.addRow({"Stat [28] (destructive)", stat(1), stat(2), "N/A",
                      "N/A", "N/A", "N/A"});
    }
    table.addRow({"Primitive [32]", "N/A (cannot express GHZ)", "N/A",
                  "N/A", "N/A", "N/A", "N/A"});

    for (const Row& row : rows) {
        const CircuitCost cost = estimateAssertionCost(row.set, row.design);
        table.addRow({row.name,
                      detects(row.design, row.set, row.qubits, 1),
                      detects(row.design, row.set, row.qubits, 2),
                      std::to_string(cost.cx), std::to_string(cost.sg),
                      std::to_string(cost.ancilla),
                      std::to_string(cost.measure)});
    }
    std::cout << table.render();
    std::cout << "Paper (cx/sg/anc/meas): Proq 4/2/0/3, SWAP precise "
                 "10/2/3/3, SWAP mixed 4/0/1/1, NDD approx 3/2/1/1\n";
    std::cout << "Paper detection: Stat F/T, Primitive N/A, Proq T/T, "
                 "SWAP precise T/T, SWAP mixed F/T, NDD approx T/T\n";
}

void
BM_BuildSwapPreciseGhz(benchmark::State& state)
{
    const StateSet set = StateSet::pure(ghzVector(int(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimateAssertionCost(set, AssertionDesign::kSwap));
    }
}
BENCHMARK(BM_BuildSwapPreciseGhz)->Arg(3)->Arg(4)->Arg(5);

void
BM_RunAssertedGhzExact(benchmark::State& state)
{
    AssertedProgram prog(ghzPrep(3));
    prog.assertState({0, 1, 2}, StateSet::pure(ghzVector(3)),
                     AssertionDesign::kSwap);
    for (auto _ : state) {
        benchmark::DoNotOptimize(runAssertedExact(prog));
    }
}
BENCHMARK(BM_RunAssertedGhzExact);

} // namespace

int
main(int argc, char** argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
