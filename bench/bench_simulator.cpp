/**
 * @file
 * Substrate benchmark: throughput of the simulation backends that every
 * reproduction number rests on -- statevector gate kernels, shot
 * sampling, exact branching distributions, density-matrix evolution,
 * and the stabilizer tableau.
 */
#include <cmath>

#include <benchmark/benchmark.h>

#include "algos/qft.hpp"
#include "linalg/states.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"
#include "stab/tableau.hpp"

namespace
{

using namespace qa;

QuantumCircuit
layeredCircuit(int n, int layers)
{
    QuantumCircuit qc(n);
    Rng rng(1);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) {
            qc.u3(q, rng.uniform(0, 3), rng.uniform(0, 3),
                  rng.uniform(0, 3));
        }
        for (int q = 0; q + 1 < n; q += 2) qc.cx(q, q + 1);
        for (int q = 1; q + 1 < n; q += 2) qc.cx(q, q + 1);
    }
    return qc;
}

void
BM_StatevectorLayers(benchmark::State& state)
{
    const int n = int(state.range(0));
    const QuantumCircuit qc = layeredCircuit(n, 10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(finalState(qc).amplitudes().dim());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(qc.size()));
}
BENCHMARK(BM_StatevectorLayers)->DenseRange(4, 16, 4);

void
BM_ShotSampling(benchmark::State& state)
{
    QuantumCircuit qc = layeredCircuit(8, 5);
    QuantumCircuit measured(8, 8);
    std::vector<int> ident{0, 1, 2, 3, 4, 5, 6, 7};
    measured.compose(qc, ident);
    measured.measureAll();
    SimOptions options;
    options.shots = int(state.range(0));
    options.seed = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runShots(measured, options).shots);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * options.shots);
}
BENCHMARK(BM_ShotSampling)->Arg(128)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void
BM_ExactBranching(benchmark::State& state)
{
    // Mid-circuit measurements force branching: 4 measurements on an
    // 8-qubit circuit.
    QuantumCircuit qc(8, 4);
    std::vector<int> ident{0, 1, 2, 3, 4, 5, 6, 7};
    qc.compose(layeredCircuit(8, 3), ident);
    for (int m = 0; m < 4; ++m) qc.measure(m, m);
    qc.compose(layeredCircuit(8, 2), ident);
    for (auto _ : state) {
        benchmark::DoNotOptimize(exactDistribution(qc).probs.size());
    }
}
BENCHMARK(BM_ExactBranching)->Unit(benchmark::kMillisecond);

void
BM_DensityMatrixLayers(benchmark::State& state)
{
    const int n = int(state.range(0));
    const QuantumCircuit qc = layeredCircuit(n, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(finalDensity(qc).rows());
    }
}
BENCHMARK(BM_DensityMatrixLayers)->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);

void
BM_DensityMatrixWithNoise(benchmark::State& state)
{
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    const QuantumCircuit qc = layeredCircuit(int(state.range(0)), 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(finalDensity(qc, &noise).rows());
    }
}
BENCHMARK(BM_DensityMatrixWithNoise)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void
BM_StabilizerTableau(benchmark::State& state)
{
    const int n = int(state.range(0));
    QuantumCircuit qc(n);
    Rng rng(3);
    for (int g = 0; g < 20 * n; ++g) {
        const int a = int(rng.index(n));
        int b = int(rng.index(n));
        if (b == a) b = (b + 1) % n;
        switch (rng.index(4)) {
          case 0: qc.h(a); break;
          case 1: qc.s(a); break;
          case 2: qc.cx(a, b); break;
          case 3: qc.cz(a, b); break;
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(runClifford(qc).numQubits());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(qc.size()));
}
BENCHMARK(BM_StabilizerTableau)->Arg(16)->Arg(64)->Arg(256);

void
BM_QftFullStack(benchmark::State& state)
{
    // End-to-end: build QFT, lower it, simulate it.
    const int n = int(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            finalState(qa::algos::qft(n)).amplitudes().dim());
    }
}
BENCHMARK(BM_QftFullStack)->DenseRange(4, 12, 4);

} // namespace

BENCHMARK_MAIN();
