/**
 * @file
 * Substrate benchmark: throughput of the simulation backends that every
 * reproduction number rests on -- statevector gate kernels, shot
 * sampling, exact branching distributions, density-matrix evolution,
 * and the stabilizer tableau.
 */
#include <cmath>

#include <benchmark/benchmark.h>

#include "algos/qft.hpp"
#include "linalg/states.hpp"
#include "sim/density.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"
#include "stab/tableau.hpp"

namespace
{

using namespace qa;

QuantumCircuit
layeredCircuit(int n, int layers)
{
    QuantumCircuit qc(n);
    Rng rng(1);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) {
            qc.u3(q, rng.uniform(0, 3), rng.uniform(0, 3),
                  rng.uniform(0, 3));
        }
        for (int q = 0; q + 1 < n; q += 2) qc.cx(q, q + 1);
        for (int q = 1; q + 1 < n; q += 2) qc.cx(q, q + 1);
    }
    return qc;
}

void
BM_StatevectorLayers(benchmark::State& state)
{
    const int n = int(state.range(0));
    const QuantumCircuit qc = layeredCircuit(n, 10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(finalState(qc).amplitudes().dim());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(qc.size()));
}
BENCHMARK(BM_StatevectorLayers)->DenseRange(4, 16, 4);

/**
 * Same workload with fusion and SIMD disabled: the pre-fusion kernel
 * path. The BM_StatevectorLayers ratio is the tentpole speedup.
 */
void
BM_StatevectorLayersUnfused(benchmark::State& state)
{
    const int n = int(state.range(0));
    const QuantumCircuit qc = layeredCircuit(n, 10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            finalState(qc, FusionOptions{false, 2}, false)
                .amplitudes()
                .dim());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(qc.size()));
}
BENCHMARK(BM_StatevectorLayersUnfused)->DenseRange(4, 16, 4);

/**
 * The PR 6 acceptance workload: a 16-qubit random 1q+2q layered
 * circuit at 4096 shots through the full shot engine (fused prefix +
 * terminal sampling). The Fused/Unfused pair brackets the fusion +
 * SIMD win on a realistic job.
 */
void
BM_ShotEngineRandom16(benchmark::State& state)
{
    QuantumCircuit qc(16, 16);
    std::vector<int> ident;
    for (int q = 0; q < 16; ++q) ident.push_back(q);
    qc.compose(layeredCircuit(16, 8), ident);
    qc.measureAll();
    SimOptions options;
    options.shots = 4096;
    options.seed = 11;
    options.fusion = state.range(0) != 0;
    options.simd = state.range(0) != 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runShots(qc, options).shots);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * options.shots);
}
BENCHMARK(BM_ShotEngineRandom16)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"fused"})
    ->Unit(benchmark::kMillisecond);

void
BM_ShotSampling(benchmark::State& state)
{
    QuantumCircuit qc = layeredCircuit(8, 5);
    QuantumCircuit measured(8, 8);
    std::vector<int> ident{0, 1, 2, 3, 4, 5, 6, 7};
    measured.compose(qc, ident);
    measured.measureAll();
    SimOptions options;
    options.shots = int(state.range(0));
    options.seed = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runShots(measured, options).shots);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * options.shots);
}
BENCHMARK(BM_ShotSampling)->Arg(128)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/** n-qubit QFT with every qubit measured: the terminal fast-path case. */
QuantumCircuit
measuredQft(int n)
{
    QuantumCircuit qc(n, n);
    std::vector<int> ident;
    for (int q = 0; q < n; ++q) ident.push_back(q);
    qc.compose(qa::algos::qft(n), ident);
    qc.measureAll();
    return qc;
}

/**
 * Shot engine, noiseless terminal measurement (12-qubit QFT, 4096
 * shots): the prefix is evolved once and the final distribution sampled
 * per shot. Thread count is the benchmark argument.
 */
void
BM_ShotEngineTerminal(benchmark::State& state)
{
    const QuantumCircuit qc = measuredQft(12);
    SimOptions options;
    options.shots = 4096;
    options.seed = 7;
    options.num_threads = int(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(runShots(qc, options).shots);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * options.shots);
}
BENCHMARK(BM_ShotEngineTerminal)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Seed-equivalent reference on the same workload: full per-shot replay
 * (options.naive), pinned to one iteration because a single run costs
 * seconds. The BM_ShotEngineTerminal/1 ratio is the engine speedup.
 */
void
BM_ShotEngineTerminalNaive(benchmark::State& state)
{
    const QuantumCircuit qc = measuredQft(12);
    SimOptions options;
    options.shots = 4096;
    options.seed = 7;
    options.num_threads = 1;
    options.naive = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runShots(qc, options).shots);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * options.shots);
}
BENCHMARK(BM_ShotEngineTerminalNaive)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Shot engine with a mid-circuit measurement: the deterministic prefix
 * (10 layers) is cached; only the short suffix replays per shot.
 */
void
BM_ShotEngineMidCircuit(benchmark::State& state)
{
    QuantumCircuit qc(10, 10);
    std::vector<int> ident{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    qc.compose(layeredCircuit(10, 10), ident);
    qc.measure(0, 0);
    qc.compose(layeredCircuit(10, 1), ident);
    qc.measureAll();
    SimOptions options;
    options.shots = 256;
    options.seed = 11;
    options.num_threads = int(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(runShots(qc, options).shots);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * options.shots);
}
BENCHMARK(BM_ShotEngineMidCircuit)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Shot engine under trajectory noise: the split lands on the first
 * noisy gate, so per-shot replay dominates and the thread pool carries
 * the scaling.
 */
void
BM_ShotEngineNoisy(benchmark::State& state)
{
    const QuantumCircuit qc = measuredQft(8);
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    SimOptions options;
    options.shots = 256;
    options.seed = 13;
    options.noise = &noise;
    options.num_threads = int(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(runShots(qc, options).shots);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * options.shots);
}
BENCHMARK(BM_ShotEngineNoisy)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ExactBranching(benchmark::State& state)
{
    // Mid-circuit measurements force branching: 4 measurements on an
    // 8-qubit circuit.
    QuantumCircuit qc(8, 4);
    std::vector<int> ident{0, 1, 2, 3, 4, 5, 6, 7};
    qc.compose(layeredCircuit(8, 3), ident);
    for (int m = 0; m < 4; ++m) qc.measure(m, m);
    qc.compose(layeredCircuit(8, 2), ident);
    for (auto _ : state) {
        benchmark::DoNotOptimize(exactDistribution(qc).probs.size());
    }
}
BENCHMARK(BM_ExactBranching)->Unit(benchmark::kMillisecond);

void
BM_DensityMatrixLayers(benchmark::State& state)
{
    const int n = int(state.range(0));
    const QuantumCircuit qc = layeredCircuit(n, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(finalDensity(qc).rows());
    }
}
BENCHMARK(BM_DensityMatrixLayers)->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);

void
BM_DensityMatrixWithNoise(benchmark::State& state)
{
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    const QuantumCircuit qc = layeredCircuit(int(state.range(0)), 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(finalDensity(qc, &noise).rows());
    }
}
BENCHMARK(BM_DensityMatrixWithNoise)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void
BM_StabilizerTableau(benchmark::State& state)
{
    const int n = int(state.range(0));
    QuantumCircuit qc(n);
    Rng rng(3);
    for (int g = 0; g < 20 * n; ++g) {
        const int a = int(rng.index(n));
        int b = int(rng.index(n));
        if (b == a) b = (b + 1) % n;
        switch (rng.index(4)) {
          case 0: qc.h(a); break;
          case 1: qc.s(a); break;
          case 2: qc.cx(a, b); break;
          case 3: qc.cz(a, b); break;
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(runClifford(qc).numQubits());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(qc.size()));
}
BENCHMARK(BM_StabilizerTableau)->Arg(16)->Arg(64)->Arg(256);

void
BM_QftFullStack(benchmark::State& state)
{
    // End-to-end: build QFT, lower it, simulate it.
    const int n = int(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            finalState(qa::algos::qft(n)).amplitudes().dim());
    }
}
BENCHMARK(BM_QftFullStack)->DenseRange(4, 12, 4);

} // namespace

BENCHMARK_MAIN();
