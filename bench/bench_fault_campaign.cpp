/**
 * @file
 * Fault-injection campaign reproduction: systematic (location x kind)
 * sweeps over the paper's benchmark circuits, reporting how much of the
 * fault space each assertion design detects — the campaign-driven
 * version of Sec. IX's per-bug error-injection evaluation — plus a
 * localization campaign driving the SlotDebugger over every staged GHZ
 * fault.
 */
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/adder.hpp"
#include "algos/deutsch_jozsa.hpp"
#include "algos/states.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "inject/campaign.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

const std::vector<FaultKind> kAllKinds = {
    FaultKind::kPauliX,  FaultKind::kPauliY,    FaultKind::kPauliZ,
    FaultKind::kBitFlip, FaultKind::kPhaseFlip, FaultKind::kGateDrop,
    FaultKind::kGateDuplicate};

struct NamedProgram
{
    const char* name;
    QuantumCircuit circuit;
};

std::vector<NamedProgram>
benchmarkPrograms()
{
    std::vector<NamedProgram> programs;
    programs.push_back({"GHZ-4", ghzPrep(4)});
    programs.push_back(
        {"DJ-3", djFunctionEval(3, DjOracle::kBalancedMask, 0b101)});
    programs.push_back({"adder-3",
                        adderProgram(3, /*initial=*/4, /*a=*/3,
                                     /*num_controls=*/1,
                                     /*controls_on=*/true)});
    return programs;
}

void
printCampaignTables()
{
    bench::banner("Fault-injection campaigns: detection coverage per "
                  "assertion design (exact backend)");
    TextTable table({"Program", "Design", "Faults", "Detected",
                     "Coverage", "Silent corrupting"});
    for (const NamedProgram& program : benchmarkPrograms()) {
        for (AssertionDesign design :
             {AssertionDesign::kSwap, AssertionDesign::kOr,
              AssertionDesign::kNdd}) {
            const CampaignRunner runner =
                CampaignRunner::assertingFinalState(program.circuit,
                                                    design);
            CampaignOptions options;
            options.shots = 0; // exact
            options.kinds = kAllKinds;
            const CampaignReport report = runner.run(options);
            table.addRow({program.name, designName(design),
                          std::to_string(report.num_faults),
                          std::to_string(report.num_detected),
                          formatPercent(report.coverage()),
                          std::to_string(report.num_silent_corrupting)});
        }
    }
    std::cout << table.render();

    bench::banner("GHZ-4 SWAP campaign detail (per kind / per slot)");
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        ghzPrep(4), AssertionDesign::kSwap);
    CampaignOptions options;
    options.kinds = kAllKinds;
    const CampaignReport detail = runner.run(options);
    std::cout << detail.summary();
}

void
printLocalizationTable()
{
    bench::banner("Localization campaign: staged GHZ-4, every single-"
                  "Pauli fault vs SlotDebugger");
    std::vector<QuantumCircuit> stages;
    QuantumCircuit s0(4);
    s0.h(0);
    stages.push_back(s0);
    for (int q = 0; q + 1 < 4; ++q) {
        QuantumCircuit stage(4);
        stage.cx(q, q + 1);
        stages.push_back(stage);
    }
    TextTable table({"Mode", "Faults", "Detected", "Localized",
                     "Localization rate", "Slot evals"});
    for (bool bisect : {false, true}) {
        const LocalizationReport report = checkLocalization(
            stages,
            {FaultKind::kPauliX, FaultKind::kPauliY, FaultKind::kPauliZ},
            AssertionDesign::kSwap, bisect);
        table.addRow({bisect ? "bisect" : "linear",
                      std::to_string(report.num_faults),
                      std::to_string(report.num_detected),
                      std::to_string(report.num_localized),
                      formatPercent(report.localizationRate()),
                      std::to_string(report.evaluations)});
    }
    std::cout << table.render();
}

void
BM_CampaignGhz4Swap(benchmark::State& state)
{
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        ghzPrep(4), AssertionDesign::kSwap);
    CampaignOptions options;
    options.kinds = kAllKinds;
    for (auto _ : state) {
        const CampaignReport report = runner.run(options);
        benchmark::DoNotOptimize(report.num_detected);
    }
}
BENCHMARK(BM_CampaignGhz4Swap)->Unit(benchmark::kMillisecond);

void
BM_CampaignGhz4SampledParallel(benchmark::State& state)
{
    const CampaignRunner runner = CampaignRunner::assertingFinalState(
        ghzPrep(4), AssertionDesign::kSwap);
    CampaignOptions options;
    options.kinds = {FaultKind::kPauliX, FaultKind::kPauliZ};
    options.shots = 2048;
    options.num_threads = int(state.range(0));
    for (auto _ : state) {
        const CampaignReport report = runner.run(options);
        benchmark::DoNotOptimize(report.num_detected);
    }
}
BENCHMARK(BM_CampaignGhz4SampledParallel)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    printCampaignTables();
    printLocalizationTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
