/**
 * @file
 * Extension ablation: how the Sec. IX-B effects scale with noise
 * strength and with assertion repetition.
 *
 *  (a) assertion-error-rate floor and bug-separation vs. two-qubit
 *      depolarizing strength -- the debugging signal survives until the
 *      floor swamps it;
 *  (b) success-rate filtering gain vs. number of inserted assertions --
 *      the SWAP design "corrects" the tested qubits, so repeated
 *      assertions keep filtering (at the price of shots and added
 *      circuit noise).
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/qpe.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/eigen.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

constexpr double kTheta = M_PI / 4;
constexpr int kShots = 4096;

void
printErrorRateSweep()
{
    bench::banner("Assertion error rate vs. 2q depolarizing strength "
                  "(QPE slot-6 single-qubit assertion)");
    TextTable table({"p2", "no bug", "with bug", "separation"});
    for (double p2 : {0.005, 0.01, 0.02, 0.04, 0.08}) {
        NoiseModel noise = NoiseModel::depolarizing(p2 / 10.0, p2);
        noise.readout_p01 = 0.01;
        noise.readout_p10 = 0.02;
        auto rate = [&](bool bug, uint64_t seed) {
            AssertedProgram prog(qpeRyProgram(4, kTheta, bug));
            prog.assertState({4}, StateSet::pure(qpeRyEigenstate()),
                             AssertionDesign::kSwap);
            SimOptions options;
            options.shots = kShots;
            options.seed = seed;
            options.noise = &noise;
            return runAsserted(prog, options).slot_error_rate[0];
        };
        const double clean = rate(false, 31);
        const double buggy = rate(true, 32);
        table.addRow({formatDouble(p2, 3), formatPercent(clean),
                      formatPercent(buggy),
                      formatPercent(buggy - clean)});
    }
    std::cout << table.render();
    std::cout << "Shape: the floor grows with noise while the bug "
                 "separation shrinks -- debugging wants the cheapest "
                 "assertion circuit available (the paper's cost "
                 "argument).\n";
}

void
printRepetitionSweep()
{
    bench::banner("Success-rate filtering vs. assertion repetitions "
                  "(SWAP corrects on pass)");
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();

    // Expected counting-register state (pure in the Ry variant).
    const CVector final_state =
        finalState(qpeRyProgram(4, kTheta, false)).amplitudes();
    const CMatrix rho_counting =
        partialTrace(densityFromPure(final_state), {0, 1, 2, 3});
    const CVector counting =
        eigHermitian(rho_counting).vectors.column(0);

    // Ideal outcome set.
    AssertedProgram ideal(qpeRyProgram(4, kTheta, false));
    ideal.measureProgram();
    const AssertionOutcomeExact ideal_out = runAssertedExact(ideal);

    auto successRate = [&](const Counts& counts) {
        double total = 0.0;
        for (const auto& [bits, p] : ideal_out.program_dist.probs) {
            if (p > 1e-9) {
                total += counts.toDistribution().probability(bits);
            }
        }
        return total;
    };

    TextTable table({"#assertions", "pass rate", "filtered success",
                     "surviving shots"});
    for (int repeats : {0, 1, 2, 3}) {
        AssertedProgram prog(qpeRyProgram(4, kTheta, false));
        for (int r = 0; r < repeats; ++r) {
            prog.assertState({0, 1, 2, 3}, StateSet::pure(counting),
                             AssertionDesign::kSwap);
        }
        prog.measureProgram();
        SimOptions options;
        options.shots = kShots;
        options.seed = 77 + uint64_t(repeats);
        options.noise = &noise;
        const AssertionOutcome outcome = runAsserted(prog, options);
        table.addRow(
            {std::to_string(repeats), formatPercent(outcome.pass_rate),
             formatPercent(successRate(
                 repeats == 0 ? outcome.program_counts
                              : outcome.program_counts_passed)),
             std::to_string(repeats == 0
                                ? outcome.program_counts.shots
                                : outcome.program_counts_passed.shots)});
    }
    std::cout << table.render();
    std::cout << "Shape: each repetition filters more errors but costs "
                 "shots and adds its own gate noise -- the returns "
                 "diminish, matching the paper's framing of assertions "
                 "as a fidelity/overhead trade.\n";
}

void
BM_NoiseSweepPoint(benchmark::State& state)
{
    NoiseModel noise =
        NoiseModel::depolarizing(0.002, 0.02);
    AssertedProgram prog(qpeRyProgram(4, kTheta, false));
    prog.assertState({4}, StateSet::pure(qpeRyEigenstate()),
                     AssertionDesign::kSwap);
    SimOptions options;
    options.shots = int(state.range(0));
    options.seed = 5;
    options.noise = &noise;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runAsserted(prog, options));
    }
}
BENCHMARK(BM_NoiseSweepPoint)->Arg(512)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    printErrorRateSweep();
    printRepetitionSweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
