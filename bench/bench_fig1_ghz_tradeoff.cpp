/**
 * @file
 * Figure 1 reproduction: the accuracy-vs-cost trade-off for checking the
 * GHZ state with assertions of decreasing precision:
 *
 *   precise 3-qubit pure state        (paper: 10 CX)
 *   precise 2-qubit mixed state       (paper:  4 CX)
 *   approximate {|000>, |111>}        (paper:  8 CX)
 *   approximate 4-state expansion     (paper:  4 CX)
 *   NDD approximate parity set        (paper:  3 CX)
 *
 * For each variant we report the measured cost plus what each bug class
 * can still be caught (the accuracy axis of the trade-off).
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/states.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

struct Variant
{
    std::string name;
    StateSet set;
    std::vector<int> qubits;
    AssertionDesign design;
    std::string paper_cx;
};

std::vector<Variant>
variants()
{
    const CVector ghz = ghzVector(3);
    const CMatrix rho23 = partialTrace(densityFromPure(ghz), {1, 2});
    auto mk = [](int a, int b) {
        CVector v(8);
        v[a] = v[b] = 1.0 / std::sqrt(2.0);
        return v;
    };
    return {
        {"precise 3q pure", StateSet::pure(ghz), {0, 1, 2},
         AssertionDesign::kSwap, "10"},
        {"precise 2q mixed (q1,q2)", StateSet::mixed(rho23), {1, 2},
         AssertionDesign::kSwap, "4"},
        {"approx {000,111}",
         StateSet::approximate(
             {CVector::basisState(8, 0), CVector::basisState(8, 7)}),
         {0, 1, 2}, AssertionDesign::kSwap, "8"},
        {"approx {000,011,100,111}",
         StateSet::approximate(
             {CVector::basisState(8, 0), CVector::basisState(8, 3),
              CVector::basisState(8, 4), CVector::basisState(8, 7)}),
         {0, 1, 2}, AssertionDesign::kSwap, "4"},
        {"NDD approx parity set",
         StateSet::approximate({mk(0, 7), mk(1, 6), mk(3, 4), mk(2, 5)}),
         {0, 1, 2}, AssertionDesign::kNdd, "3"},
    };
}

void
printFigure1()
{
    bench::banner("Figure 1: GHZ assertion granularity trade-off");
    TextTable table({"Assertion", "#CX (paper)", "#SG", "P(err|Bug1)",
                     "P(err|Bug2)"});
    for (const Variant& v : variants()) {
        const CircuitCost cost = estimateAssertionCost(v.set, v.design);
        auto err = [&](int bug) {
            AssertedProgram prog(ghzPrep(3, bug));
            prog.assertState(v.qubits, v.set, v.design);
            return formatDouble(runAssertedExact(prog).slot_error_prob[0],
                                3);
        };
        table.addRow({v.name, bench::vsPaper(cost.cx, v.paper_cx),
                      std::to_string(cost.sg), err(1), err(2)});
    }
    std::cout << table.render();
    std::cout << "Shape: precision buys coefficient sensitivity (Bug1); "
                 "every variant still sees the entanglement bug (Bug2); "
                 "cost falls monotonically along the approximation "
                 "ladder.\n";
}

void
BM_BuildVariant(benchmark::State& state)
{
    const auto all = variants();
    const Variant& v = all[size_t(state.range(0))];
    for (auto _ : state) {
        AssertedProgram prog(ghzPrep(3));
        prog.assertState(v.qubits, v.set, v.design);
        benchmark::DoNotOptimize(prog.circuit().size());
    }
}
BENCHMARK(BM_BuildVariant)->DenseRange(0, 4);

} // namespace

int
main(int argc, char** argv)
{
    printFigure1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
