/**
 * @file
 * Ablation of the four SWAP-design placement variants (Sec. IV-B notes
 * that four U / U^-1 placements exist; Fig. 3 and Fig. 6 are two).
 * Reports per-variant gate costs (the 2-CX optimized swap only applies
 * when the incoming ancilla/tested wire is provably |0>) and verifies
 * all four detect bugs identically.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/states.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

const char*
placementName(SwapPlacement placement)
{
    switch (placement) {
      case SwapPlacement::kInvBeforePrepAfter:
        return "Fig.3: U^-1 before / U after (2-CX swaps)";
      case SwapPlacement::kInvBeforePrepBefore:
        return "Fig.6: U^-1 before / U on ancillas (full swaps)";
      case SwapPlacement::kInvAfterPrepBefore:
        return "U on ancillas / U^-1 after (full swaps)";
      case SwapPlacement::kInvAfterPrepAfter:
        return "U^-1 after / U after (2-CX swaps)";
    }
    return "?";
}

void
printAblation()
{
    const std::vector<SwapPlacement> placements = {
        SwapPlacement::kInvBeforePrepAfter,
        SwapPlacement::kInvBeforePrepBefore,
        SwapPlacement::kInvAfterPrepBefore,
        SwapPlacement::kInvAfterPrepAfter,
    };

    bench::banner("SWAP placement ablation: GHZ precise assertion");
    TextTable table({"placement", "#CX", "#SG", "P(err|Bug1)",
                     "P(err|Bug2)"});
    for (SwapPlacement placement : placements) {
        const CircuitCost cost = estimateAssertionCost(
            StateSet::pure(ghzVector(3)), AssertionDesign::kSwap,
            placement);
        auto err = [&](int bug) {
            AssertedProgram prog(ghzPrep(3, bug));
            prog.assertState({0, 1, 2}, StateSet::pure(ghzVector(3)),
                             AssertionDesign::kSwap, placement);
            return formatDouble(runAssertedExact(prog).slot_error_prob[0],
                                3);
        };
        table.addRow({placementName(placement), std::to_string(cost.cx),
                      std::to_string(cost.sg), err(1), err(2)});
    }
    std::cout << table.render();
    std::cout << "All four variants are detection-equivalent; the "
                 "2-CX-swap placements are cheapest standalone while "
                 "the paper prefers Fig. 6 for cross-boundary compiler "
                 "optimization.\n";

    bench::banner("Placement cost sweep over random pure states");
    TextTable sweep({"n", "Fig.3", "Fig.6", "InvAfter/PrepBefore",
                     "InvAfter/PrepAfter"});
    Rng rng(62);
    for (int n = 1; n <= 4; ++n) {
        const StateSet set = StateSet::pure(randomState(n, rng));
        std::vector<std::string> row{std::to_string(n)};
        for (SwapPlacement placement : placements) {
            row.push_back(std::to_string(
                estimateAssertionCost(set, AssertionDesign::kSwap,
                                      placement).cx));
        }
        sweep.addRow(row);
    }
    std::cout << sweep.render();
    std::cout << "Shape: the full-swap placements pay ~n extra CX (3 vs "
                 "2 per swapped qubit).\n";
}

void
BM_PlacementBuild(benchmark::State& state)
{
    const auto placement = static_cast<SwapPlacement>(state.range(0));
    const StateSet set = StateSet::pure(ghzVector(4));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimateAssertionCost(set, AssertionDesign::kSwap,
                                  placement));
    }
}
BENCHMARK(BM_PlacementBuild)->DenseRange(0, 3);

} // namespace

int
main(int argc, char** argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
