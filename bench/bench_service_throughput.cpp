/**
 * @file
 * Service-layer benchmark: job throughput of the Scheduler worker pool
 * (jobs/sec vs worker count), the cross-job ResultCache's effect on a
 * repeated-submission workload, and admission-control overhead.
 *
 * Each benchmark double-checks the service's core guarantee while it
 * measures: per-job payloads must be bit-identical to a direct
 * executeJob of the same spec, cached or not, at any worker count.
 */
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "serve/job.hpp"
#include "serve/scheduler.hpp"

namespace
{

using namespace qa;
using namespace qa::serve;

/** A mid-size stochastic job; distinct per `variant`. */
JobSpec
workloadSpec(uint64_t variant, bool use_cache)
{
    JobSpec spec;
    const int n = 5;
    QuantumCircuit qc(n, n);
    for (int q = 0; q < n; ++q) qc.h(q);
    for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    qc.rz(int(variant % uint64_t(n)), 0.1 * double(variant + 1));
    for (int q = 0; q < n; ++q) qc.measure(q, q);
    spec.circuit = qc;
    spec.assert_clbits = {{0}};
    spec.shots = 512;
    spec.seed = 1000 + variant;
    spec.use_cache = use_cache;
    return spec;
}

bool
sameCounts(const Counts& a, const Counts& b)
{
    return a.map == b.map && a.shots == b.shots &&
           a.truncated == b.truncated;
}

[[noreturn]] void
dieMismatch(const char* what)
{
    std::fprintf(stderr,
                 "bench_service_throughput: %s diverged from the "
                 "uncached executeJob reference\n",
                 what);
    std::abort();
}

/**
 * Jobs/sec over a pool of `state.range(0)` workers, cache off: pure
 * scheduling + execution scaling. The per-iteration batch is fixed, so
 * items_per_second comparisons across worker counts are direct.
 */
void
BM_SchedulerThroughput(benchmark::State& state)
{
    const int workers = int(state.range(0));
    constexpr int kBatch = 32;

    std::vector<JobSpec> specs;
    std::vector<JobResult> reference;
    for (int j = 0; j < kBatch; ++j) {
        specs.push_back(workloadSpec(uint64_t(j), false));
        reference.push_back(executeJob(specs.back()));
    }

    for (auto _ : state) {
        SchedulerOptions options;
        options.workers = workers;
        options.cache_capacity = 0;
        Scheduler scheduler(options);
        std::vector<std::future<JobResult>> futures;
        futures.reserve(specs.size());
        for (const JobSpec& spec : specs) {
            futures.push_back(scheduler.submit(spec));
        }
        for (size_t j = 0; j < futures.size(); ++j) {
            const JobResult result = futures[j].get();
            if (!sameCounts(result.counts, reference[j].counts)) {
                dieMismatch("worker-pool result");
            }
        }
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

/**
 * The acceptance workload: repeated submissions of a small spec pool.
 * Reports the measured hit rate and verifies every payload — hit or
 * miss — against the uncached reference.
 */
void
BM_RepeatedSubmissionCacheHitRate(benchmark::State& state)
{
    const int workers = int(state.range(0));
    constexpr int kDistinct = 8;
    constexpr int kRepeats = 8; // kDistinct * kRepeats jobs per round

    std::vector<JobSpec> specs;
    std::vector<JobResult> reference;
    for (int j = 0; j < kDistinct; ++j) {
        specs.push_back(workloadSpec(uint64_t(j), true));
        reference.push_back(executeJob(specs[size_t(j)]));
    }

    uint64_t hits = 0;
    uint64_t lookups = 0;
    for (auto _ : state) {
        SchedulerOptions options;
        options.workers = workers;
        options.cache_capacity = 64;
        Scheduler scheduler(options);
        std::vector<std::future<JobResult>> futures;
        for (int r = 0; r < kRepeats; ++r) {
            for (const JobSpec& spec : specs) {
                futures.push_back(scheduler.submit(spec));
            }
        }
        for (size_t j = 0; j < futures.size(); ++j) {
            const JobResult result = futures[j].get();
            if (!sameCounts(result.counts,
                            reference[j % kDistinct].counts)) {
                dieMismatch("cached result");
            }
        }
        const CacheStats stats = scheduler.cacheStats();
        hits += stats.hits;
        lookups += stats.hits + stats.misses;
    }
    state.SetItemsProcessed(state.iterations() * kDistinct * kRepeats);
    state.counters["hit_rate"] =
        lookups == 0 ? 0.0 : double(hits) / double(lookups);
}

/** Admission-control cost alone: submit against a parked pool. */
void
BM_AdmissionControl(benchmark::State& state)
{
    SchedulerOptions options;
    options.workers = 1;
    options.queue_capacity = 1u << 20;
    options.start_paused = true;
    Scheduler scheduler(options);
    const JobSpec spec = workloadSpec(0, false);

    std::vector<std::future<JobResult>> futures;
    for (auto _ : state) {
        futures.push_back(scheduler.submit(spec));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["queue_depth"] =
        double(scheduler.metrics().queue_depth);
    scheduler.stop(); // cancels the parked jobs; futures resolve
    for (auto& f : futures) f.get();
}

} // namespace

BENCHMARK(BM_SchedulerThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_RepeatedSubmissionCacheHitRate)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_AdmissionControl);

BENCHMARK_MAIN();
