/**
 * @file
 * Figures 15-16 / Sec. IX-A reproduction: the 4-qubit QPE debugging case
 * study. One precise assertion per slot (V1..V6 precalculated from the
 * bug-free program) localizes Bug1 (missing loop index) to the gates
 * between slots 2-3 and Bug2 (cu3 -> u3) to slots 1-2, and the
 * mixed-state / approximate variants reproduce the Sec. IX-A2/A3
 * capability differences and cost savings.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/qpe.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

constexpr double kLambda = M_PI / 8;

double
slotError(QpeBug bug, int slot, AssertionDesign design,
          CircuitCost* cost = nullptr)
{
    QpeProgram qpe(4, kLambda, bug);
    QpeProgram clean(4, kLambda);
    QuantumCircuit prefix(qpe.numQubits());
    std::vector<int> ident{0, 1, 2, 3, 4};
    for (int s = 0; s < slot; ++s) prefix.compose(qpe.stage(s), ident);
    AssertedProgram prog(prefix);
    prog.assertState({0, 1, 2, 3, 4},
                     StateSet::pure(clean.expectedStateAtSlot(slot)),
                     design);
    if (cost != nullptr) *cost = prog.slots()[0].cost;
    return runAssertedExact(prog).slot_error_prob[0];
}

void
printSlotTable()
{
    bench::banner("Sec. IX-A1: per-slot precise pure-state assertion "
                  "error probability (SWAP design)");
    TextTable table({"Slot", "clean", "Bug1 (fixed angle)",
                     "Bug2 (missing control)", "#CX of assertion"});
    for (int slot = 1; slot <= 6; ++slot) {
        CircuitCost cost;
        const double clean = slotError(QpeBug::kNone, slot,
                                       AssertionDesign::kSwap, &cost);
        const double bug1 =
            slotError(QpeBug::kFixedAngle, slot, AssertionDesign::kSwap);
        const double bug2 = slotError(QpeBug::kMissingControl, slot,
                                      AssertionDesign::kSwap);
        table.addRow({std::to_string(slot), formatDouble(clean, 4),
                      formatDouble(bug1, 4), formatDouble(bug2, 4),
                      std::to_string(cost.cx)});
    }
    std::cout << table.render();
    std::cout << "Paper: Bug1 passes slots 1-2 and fails 3+; Bug2 "
                 "passes only slot 1 -> the failing slot pinpoints the "
                 "buggy gate range.\n";
}

void
printMixedAndApproximate()
{
    QpeProgram clean(4, kLambda);
    const CVector v5 = clean.expectedStateAtSlot(5);

    bench::banner("Sec. IX-A2/A3: slot-5 assertion variants "
                  "(cost vs. bug sensitivity)");
    TextTable table({"Variant", "#CX", "clean", "Bug1", "Bug2"});

    auto runPrefix = [&](QpeBug bug, const StateSet& set,
                         const std::vector<int>& qubits,
                         CircuitCost* cost) {
        QpeProgram qpe(4, kLambda, bug);
        QuantumCircuit prefix(qpe.numQubits());
        std::vector<int> ident{0, 1, 2, 3, 4};
        for (int s = 0; s < 5; ++s) prefix.compose(qpe.stage(s), ident);
        AssertedProgram prog(prefix);
        prog.assertState(qubits, set, AssertionDesign::kSwap);
        if (cost != nullptr) *cost = prog.slots()[0].cost;
        return runAssertedExact(prog).slot_error_prob[0];
    };

    // Precise 5-qubit pure state.
    {
        const StateSet set = StateSet::pure(v5);
        CircuitCost cost;
        const double clean_err =
            runPrefix(QpeBug::kNone, set, {0, 1, 2, 3, 4}, &cost);
        table.addRow(
            {"precise 5q pure (paper: 26 CX)", std::to_string(cost.cx),
             formatDouble(clean_err, 3),
             formatDouble(
                 runPrefix(QpeBug::kFixedAngle, set, {0, 1, 2, 3, 4},
                           nullptr), 3),
             formatDouble(
                 runPrefix(QpeBug::kMissingControl, set, {0, 1, 2, 3, 4},
                           nullptr), 3)});
    }
    // Mixed 4-qubit state of the counting register.
    {
        const StateSet set = StateSet::mixed(
            partialTrace(densityFromPure(v5), {0, 1, 2, 3}));
        CircuitCost cost;
        const double clean_err =
            runPrefix(QpeBug::kNone, set, {0, 1, 2, 3}, &cost);
        table.addRow(
            {"mixed 4q counting (paper: 20 CX)", std::to_string(cost.cx),
             formatDouble(clean_err, 3),
             formatDouble(runPrefix(QpeBug::kFixedAngle, set,
                                    {0, 1, 2, 3}, nullptr), 3),
             formatDouble(runPrefix(QpeBug::kMissingControl, set,
                                    {0, 1, 2, 3}, nullptr), 3)});
    }
    // Approximate two-member set of the slot-5 branches.
    {
        CVector branch0(32), branch1(32);
        for (size_t i = 0; i < 32; i += 2) {
            branch0[i] = v5[i] * std::sqrt(2.0);
            branch1[i + 1] = v5[i + 1] * std::sqrt(2.0);
        }
        const StateSet set = StateSet::approximate({branch0, branch1});
        CircuitCost cost;
        const double clean_err =
            runPrefix(QpeBug::kNone, set, {0, 1, 2, 3, 4}, &cost);
        table.addRow(
            {"approx {|++++>|0>, |theta4>|1>}", std::to_string(cost.cx),
             formatDouble(clean_err, 3),
             formatDouble(runPrefix(QpeBug::kFixedAngle, set,
                                    {0, 1, 2, 3, 4}, nullptr), 3),
             formatDouble(runPrefix(QpeBug::kMissingControl, set,
                                    {0, 1, 2, 3, 4}, nullptr), 3)});
    }
    std::cout << table.render();
    std::cout << "Paper: mixed assertion is cheaper but misses Bug2 "
                 "(counting register stays |++++>); the approximate set "
                 "catches both bugs below the precise cost.\n";
}

void
BM_QpeSlotAssertion(benchmark::State& state)
{
    const int slot = int(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            slotError(QpeBug::kFixedAngle, slot, AssertionDesign::kSwap));
    }
}
BENCHMARK(BM_QpeSlotAssertion)->Arg(1)->Arg(3)->Arg(6)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    printSlotTable();
    printMixedAndApproximate();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
