/**
 * @file
 * Figure 17 / Table IV reproduction: approximate assertion of the
 * Deutsch-Jozsa black-box function. The constant-set membership check
 * passes silently for constant oracles (Fig. 17a) and raises assertion
 * errors for the inconstant (3:1) oracle (Fig. 17b) -- though not 100%
 * of the time, because the buggy state is not orthogonal to the
 * constant span. Prints the measured histograms the figure shows.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/deutsch_jozsa.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

constexpr int kShots = 8192;

AssertionOutcome
runDj(DjOracle oracle, uint64_t mask, const StateSet& set, uint64_t seed)
{
    AssertedProgram prog(djFunctionEval(2, oracle, mask));
    prog.assertState({0, 1, 2}, set, AssertionDesign::kSwap);
    prog.measureProgram();
    SimOptions options;
    options.shots = kShots;
    options.seed = seed;
    return runAsserted(prog, options);
}

void
printTable4()
{
    bench::banner("Table IV: constant and balanced output-state sets "
                  "(2-input DJ)");
    TextTable table({"Class", "joint output states"});
    int row = 0;
    for (const CVector& v : djConstantSet(2)) {
        table.addRow({row++ == 0 ? "Constant" : "", v.toString(2)});
    }
    row = 0;
    for (const CVector& v : djBalancedSet(2)) {
        table.addRow({row++ == 0 ? "Balanced" : "", v.toString(2)});
    }
    std::cout << table.render();
}

void
printFigure17()
{
    const StateSet constant_set = StateSet::approximate(djConstantSet(2));

    bench::banner("Figure 17a: constant oracle under the constant-set "
                  "assertion (8192 shots)");
    {
        const AssertionOutcome outcome =
            runDj(DjOracle::kConstantZero, 0, constant_set, 171);
        TextTable hist({"outcome (assert bits + program bits)", "count"});
        for (const auto& [bits, count] : outcome.raw.map) {
            hist.addRow({bits, std::to_string(count)});
        }
        std::cout << hist.render();
        std::cout << "assertion error rate: "
                  << formatPercent(outcome.slot_error_rate[0])
                  << " (paper: 0%)\n";
    }

    bench::banner("Figure 17b: inconstant (3:1) oracle under the "
                  "constant-set assertion");
    {
        const AssertionOutcome outcome =
            runDj(DjOracle::kBuggyAnd, 0, constant_set, 172);
        TextTable hist({"outcome (assert bits + program bits)", "count"});
        for (const auto& [bits, count] : outcome.raw.map) {
            hist.addRow({bits, std::to_string(count)});
        }
        std::cout << hist.render();
        std::cout << "assertion error rate: "
                  << formatPercent(outcome.slot_error_rate[0])
                  << " (nonzero but < 100%: the buggy state keeps a "
                     "constant component, exactly the paper's point)\n";
    }

    bench::banner("Membership sweep over every oracle");
    TextTable sweep({"oracle", "P(err) vs constant set",
                     "P(err) vs balanced set",
                     "P(err) vs combined set"});
    const StateSet balanced_set =
        StateSet::approximate(djBalancedSet(2));
    std::vector<CVector> combined = djConstantSet(2);
    const auto bal = djBalancedSet(2);
    combined.insert(combined.end(), bal.begin(), bal.end());
    const StateSet combined_set = StateSet::approximate(combined);

    auto exactErr = [&](DjOracle oracle, uint64_t mask,
                        const StateSet& set) {
        AssertedProgram prog(djFunctionEval(2, oracle, mask));
        prog.assertState({0, 1, 2}, set, AssertionDesign::kSwap);
        return formatDouble(runAssertedExact(prog).slot_error_prob[0], 3);
    };
    const std::vector<std::tuple<std::string, DjOracle, uint64_t>>
        oracles = {{"constant 0", DjOracle::kConstantZero, 0},
                   {"constant 1", DjOracle::kConstantOne, 0},
                   {"balanced x0", DjOracle::kBalancedMask, 0b01},
                   {"balanced x1", DjOracle::kBalancedMask, 0b10},
                   {"balanced x0^x1", DjOracle::kBalancedMask, 0b11},
                   {"buggy AND (3:1)", DjOracle::kBuggyAnd, 0}};
    for (const auto& [name, oracle, mask] : oracles) {
        sweep.addRow({name, exactErr(oracle, mask, constant_set),
                      exactErr(oracle, mask, balanced_set),
                      exactErr(oracle, mask, combined_set)});
    }
    std::cout << sweep.render();
    std::cout << "Note: the combined set spans the buggy state (rank-5 "
                 "Bloom-filter false positive); only the narrower sets "
                 "catch the 3:1 bug.\n";

    bench::banner("Design cost for the constant-set assertion");
    TextTable cost({"design", "#CX", "#SG"});
    for (auto [name, design] :
         std::vector<std::pair<std::string, AssertionDesign>>{
             {"SWAP (paper: 4 CX / 4 SG)", AssertionDesign::kSwap},
             {"logical OR (paper: 6 CX / 12 SG)", AssertionDesign::kOr},
             {"NDD (paper: 14 CX / 20 SG)", AssertionDesign::kNdd}}) {
        const CircuitCost c = estimateAssertionCost(constant_set, design);
        cost.addRow({name, std::to_string(c.cx), std::to_string(c.sg)});
    }
    std::cout << cost.render();
    std::cout << "Paper: SWAP wins for the constant-function set "
                 "(Sec. X / Appendix C).\n";
}

void
BM_DjAssertedRun(benchmark::State& state)
{
    const StateSet set = StateSet::approximate(djConstantSet(2));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runDj(DjOracle::kBuggyAnd, 0, set, 9));
    }
}
BENCHMARK(BM_DjAssertedRun)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    printTable4();
    printFigure17();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
