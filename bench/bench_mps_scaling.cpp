/**
 * @file
 * PR 10 acceptance bench: the MPS backend on the wide low-entanglement
 * workload class the dense backends cannot reach. The acceptance job is
 * a 32-qubit (and a 40-qubit) Trotterized transverse-field chain — rx
 * layers interleaved with cx/rz(0.17)/cx nearest-neighbour couplers, so
 * the state is genuinely non-Clifford but carries little entanglement —
 * with a SWAP assertion of the {|00>, |11>} subspace on the last two
 * chain qubits (one ancilla, mid-circuit measure + reset: the shape
 * that kills every terminal fast path), measured at 4096 shots:
 *
 *  - auto routing must select the MPS backend at both widths,
 *  - the 32q MPS run must finish 4096 shots in seconds and beat the
 *    extrapolated forced-statevector cost by >= 100x,
 *  - MPS and statevector counts must be chi-square indistinguishable
 *    at an overlapping width where both actually run.
 *
 * Forced statevector would hold 2^33 (resp. 2^41) amplitudes — 128 GB
 * and 32 TB — so it cannot run at the acceptance widths at all. It is
 * measured on the identical workload shape at 20 qubits and
 * extrapolated by the 2^n amplitude-vector scaling times the
 * instruction-count ratio (per-shot suffix replay and the one-off
 * prefix evolution both scale with the amplitude count), which the
 * JSON records explicitly. The 14-qubit block runs BOTH backends at
 * the full 4096 shots and compares their histograms with an equal-N
 * two-sample chi-square test (rare cells pooled), with no
 * extrapolation and no reference-is-exact approximation.
 *
 * Writes the record to BENCH_PR10.json (or argv[1]).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/router.hpp"
#include "baselines/chi_square.hpp"
#include "core/asserted_program.hpp"
#include "core/state_set.hpp"
#include "linalg/states.hpp"

namespace
{

using namespace qa;

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start, Clock::time_point stop)
{
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

/**
 * Measurement-free Trotterized transverse-field chain: an rx layer,
 * then `layers` rounds of nearest-neighbour cx/rz(0.17)/cx couplers
 * followed by another rx layer. Non-Clifford everywhere, but the weak
 * couplers keep the Schmidt rank across every cut small — the regime
 * the MPS backend exists for.
 */
QuantumCircuit
trotterGates(int n, int layers)
{
    QuantumCircuit qc(n, 0);
    for (int q = 0; q < n; ++q) qc.rx(q, 0.30 + 0.01 * q);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q + 1 < n; ++q) {
            qc.cx(q, q + 1);
            qc.rz(q + 1, 0.17);
            qc.cx(q, q + 1);
        }
        for (int q = 0; q < n; ++q) qc.rx(q, 0.21);
    }
    return qc;
}

/**
 * Trotter chain with a SWAP assertion that the last two chain qubits
 * lie in the {|00>, |11>} subspace (they stay near |00> under the
 * small-angle drive, so the assertion mostly passes), then terminal
 * measurement of the program register. The ancilla lands at site n of
 * the MPS chain; the assertion fragment is lowered to arity <= 2 gates
 * that SWAP-route onto the chain.
 */
AssertedProgram
trotterSwapJob(int n, int layers)
{
    AssertedProgram prog(trotterGates(n, layers));
    const StateSet subspace = StateSet::approximate(
        {CVector::basisState(4, 0), CVector::basisState(4, 3)});
    prog.assertState({n - 2, n - 1}, subspace, AssertionDesign::kSwap);
    prog.measureProgram();
    return prog;
}

struct TimedRun
{
    double ms = 0.0;
    int shots = 0;
    double trunc_error = 0.0;
    Counts counts;
};

TimedRun
timedRun(const QuantumCircuit& circuit, BackendRequest request, int shots,
         uint64_t seed, int threads = 1)
{
    SimOptions options;
    options.shots = shots;
    options.seed = seed;
    options.backend = request;
    options.num_threads = threads;
    const auto start = Clock::now();
    const backend::RoutedRun run = backend::prepareRun(circuit, options);
    TimedRun out;
    out.counts = backend::runPrepared(*run.prepared, options);
    out.ms = elapsedMs(start, Clock::now());
    out.shots = shots;
    out.trunc_error = run.prepared->truncationError();
    return out;
}

/**
 * Equal-N two-sample chi-square test of two sampled histograms:
 * chi2 = sum (O1 - O2)^2 / (O1 + O2) over the union of cells, which is
 * correctly calibrated when both samples carry sampling noise (unlike
 * treating one histogram as the exact distribution). Cells whose
 * combined count is below `pool_below` are pooled into one tail cell so
 * the asymptotic chi-square approximation holds.
 */
double
twoSamplePValue(const Counts& a, const Counts& b, long pool_below = 10)
{
    std::vector<std::string> keys;
    for (const auto& [bits, n] : a.map) keys.push_back(bits);
    for (const auto& [bits, n] : b.map) {
        if (a.map.find(bits) == a.map.end()) keys.push_back(bits);
    }
    double statistic = 0.0;
    int cells = 0;
    double tail_a = 0.0, tail_b = 0.0;
    for (const std::string& key : keys) {
        const auto ia = a.map.find(key);
        const auto ib = b.map.find(key);
        const double oa = ia == a.map.end() ? 0.0 : double(ia->second);
        const double ob = ib == b.map.end() ? 0.0 : double(ib->second);
        if (oa + ob < double(pool_below)) {
            tail_a += oa;
            tail_b += ob;
            continue;
        }
        statistic += (oa - ob) * (oa - ob) / (oa + ob);
        ++cells;
    }
    if (tail_a + tail_b > 0.0) {
        statistic +=
            (tail_a - tail_b) * (tail_a - tail_b) / (tail_a + tail_b);
        ++cells;
    }
    if (cells < 2) return 1.0;
    return chiSquareSurvival(statistic, cells - 1);
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_PR10.json";
    const int kShots = 4096;
    const int kLayers = 2;
    const uint64_t kSeed = 20260808;
    bool ok = true;

    // ----- Acceptance workload: 32q Trotter chain + SWAP assertion ----
    const AssertedProgram job32 = trotterSwapJob(32, kLayers);
    const QuantumCircuit& qc32 = job32.circuit();
    const backend::BackendChoice choice32 =
        backend::routeShots(qc32, SimOptions{});
    std::printf("Trotter-32 + SWAP assertion: %d qubits, %zu "
                "instructions\n",
                qc32.numQubits(), qc32.instructions().size());
    std::printf("auto route: %s (%s)\n", backendName(choice32.backend),
                choice32.reason.c_str());
    std::printf("entanglement width %d, effective chi %d, truncation "
                "bound %.3g\n",
                choice32.mps_ent_width, choice32.mps_chi,
                choice32.mps_trunc_bound);
    if (choice32.backend != BackendKind::kMps) {
        std::printf("FAIL: router did not select the MPS backend\n");
        ok = false;
    }

    const TimedRun mps32 =
        timedRun(qc32, BackendRequest::kAuto, kShots, kSeed);
    std::printf("mps: %d shots in %.1f ms (truncation error %.3g)\n",
                kShots, mps32.ms, mps32.trunc_error);
    if (mps32.ms > 60000.0) {
        std::printf("FAIL: 32q MPS run did not finish in seconds\n");
        ok = false;
    }

    // Forced statevector on the identical workload shape at 20 qubits
    // (21 with the ancilla): measured, then extrapolated to the
    // acceptance widths by the 2^n amplitude scaling times the
    // instruction-count ratio. 2^33 amplitudes would need 128 GB, so
    // the 32q dense run physically cannot be timed directly.
    const AssertedProgram job20 = trotterSwapJob(20, kLayers);
    const QuantumCircuit& qc20 = job20.circuit();
    const int sv_shots = 64;
    const TimedRun sv20 = timedRun(qc20, BackendRequest::kStatevector,
                                   sv_shots, kSeed);
    const double ops20 = double(qc20.instructions().size());
    const double ops32 = double(qc32.instructions().size());
    const double sv32_extrapolated_ms = sv20.ms *
                                        (double(kShots) / sv_shots) *
                                        (ops32 / ops20) *
                                        std::ldexp(1.0, 32 - 20);
    const double speedup32 = sv32_extrapolated_ms / mps32.ms;
    std::printf("statevector @20q: %d shots in %.1f ms "
                "(extrapolated to 32q, %d shots: %.3g ms)\n",
                sv_shots, sv20.ms, kShots, sv32_extrapolated_ms);
    std::printf("speedup (extrapolated): %.3gx\n", speedup32);
    if (speedup32 < 100.0) {
        std::printf("FAIL: below the 100x acceptance bar\n");
        ok = false;
    }

    // ----- 40-qubit variant: same chain, deeper into MPS territory ----
    const AssertedProgram job40 = trotterSwapJob(40, kLayers);
    const QuantumCircuit& qc40 = job40.circuit();
    const backend::BackendChoice choice40 =
        backend::routeShots(qc40, SimOptions{});
    if (choice40.backend != BackendKind::kMps) {
        std::printf("FAIL: 40q job did not route to MPS\n");
        ok = false;
    }
    const TimedRun mps40 =
        timedRun(qc40, BackendRequest::kAuto, kShots, kSeed);
    const double ops40 = double(qc40.instructions().size());
    const double sv40_extrapolated_ms = sv20.ms *
                                        (double(kShots) / sv_shots) *
                                        (ops40 / ops20) *
                                        std::ldexp(1.0, 40 - 20);
    std::printf("Trotter-40: mps %d shots in %.1f ms, statevector "
                "extrapolated %.3g ms\n",
                kShots, mps40.ms, sv40_extrapolated_ms);

    // ----- Overlap width: both backends at full shots, no tricks ------
    const AssertedProgram job14 = trotterSwapJob(14, kLayers);
    const QuantumCircuit& qc14 = job14.circuit();
    SimOptions forced14;
    forced14.backend = BackendRequest::kMps;
    const backend::BackendChoice choice14 =
        backend::routeShots(qc14, forced14);
    const TimedRun mps14 =
        timedRun(qc14, BackendRequest::kMps, kShots, kSeed);
    const TimedRun sv14 = timedRun(qc14, BackendRequest::kStatevector,
                                   kShots, kSeed + 1);
    const double p14 = twoSamplePValue(mps14.counts, sv14.counts);
    std::printf("Trotter-14 full fair: mps %.1f ms, statevector %.1f "
                "ms, two-sample chi-square p %.4f\n",
                mps14.ms, sv14.ms, p14);
    if (p14 <= 1e-4) {
        std::printf("FAIL: backend counts are distinguishable\n");
        ok = false;
    }
    (void)choice14;

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << " \"description\": \"PR 10 perf record: bond-dimension-"
            "capped MPS backend on the wide low-entanglement workload "
            "class. The acceptance workload is a 32-qubit (and 40-"
            "qubit) Trotterized transverse-field chain — rx layers "
            "plus cx/rz/cx nearest-neighbour couplers, non-Clifford "
            "throughout — with a SWAP assertion of the {|00>,|11>} "
            "subspace on the last two chain qubits (one ancilla, mid-"
            "circuit measure+reset) at 4096 shots. Forced statevector "
            "would hold 2^33 (resp. 2^41) amplitudes, so it is "
            "measured on the identical shape at 20 qubits and "
            "extrapolated by the 2^n amplitude scaling times the "
            "instruction-count ratio. The trotter14 block runs both "
            "backends at the full 4096 shots and compares histograms "
            "with an equal-N two-sample chi-square test (rare cells "
            "pooled), no extrapolation.\",\n"
         << " \"acceptance\": {\n"
         << "  \"workload\": \"32-qubit Trotter chain + SWAP assertion "
            "of the {|00>,|11>} subspace on qubits {30,31}, 4096 "
            "shots\",\n"
         << "  \"auto_routed_backend\": \""
         << backendName(choice32.backend) << "\",\n"
         << "  \"entanglement_width\": " << choice32.mps_ent_width
         << ",\n"
         << "  \"effective_chi\": " << choice32.mps_chi << ",\n"
         << "  \"truncation_error\": " << std::scientific
         << mps32.trunc_error << std::fixed << ",\n"
         << "  \"mps_4096_shots_ms\": " << mps32.ms << ",\n"
         << "  \"forced_statevector_" << sv_shots
         << "_shots_at_20q_ms\": " << sv20.ms << ",\n"
         << "  \"statevector_extrapolated_4096_shots_ms\": "
         << std::scientific << sv32_extrapolated_ms << std::fixed
         << ",\n"
         << "  \"speedup_extrapolated\": " << std::scientific
         << speedup32 << std::fixed << ",\n"
         << "  \"chi_square_p_value\": " << p14 << ",\n"
         << "  \"pass\": " << (ok ? "true" : "false") << "\n"
         << " },\n"
         << " \"trotter40\": {\n"
         << "  \"workload\": \"40-qubit Trotter chain + SWAP assertion "
            "of the {|00>,|11>} subspace on qubits {38,39}, 4096 "
            "shots\",\n"
         << "  \"auto_routed_backend\": \""
         << backendName(choice40.backend) << "\",\n"
         << "  \"mps_4096_shots_ms\": " << mps40.ms << ",\n"
         << "  \"truncation_error\": " << std::scientific
         << mps40.trunc_error << std::fixed << ",\n"
         << "  \"statevector_extrapolated_4096_shots_ms\": "
         << std::scientific << sv40_extrapolated_ms << std::fixed
         << "\n"
         << " },\n"
         << " \"trotter14_full_fair\": {\n"
         << "  \"workload\": \"14-qubit Trotter chain + SWAP assertion, "
            "4096 shots on both backends\",\n"
         << "  \"mps_ms\": " << mps14.ms << ",\n"
         << "  \"statevector_ms\": " << sv14.ms << ",\n"
         << "  \"two_sample_chi_square_p_value\": " << p14 << "\n"
         << " }\n"
         << "}\n";

    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::printf("wrote %s\n", out_path.c_str());
    return ok ? 0 : 1;
}
