/**
 * @file
 * Table II reproduction: assertion-coverage matrix. For every state
 * class the paper lists, empirically check which schemes can assert a
 * representative instance (correct state passes with probability 1; a
 * perturbed state is detectable). "Part" rows reproduce the documented
 * partial coverage (e.g. mixed-state probabilities unchecked).
 */
#include <cmath>
#include <iostream>
#include <optional>

#include <benchmark/benchmark.h>

#include "algos/states.hpp"
#include "baselines/primitives.hpp"
#include "baselines/stat_assertion.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/gram_schmidt.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

/**
 * Check a design against one precise target: the correct state must
 * pass and the orthogonal perturbation must be caught.
 */
bool
covers(AssertionDesign design, const StateSet& set, const CVector& good,
       const CVector& bad)
{
    AssertedProgram ok(prepareState(good));
    std::vector<int> qubits;
    for (int q = 0; q < ok.numProgramQubits(); ++q) qubits.push_back(q);
    ok.assertState(qubits, set, design);
    if (runAssertedExact(ok).slot_error_prob[0] > 1e-6) return false;

    AssertedProgram fail(prepareState(bad));
    fail.assertState(qubits, set, design);
    return runAssertedExact(fail).slot_error_prob[0] > 0.5;
}

std::string
mark(bool all, const char* partial_reason = nullptr)
{
    if (all) return "ALL";
    return partial_reason ? std::string("Part (") + partial_reason + ")"
                          : "N/A";
}

void
printTable2()
{
    Rng rng(2026);
    bench::banner("Table II: assertion coverage by state type");

    // Representative states per row.
    const CVector classical = CVector::basisState(4, 2); // |10>
    const CVector classical_bad = CVector::basisState(4, 3);

    CVector superpos(2);
    superpos[0] = 1.0 / std::sqrt(2.0);
    superpos[1] = Complex(std::cos(M_PI / 4), std::sin(M_PI / 4)) /
                  std::sqrt(2.0); // relative phase the Stat scheme misses
    CVector superpos_bad(2);
    superpos_bad[0] = 1.0 / std::sqrt(2.0);
    superpos_bad[1] = -superpos[1];

    // Entangled state with a phase (the paper's (|00> + e^{i pi/4}|11>)).
    CVector ent(4);
    ent[0] = 1.0 / std::sqrt(2.0);
    ent[3] = Complex(std::cos(M_PI / 4), std::sin(M_PI / 4)) /
             std::sqrt(2.0);
    CVector ent_bad(4);
    ent_bad[0] = 1.0 / std::sqrt(2.0);
    ent_bad[3] = -ent[3];

    const CVector arbitrary = randomState(3, rng);
    const CVector arbitrary_bad = completeBasis({arbitrary}, 8)[1];

    struct ClassRow
    {
        std::string name;
        CVector good;
        CVector bad;
    };
    const std::vector<ClassRow> pure_rows = {
        {"Classical", classical, classical_bad},
        {"Superposition (phased)", superpos, superpos_bad},
        {"Entanglement (phased)", ent, ent_bad},
        {"Other (arbitrary pure)", arbitrary, arbitrary_bad},
    };

    TextTable table({"State type", "Stat [28]", "Primitive [32]",
                     "Proq [30]", "SWAP", "logical OR", "NDD"});
    for (const ClassRow& row : pure_rows) {
        const StateSet set = StateSet::pure(row.good);
        const bool swap_ok =
            covers(AssertionDesign::kSwap, set, row.good, row.bad);
        const bool or_ok =
            covers(AssertionDesign::kOr, set, row.good, row.bad);
        const bool ndd_ok =
            covers(AssertionDesign::kNdd, set, row.good, row.bad);
        const bool proq_ok =
            covers(AssertionDesign::kProq, set, row.good, row.bad);

        // Stat: distribution-only -- phase rows are "Part"/missed.
        std::string stat;
        std::string primitive;
        if (row.name == "Classical") {
            stat = "ALL";
            primitive = "ALL";
        } else if (row.name.find("Superposition") != std::string::npos) {
            stat = "Part (phase blind)";
            primitive = "ALL";
        } else if (row.name.find("Entanglement") != std::string::npos) {
            stat = "Part (phase blind)";
            primitive = "Part (parity family only)";
        } else {
            stat = "N/A";
            primitive = "N/A";
        }
        table.addRow({row.name, stat, primitive, mark(proq_ok),
                      mark(swap_ok), mark(or_ok), mark(ndd_ok)});
    }

    // Mixed-state row: rank-2 random density; membership checked but not
    // the probability weights (the paper's documented limitation).
    {
        const CMatrix rho = randomDensity(2, 2, rng);
        const StateSet set = StateSet::mixed(rho);
        CorrectSubspace ss = analyzeStateSet(set);
        CVector inside = ss.basis[0];
        CVector outside = completeBasis(ss.basis, 4)[2];
        const char* why = "weights unchecked";
        table.addRow(
            {"Mixed states", "N/A", "N/A",
             covers(AssertionDesign::kProq, set, inside, outside)
                 ? mark(false, why) : "N/A",
             covers(AssertionDesign::kSwap, set, inside, outside)
                 ? mark(false, why) : "N/A",
             covers(AssertionDesign::kOr, set, inside, outside)
                 ? mark(false, why) : "N/A",
             covers(AssertionDesign::kNdd, set, inside, outside)
                 ? mark(false, why) : "N/A"});
    }

    // Set-of-states row.
    {
        const std::vector<CVector> members = {CVector::basisState(8, 0),
                                              CVector::basisState(8, 7)};
        const StateSet set = StateSet::approximate(members);
        const CVector inside = ghzVector(3);
        const CVector outside = CVector::basisState(8, 5);
        const char* why = "membership only";
        table.addRow(
            {"Set of states", "N/A", "N/A", "N/A",
             covers(AssertionDesign::kSwap, set, inside, outside)
                 ? mark(false, why) : "N/A",
             covers(AssertionDesign::kOr, set, inside, outside)
                 ? mark(false, why) : "N/A",
             covers(AssertionDesign::kNdd, set, inside, outside)
                 ? mark(false, why) : "N/A"});
    }

    std::cout << table.render();
    std::cout << "Paper: SWAP / logical OR / NDD cover ALL pure rows and "
                 "Part of mixed & set rows;\n"
                 "Proq covers ALL pure + Part mixed, no set support; "
                 "Stat/Primitive cover the first rows only.\n";
}

void
BM_CoverageCheckArbitraryPure(benchmark::State& state)
{
    Rng rng(55);
    const CVector good = randomState(int(state.range(0)), rng);
    const StateSet set = StateSet::pure(good);
    for (auto _ : state) {
        AssertedProgram prog(prepareState(good));
        std::vector<int> qubits;
        for (int q = 0; q < prog.numProgramQubits(); ++q) {
            qubits.push_back(q);
        }
        prog.assertState(qubits, set, AssertionDesign::kSwap);
        benchmark::DoNotOptimize(runAssertedExact(prog));
    }
}
BENCHMARK(BM_CoverageCheckArbitraryPure)->Arg(2)->Arg(3)->Arg(4);

} // namespace

int
main(int argc, char** argv)
{
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
