/**
 * @file
 * Shared helpers for the benchmark/reproduction harness: formatting of
 * paper-vs-measured rows and a standard banner.
 */
#ifndef QA_BENCH_BENCH_UTIL_HPP
#define QA_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <string>

#include "common/format.hpp"

namespace qa
{
namespace bench
{

/** Print a section banner. */
inline void
banner(const std::string& title)
{
    std::cout << "\n=== " << title << " ===\n";
}

/** Render "measured (paper: X)" cells. */
inline std::string
vsPaper(int measured, const std::string& paper)
{
    return std::to_string(measured) + " (paper: " + paper + ")";
}

inline std::string
vsPaper(const std::string& measured, const std::string& paper)
{
    return measured + " (paper: " + paper + ")";
}

} // namespace bench
} // namespace qa

#endif // QA_BENCH_BENCH_UTIL_HPP
