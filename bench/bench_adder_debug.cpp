/**
 * @file
 * Appendix D reproduction: debugging the Fourier-space controlled adder
 * recursion. The doubly-controlled branch's copy-paste bug (qr[j]
 * instead of qr[i]) is invisible to the 0/1-control variants and is
 * caught by precise assertions placed after the adder layer; the
 * mixed-state assertion on the data register alone also detects it.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/adder.hpp"
#include "algos/qft.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

constexpr int kWidth = 3;
constexpr uint64_t kInitial = 4;
constexpr uint64_t kConstant = 3;

QuantumCircuit
adderPrefix(int num_controls, bool controls_on, bool buggy)
{
    QuantumCircuit qc(kWidth + num_controls);
    std::vector<int> data{0, 1, 2};
    std::vector<int> controls;
    for (int c = 0; c < num_controls; ++c) controls.push_back(kWidth + c);
    for (int q = 0; q < kWidth; ++q) {
        if ((kInitial >> (kWidth - 1 - q)) & 1) qc.x(q);
    }
    if (controls_on) {
        for (int c : controls) qc.x(c);
    }
    appendQft(qc, data);
    appendControlledAdder(qc, controls, data, kConstant, buggy);
    return qc;
}

void
printFunctionalCheck()
{
    bench::banner("Appendix D: controlled adder functional results "
                  "(initial=4, a=3)");
    TextTable table({"#controls", "controls", "clean result",
                     "buggy result"});
    for (int nc : {0, 1, 2}) {
        for (bool on : {false, true}) {
            if (nc == 0 && !on) continue;
            auto result = [&](bool buggy) {
                QuantumCircuit qc = adderPrefix(nc, on, buggy);
                std::vector<int> data{0, 1, 2};
                appendIqft(qc, data);
                const auto probs =
                    finalState(qc).basisProbabilities(1e-6);
                if (probs.size() != 1) return std::string("superposed!");
                return formatBits(probs.begin()->first >> nc, kWidth);
            };
            table.addRow({std::to_string(nc), on ? "on" : "off",
                          result(false), result(true)});
        }
    }
    std::cout << table.render();
    std::cout << "Shape: the bug only fires in the doubly-controlled "
                 "branch with both controls on.\n";
}

void
printAssertionDetection()
{
    bench::banner("Appendix D: assertion-based detection after the "
                  "adder layer");
    TextTable table({"assertion", "clean P(err)", "buggy P(err)",
                     "#CX"});

    // Precise full-state assertion (controls on -> bug active).
    {
        const CVector expected =
            finalState(adderPrefix(2, true, false)).amplitudes();
        auto err = [&](bool buggy, CircuitCost* cost) {
            AssertedProgram prog(adderPrefix(2, true, buggy));
            prog.assertState({0, 1, 2, 3, 4}, StateSet::pure(expected),
                             AssertionDesign::kSwap);
            if (cost != nullptr) *cost = prog.slots()[0].cost;
            return runAssertedExact(prog).slot_error_prob[0];
        };
        CircuitCost cost;
        const double clean = err(false, &cost);
        table.addRow({"precise 5q pure (SWAP)", formatDouble(clean, 3),
                      formatDouble(err(true, nullptr), 3),
                      std::to_string(cost.cx)});
    }

    // Mixed-state assertion on the data register with superposed
    // controls (data is entangled with the controls).
    {
        QuantumCircuit superposed(kWidth + 2);
        std::vector<int> data{0, 1, 2};
        std::vector<int> controls{3, 4};
        superposed.x(0);
        superposed.h(3);
        superposed.h(4);
        appendQft(superposed, data);
        QuantumCircuit clean_prog = superposed;
        appendControlledAdder(clean_prog, controls, data, kConstant,
                              false);
        QuantumCircuit buggy_prog = superposed;
        appendControlledAdder(buggy_prog, controls, data, kConstant,
                              true);

        const CMatrix rho_data = partialTrace(
            densityFromPure(finalState(clean_prog).amplitudes()),
            {0, 1, 2});
        auto err = [&](const QuantumCircuit& prog_circ,
                       CircuitCost* cost) {
            AssertedProgram prog(prog_circ);
            prog.assertState({0, 1, 2}, StateSet::mixed(rho_data),
                             AssertionDesign::kNdd);
            if (cost != nullptr) *cost = prog.slots()[0].cost;
            return runAssertedExact(prog).slot_error_prob[0];
        };
        CircuitCost cost;
        const double clean = err(clean_prog, &cost);
        table.addRow({"mixed 3q data register (NDD)",
                      formatDouble(clean, 3),
                      formatDouble(err(buggy_prog, nullptr), 3),
                      std::to_string(cost.cx)});
    }

    std::cout << table.render();
    std::cout << "Paper: the recursion bug produces an incorrect "
                 "entangled state detectable by precise assertions and "
                 "by mixed-state assertions on the data subset.\n";
}

void
printLocalization()
{
    // Assert after each rotation layer of the buggy doubly-controlled
    // adder: the first divergent layer localizes the bug (the paper's
    // "asserting after the second rz gate suffices" observation).
    bench::banner("Appendix D: per-layer localization (buggy 2-control "
                  "adder)");
    TextTable table({"after paper loop i", "P(err)"});
    std::vector<int> data{0, 1, 2};
    std::vector<int> controls{3, 4};
    for (int upto = kWidth - 1; upto >= 0; --upto) {
        // Build prefix with layers i = width-1 .. upto.
        auto build = [&](bool buggy) {
            QuantumCircuit qc(kWidth + 2);
            for (int q = 0; q < kWidth; ++q) {
                if ((kInitial >> (kWidth - 1 - q)) & 1) qc.x(q);
            }
            qc.x(3);
            qc.x(4);
            appendQft(qc, data);
            for (int i = kWidth - 1; i >= upto; --i) {
                // One layer of the paper's outer loop.
                for (int j = i; j >= 0; --j) {
                    if (!((kConstant >> j) & 1)) continue;
                    const double angle =
                        M_PI / double(uint64_t(1) << (i - j));
                    const int tq = buggy ? data[j] : data[i];
                    qc.ccrz(3, 4, tq, angle);
                }
            }
            return qc;
        };
        const CVector expected = finalState(build(false)).amplitudes();
        AssertedProgram prog(build(true));
        prog.assertState({0, 1, 2, 3, 4}, StateSet::pure(expected),
                         AssertionDesign::kSwap);
        table.addRow({"i = " + std::to_string(upto),
                      formatDouble(
                          runAssertedExact(prog).slot_error_prob[0], 3)});
    }
    std::cout << table.render();
    std::cout << "The first layer whose assertion fires brackets the "
                 "buggy rotation.\n";
}

void
BM_AdderAssertedRun(benchmark::State& state)
{
    const CVector expected =
        finalState(adderPrefix(2, true, false)).amplitudes();
    for (auto _ : state) {
        AssertedProgram prog(adderPrefix(2, true, true));
        prog.assertState({0, 1, 2, 3, 4}, StateSet::pure(expected),
                         AssertionDesign::kSwap);
        benchmark::DoNotOptimize(runAssertedExact(prog));
    }
}
BENCHMARK(BM_AdderAssertedRun)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    printFunctionalCheck();
    printAssertionDetection();
    printLocalization();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
