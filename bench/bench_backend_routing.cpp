/**
 * @file
 * PR 5 acceptance bench: backend routing on the Clifford workload
 * class. The acceptance job is a 20-qubit GHZ preparation with a SWAP
 * assertion of the {|00>, |11>} marginal on qubits {0, 1} (one ancilla,
 * 21 qubits, mid-circuit measure + reset — the shape that kills the
 * statevector terminal fast path), measured at 4096 shots:
 *
 *  - auto routing must select the stabilizer backend,
 *  - stabilizer wall-clock must beat forced-statevector by >= 10x,
 *  - the two backends' counts must be chi-square indistinguishable.
 *
 * Forced statevector replays 2^21 amplitudes per shot (~300 ms/shot),
 * so the full 4096-shot run would take ~20 minutes; it is measured at a
 * reduced shot count and extrapolated linearly (per-shot cost is
 * constant: every shot replays the same suffix), which the JSON records
 * explicitly. A 12-qubit variant runs BOTH backends at the full 4096
 * shots as the honest end-to-end comparison with no extrapolation.
 *
 * Writes the record to BENCH_PR5.json (or argv[1]).
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/states.hpp"
#include "backend/backend.hpp"
#include "baselines/chi_square.hpp"
#include "core/asserted_program.hpp"
#include "core/state_set.hpp"
#include "linalg/states.hpp"
#include "synth/state_prep.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start, Clock::time_point stop)
{
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

/**
 * GHZ-n preparation with a SWAP assertion of the {|00>, |11>} coordinate
 * subspace on qubits {0, 1} (the exact 2-qubit marginal of GHZ), then
 * terminal measurement of the program register. Fully Clifford: the
 * basis change is X/CNOT-only, so the whole job is tableau-simulable.
 */
AssertedProgram
ghzSwapJob(int n)
{
    AssertedProgram prog(prepareState(ghzVector(n)));
    const StateSet marginal = StateSet::approximate(
        {CVector::basisState(4, 0), CVector::basisState(4, 3)});
    prog.assertState({0, 1}, marginal, AssertionDesign::kSwap);
    prog.measureProgram();
    return prog;
}

struct TimedRun
{
    double ms = 0.0;
    int shots = 0;
    Counts counts;
};

TimedRun
timedRun(const QuantumCircuit& circuit, BackendRequest request, int shots,
         uint64_t seed)
{
    SimOptions options;
    options.shots = shots;
    options.seed = seed;
    options.backend = request;
    const auto start = Clock::now();
    const backend::RoutedRun run = backend::prepareRun(circuit, options);
    TimedRun out;
    out.counts = backend::runPrepared(*run.prepared, options);
    out.ms = elapsedMs(start, Clock::now());
    out.shots = shots;
    return out;
}

/** Chi-square p-value of `observed` against `reference` frequencies. */
double
distributionPValue(const Counts& observed, const Counts& reference)
{
    std::vector<std::string> keys;
    for (const auto& [bits, n] : observed.map) keys.push_back(bits);
    for (const auto& [bits, n] : reference.map) {
        if (observed.map.find(bits) == observed.map.end()) {
            keys.push_back(bits);
        }
    }
    std::vector<long> obs;
    std::vector<double> expected;
    for (const std::string& key : keys) {
        const auto o = observed.map.find(key);
        const auto r = reference.map.find(key);
        obs.push_back(o == observed.map.end() ? 0 : long(o->second));
        expected.push_back(
            r == reference.map.end()
                ? 0.0
                : double(r->second) / double(reference.shots));
    }
    return chiSquareTest(obs, expected).p_value;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_PR5.json";
    const int kShots = 4096;
    const uint64_t kSeed = 20260806;
    bool ok = true;

    // ----- Acceptance workload: GHZ-20 + SWAP assertion ---------------
    const AssertedProgram ghz20 = ghzSwapJob(20);
    const QuantumCircuit& qc20 = ghz20.circuit();
    const backend::BackendChoice choice =
        backend::routeShots(qc20, SimOptions{});
    std::printf("GHZ-20 + SWAP assertion: %d qubits, %zu instructions\n",
                qc20.numQubits(), qc20.instructions().size());
    std::printf("auto route: %s (%s)\n", backendName(choice.backend),
                choice.reason.c_str());
    if (choice.backend != BackendKind::kStabilizer) {
        std::printf("FAIL: router did not select the stabilizer backend\n");
        ok = false;
    }

    const TimedRun stab20 =
        timedRun(qc20, BackendRequest::kAuto, kShots, kSeed);
    // Forced statevector at reduced shots; per-shot cost is flat (each
    // shot replays the identical 2^21-amplitude suffix), so the
    // full-4096 cost is shots-linear. Recorded as an extrapolation.
    const int sv20_shots = 32;
    const TimedRun sv20 = timedRun(qc20, BackendRequest::kStatevector,
                                   sv20_shots, kSeed);
    const double sv20_extrapolated_ms =
        sv20.ms * double(kShots) / double(sv20_shots);
    const double speedup20 = sv20_extrapolated_ms / stab20.ms;
    std::printf("stabilizer: %d shots in %.1f ms\n", kShots, stab20.ms);
    std::printf("statevector: %d shots in %.1f ms "
                "(extrapolated %d shots: %.0f ms)\n",
                sv20_shots, sv20.ms, kShots, sv20_extrapolated_ms);
    std::printf("speedup (extrapolated): %.0fx\n", speedup20);

    const double p20 = distributionPValue(sv20.counts, stab20.counts);
    std::printf("chi-square p (sv@%d vs stab@%d): %.4f\n", sv20_shots,
                kShots, p20);

    // ----- Full-fair variant: GHZ-12, both backends at 4096 -----------
    const AssertedProgram ghz12 = ghzSwapJob(12);
    const QuantumCircuit& qc12 = ghz12.circuit();
    const TimedRun stab12 =
        timedRun(qc12, BackendRequest::kAuto, kShots, kSeed);
    const TimedRun sv12 = timedRun(qc12, BackendRequest::kStatevector,
                                   kShots, kSeed);
    const double speedup12 = sv12.ms / stab12.ms;
    const double p12 = distributionPValue(sv12.counts, stab12.counts);
    std::printf("GHZ-12 full fair: stabilizer %.1f ms, statevector "
                "%.1f ms, speedup %.0fx, chi-square p %.4f\n",
                stab12.ms, sv12.ms, speedup12, p12);

    if (speedup20 < 10.0 || speedup12 < 10.0) {
        std::printf("FAIL: below the 10x acceptance bar\n");
        ok = false;
    }
    if (p20 <= 1e-4 || p12 <= 1e-4) {
        std::printf("FAIL: backend counts are distinguishable\n");
        ok = false;
    }

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << " \"description\": \"PR 5 perf record: pluggable "
            "simulation-backend subsystem with Clifford fast-path "
            "routing. The acceptance workload is a 20-qubit GHZ "
            "preparation with a SWAP assertion of the {|00>,|11>} "
            "marginal on qubits {0,1} (21 qubits, mid-circuit "
            "measure+reset, fully Clifford) at 4096 shots. "
            "'forced_statevector' replays 2^21 amplitudes per shot, "
            "so it is measured at 32 shots and extrapolated linearly "
            "to 4096 (per-shot cost is constant); the ghz12 block is "
            "a full-fair run of both backends at 4096 shots with no "
            "extrapolation. Chi-square p-values test the two "
            "backends' counts for distributional agreement.\",\n"
         << " \"acceptance\": {\n"
         << "  \"workload\": \"20-qubit GHZ + SWAP assertion of the "
            "qubits {0,1} marginal, 4096 shots\",\n"
         << "  \"auto_routed_backend\": \""
         << backendName(choice.backend) << "\",\n"
         << "  \"stabilizer_4096_shots_ms\": " << stab20.ms << ",\n"
         << "  \"forced_statevector_" << sv20_shots
         << "_shots_ms\": " << sv20.ms << ",\n"
         << "  \"forced_statevector_extrapolated_4096_shots_ms\": "
         << sv20_extrapolated_ms << ",\n"
         << "  \"speedup_extrapolated\": " << speedup20 << ",\n"
         << "  \"chi_square_p_value\": " << p20 << ",\n"
         << "  \"pass\": " << (ok ? "true" : "false") << "\n"
         << " },\n"
         << " \"ghz12_full_fair\": {\n"
         << "  \"workload\": \"12-qubit GHZ + SWAP assertion of the "
            "qubits {0,1} marginal, 4096 shots on both backends\",\n"
         << "  \"stabilizer_ms\": " << stab12.ms << ",\n"
         << "  \"statevector_ms\": " << sv12.ms << ",\n"
         << "  \"speedup\": " << speedup12 << ",\n"
         << "  \"chi_square_p_value\": " << p12 << "\n"
         << " }\n"
         << "}\n";

    std::ofstream out(out_path);
    out << json.str();
    out.close();
    std::printf("wrote %s\n", out_path.c_str());
    return ok ? 0 : 1;
}
