/**
 * @file
 * Table III reproduction: circuit cost (#CX / #SG / #ancilla / #measure)
 * of each assertion design for the paper's three state families --
 * arbitrary single-qubit states, n-qubit separable states, and n-qubit
 * even-parity entangled states (GHZ family) -- plus scaling sweeps.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/states.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/asserted_program.hpp"
#include "linalg/states.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

/** Random product state over n qubits. */
CVector
separableState(int n, Rng& rng)
{
    CVector state = randomState(1, rng);
    for (int q = 1; q < n; ++q) state = state.tensor(randomState(1, rng));
    return state;
}

/** Even-parity approximate set (the a|0..0> + b|1..1> family). */
StateSet
parityFamily(int n)
{
    const size_t dim = size_t(1) << n;
    std::vector<CVector> members;
    for (size_t i = 0; i < dim; ++i) {
        if (__builtin_popcountll(i) % 2 == 0) {
            members.push_back(CVector::basisState(dim, i));
        }
    }
    return StateSet::approximate(members);
}

std::string
fmtCost(const CircuitCost& cost)
{
    return std::to_string(cost.cx) + "/" + std::to_string(cost.sg) + "/" +
           std::to_string(cost.ancilla) + "/" +
           std::to_string(cost.measure);
}

void
printTable3()
{
    Rng rng(99);
    const int n = 3; // paper's generic n; sweeps below vary it.

    const StateSet single = StateSet::pure(randomState(1, rng));
    const StateSet separable = StateSet::pure(separableState(n, rng));
    const StateSet even = parityFamily(n);

    bench::banner("Table III: circuit cost per design "
                  "(#CX/#SG/#ancilla/#measure), n = 3");
    TextTable table({"Design", "single", "separable (n=3)",
                     "even-parity (n=3)"});
    struct Row
    {
        std::string name;
        AssertionDesign design;
        std::string paper;
    };
    const std::vector<Row> rows = {
        {"Proq [30]", AssertionDesign::kProq,
         "0/2, 0/2n, >0/>=2n"},
        {"SWAP based", AssertionDesign::kSwap, "3/2, 3n/2n, >3n/>=2n"},
        {"Logical OR based", AssertionDesign::kOr,
         "1/2, 12n+1/16n, >12n+1/>=16n"},
        {"NDD based", AssertionDesign::kNdd, "2/6, state dep., n/0"},
    };
    for (const Row& row : rows) {
        table.addRow({row.name,
                      fmtCost(estimateAssertionCost(single, row.design)),
                      fmtCost(estimateAssertionCost(separable, row.design)),
                      fmtCost(estimateAssertionCost(even, row.design))});
    }
    std::cout << table.render();
    std::cout << "Paper (#CX/#SG): " << "\n";
    for (const Row& row : rows) {
        std::cout << "  " << row.name << ": " << row.paper << "\n";
    }
    std::cout << "Note: Table III's SWAP column uses the Fig. 6 "
                 "placement (3 CX per swap); our default is the cheaper "
                 "Fig. 3 placement (2 CX per swap). See the placement "
                 "ablation bench.\n";

    // Scaling sweep: separable states, n = 1..5.
    bench::banner("Table III scaling sweep: separable states");
    TextTable sweep({"n", "Proq", "SWAP", "Logical OR", "NDD"});
    for (int nn = 1; nn <= 5; ++nn) {
        const StateSet set = StateSet::pure(separableState(nn, rng));
        sweep.addRow(
            {std::to_string(nn),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kProq)),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kSwap)),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kOr)),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kNdd))});
    }
    std::cout << sweep.render();

    bench::banner("Table III scaling sweep: even-parity family (GHZ-type)");
    TextTable psweep({"n", "Proq", "SWAP", "Logical OR", "NDD"});
    for (int nn = 2; nn <= 6; ++nn) {
        const StateSet set = parityFamily(nn);
        psweep.addRow(
            {std::to_string(nn),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kProq)),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kSwap)),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kOr)),
             fmtCost(estimateAssertionCost(set, AssertionDesign::kNdd))});
    }
    std::cout << psweep.render();
    std::cout << "Paper: NDD parity check needs exactly n CX and scales "
                 "best for this family.\n";
}

void
BM_EstimateCostSeparable(benchmark::State& state)
{
    Rng rng(5);
    const StateSet set =
        StateSet::pure(separableState(int(state.range(0)), rng));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimateAssertionCost(set, AssertionDesign::kSwap));
    }
}
BENCHMARK(BM_EstimateCostSeparable)->Arg(2)->Arg(4)->Arg(6);

void
BM_EstimateCostParityNdd(benchmark::State& state)
{
    const StateSet set = parityFamily(int(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimateAssertionCost(set, AssertionDesign::kNdd));
    }
}
BENCHMARK(BM_EstimateCostParityNdd)->Arg(3)->Arg(5);

} // namespace

int
main(int argc, char** argv)
{
    printTable3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
