/**
 * @file
 * Sec. IX-B reproduction: the "real quantum computer" experiment on the
 * ibmq-melbourne-like noise model. Reports (a) assertion-error rates
 * with and without the injected bug, for our SWAP-based single-qubit
 * assertion (2 CX + 2 SG) and the prior work's primitive (2 CX + 6 SG),
 * and (b) the success-rate improvement from post-selecting on assertion
 * success.
 *
 * Paper numbers (decommissioned hardware): ours 36% -> 45% error rate,
 * primitives 42% -> 50%; success rate 19% -> 33% (primitives) -> 36%
 * (ours). Absolute values differ on a synthetic noise model; the shape
 * (bug raises the rate; cheaper circuit = lower floor; filtering helps)
 * is the reproduced claim.
 */
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "algos/qpe.hpp"
#include "baselines/primitives.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/runner.hpp"
#include "linalg/eigen.hpp"
#include "linalg/states.hpp"
#include "sim/statevector.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

// theta = pi/4 makes the counting register decode deterministically
// (x = 15), so "success" is unambiguous.
constexpr double kTheta = M_PI / 4;
constexpr int kShots = 8192;

/**
 * The prior work's superposition-primitive-style assertion of the
 * eigenstate: rotate the basis so the expected state maps onto |+> and
 * run the X-basis NDD primitive (2 CX + 6 SG in the paper's counting).
 */
int
insertPrimitiveStyleAssertion(AssertedProgram& prog, int qubit)
{
    return prog.addCustomAssertion(1, 1, [&](const BuildContext& ctx) {
        QuantumCircuit frag(ctx.total_qubits, ctx.total_clbits);
        const int anc = ctx.ancillas[0];
        // (|0> + i|1>)/sqrt2 -> |+> via S^dagger; restore with S.
        frag.sdg(qubit);
        frag.h(anc);
        frag.cx(anc, qubit);
        frag.h(anc);
        frag.measure(anc, ctx.clbits[0]);
        frag.s(qubit);
        return frag;
    });
}

double
errorRate(bool bug, bool use_primitive, uint64_t seed,
          const NoiseModel& noise, CircuitCost* cost = nullptr)
{
    AssertedProgram prog(qpeRyProgram(4, kTheta, bug));
    if (use_primitive) {
        insertPrimitiveStyleAssertion(prog, 4);
    } else {
        prog.assertState({4}, StateSet::pure(qpeRyEigenstate()),
                         AssertionDesign::kSwap);
    }
    if (cost != nullptr) *cost = prog.slots()[0].cost;
    SimOptions options;
    options.shots = kShots;
    options.seed = seed;
    options.noise = &noise;
    return runAsserted(prog, options).slot_error_rate[0];
}

void
printErrorRates(const NoiseModel& noise)
{
    bench::banner("Sec. IX-B: assertion error rate on the noisy device "
                  "model (8192 shots)");
    TextTable table({"Scheme", "#CX/#SG", "no bug", "with bug"});
    CircuitCost ours_cost, prim_cost;
    const double ours_clean = errorRate(false, false, 11, noise,
                                        &ours_cost);
    const double ours_bug = errorRate(true, false, 12, noise);
    const double prim_clean = errorRate(false, true, 13, noise,
                                        &prim_cost);
    const double prim_bug = errorRate(true, true, 14, noise);
    table.addRow({"SWAP-based (ours)",
                  std::to_string(ours_cost.cx) + "/" +
                      std::to_string(ours_cost.sg),
                  bench::vsPaper(formatPercent(ours_clean), "36%"),
                  bench::vsPaper(formatPercent(ours_bug), "45%")});
    table.addRow({"Primitive [32]",
                  std::to_string(prim_cost.cx) + "/" +
                      std::to_string(prim_cost.sg),
                  bench::vsPaper(formatPercent(prim_clean), "42%"),
                  bench::vsPaper(formatPercent(prim_bug), "50%")});
    std::cout << table.render();
    std::cout << "Shape checks: bug raises both rates; the cheaper "
                 "circuit has the lower noise floor.\n";
}

void
printSuccessRates(const NoiseModel& noise)
{
    bench::banner("Sec. IX-B: success rate with assertion-based "
                  "filtering");

    // Ideal outcome set: top outcomes covering >= 80% of the noiseless
    // distribution of the measured register.
    AssertedProgram ideal(qpeRyProgram(4, kTheta, false));
    ideal.measureProgram();
    const AssertionOutcomeExact ideal_out = runAssertedExact(ideal);
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto& [bits, p] : ideal_out.program_dist.probs) {
        ranked.emplace_back(p, bits);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::vector<std::string> success_set;
    double covered = 0.0;
    for (const auto& [p, bits] : ranked) {
        if (covered >= 0.8) break;
        success_set.push_back(bits);
        covered += p;
    }
    auto successRate = [&](const Counts& counts) {
        double total = 0.0;
        for (const std::string& bits : success_set) {
            total += counts.toDistribution().probability(bits);
        }
        return total;
    };

    TextTable table({"Configuration", "success rate"});

    // Unfiltered baseline.
    {
        AssertedProgram raw(qpeRyProgram(4, kTheta, false));
        raw.measureProgram();
        SimOptions options;
        options.shots = kShots;
        options.seed = 21;
        options.noise = &noise;
        const AssertionOutcome outcome = runAsserted(raw, options);
        table.addRow({"no assertion",
                      bench::vsPaper(
                          formatPercent(successRate(
                              outcome.program_counts)), "19%")});
    }
    // Filtered by the single-qubit primitive / ours and by the
    // full-state assertion (the strongest filter).
    struct Config
    {
        std::string name;
        std::string paper;
        bool primitive;
        bool full_state;
    };
    for (const Config& cfg :
         {Config{"filtered by primitive [32]", "33%", true, false},
          Config{"filtered by SWAP single-qubit (ours)", "36%", false,
                 false},
          Config{"filtered by SWAP 4q counting register", "n/a", false,
                 true}}) {
        AssertedProgram prog(qpeRyProgram(4, kTheta, false));
        if (cfg.full_state) {
            // Assert the counting register (pure at slot 6 -- the
            // eigenqubit never entangles in the Ry variant).
            const CVector slot6 =
                finalState(qpeRyProgram(4, kTheta, false)).amplitudes();
            CMatrix rho_count = partialTrace(densityFromPure(slot6),
                                             {0, 1, 2, 3});
            EigenResult eig = eigHermitian(rho_count);
            prog.assertState({0, 1, 2, 3},
                             StateSet::pure(eig.vectors.column(0)),
                             AssertionDesign::kSwap);
        } else if (cfg.primitive) {
            insertPrimitiveStyleAssertion(prog, 4);
        } else {
            prog.assertState({4}, StateSet::pure(qpeRyEigenstate()),
                             AssertionDesign::kSwap);
        }
        prog.measureProgram();
        SimOptions options;
        options.shots = kShots;
        options.seed = 22;
        options.noise = &noise;
        const AssertionOutcome outcome = runAsserted(prog, options);
        table.addRow({cfg.name,
                      bench::vsPaper(
                          formatPercent(successRate(
                              outcome.program_counts_passed)),
                          cfg.paper)});
    }
    std::cout << table.render();
    std::cout << "Shape: filtering on assertion success raises the "
                 "success rate; broader assertions filter harder. With "
                 "independent per-qubit noise the single-qubit filters "
                 "move less than on hardware (correlated noise), see "
                 "EXPERIMENTS.md.\n";
}

void
BM_NoisyShots(benchmark::State& state)
{
    const NoiseModel noise = NoiseModel::ibmqMelbourneLike();
    AssertedProgram prog(qpeRyProgram(4, kTheta, false));
    prog.assertState({4}, StateSet::pure(qpeRyEigenstate()),
                     AssertionDesign::kSwap);
    SimOptions options;
    options.shots = int(state.range(0));
    options.seed = 3;
    options.noise = &noise;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runAsserted(prog, options));
    }
}
BENCHMARK(BM_NoisyShots)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Late-life melbourne-grade noise: the paper's raw success rate was 19%,
 * which corresponds to substantially heavier two-qubit error than the
 * calibration-sheet averages (the device was retired soon after).
 */
NoiseModel
heavyNoise()
{
    NoiseModel model;
    model.noise_1q.push_back(KrausChannel::depolarizing(0.003));
    model.noise_2q.push_back(KrausChannel::depolarizing(0.055));
    model.noise_2q.push_back(KrausChannel::amplitudeDamping(0.008));
    model.readout_p01 = 0.03;
    model.readout_p10 = 0.06;
    return model;
}

int
main(int argc, char** argv)
{
    const NoiseModel noise = heavyNoise();
    printErrorRates(noise);
    printSuccessRates(noise);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
