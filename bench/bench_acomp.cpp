/**
 * @file
 * PR 8 acceptance bench: the assertion compiler's lowered Pauli forms
 * against the paper's SWAP design on a GHZ/QFT catalog.
 *
 * For each workload the same assertion site is lowered twice — forced
 * kSwap (the paper baseline) and kAuto (which picks the ancilla-free
 * Pauli parity form for these stabilizer-expressible slots) — and both
 * instrumented programs run end-to-end at 4096 shots under the policy
 * runner. Recorded per form: ancilla count, inserted gate/CX budget,
 * wall-clock, and the verdict statistics. Acceptance:
 *
 *  - the auto-lowered form uses ZERO ancillas on every catalog slot
 *    (the SWAP baseline needs >= 1),
 *  - both forms accept every clean shot, and their accepted program
 *    histograms are chi-square indistinguishable,
 *  - the Clifford workloads stay on the stabilizer backend after
 *    instrumentation (the SWAP form does too — its basis change is
 *    Clifford here — so the interesting delta is gates and ancillas).
 *
 * Writes the record to BENCH_PR8.json (or argv[1]).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "acomp/compiler.hpp"
#include "acomp/run.hpp"
#include "algos/qft.hpp"
#include "algos/states.hpp"
#include "baselines/chi_square.hpp"
#include "core/state_set.hpp"
#include "linalg/states.hpp"

namespace
{

using namespace qa;
using namespace qa::acomp;
using namespace qa::algos;

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start, Clock::time_point stop)
{
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

/** One catalog workload: a raw circuit plus its assertion site. */
struct Workload
{
    std::string name;
    QuantumCircuit circuit{1};
    AssertionSite site;
};

/** GHZ-n prep, guard at end of prep, terminal measurement. */
Workload
ghzWorkload(int n)
{
    Workload w;
    w.name = "ghz" + std::to_string(n);
    QuantumCircuit qc(n, n);
    qc.h(0);
    for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    w.site.position = qc.instructions().size();
    for (int q = 0; q < n; ++q) {
        w.site.qubits.push_back(q);
        qc.measure(q, q);
    }
    w.site.set =
        std::make_shared<StateSet>(StateSet::pure(ghzVector(n)));
    w.circuit = qc;
    return w;
}

/** GHZ-n prep guarded *before* a QFT suffix (non-Clifford program). */
Workload
qftWorkload(int n)
{
    Workload w = ghzWorkload(n);
    w.name = "ghz" + std::to_string(n) + "_qft";
    QuantumCircuit qc(n, n);
    qc.h(0);
    for (int q = 0; q + 1 < n; ++q) qc.cx(q, q + 1);
    w.site.position = qc.instructions().size();
    std::vector<int> qubits;
    for (int q = 0; q < n; ++q) qubits.push_back(q);
    appendQft(qc, qubits);
    for (int q = 0; q < n; ++q) qc.measure(q, q);
    w.circuit = qc;
    return w;
}

/** One lowered form's measured record. */
struct FormRecord
{
    LoweringForm form = LoweringForm::kSwap;
    int ancillas = 0;
    int gates = 0;
    int cx = 0;
    int variants = 1;
    double ms = 0.0;
    double pass_rate = 0.0;
    Counts program_counts;
};

FormRecord
measure(const Workload& w, LoweringRequest req, int shots, uint64_t seed)
{
    AcompOptions opts;
    opts.lowering = req;
    const CompiledProgram compiled =
        compileAssertions(w.circuit, {w.site}, opts);
    SimOptions options;
    options.shots = shots;
    options.seed = seed;
    const auto start = Clock::now();
    const PolicyOutcome out = runLowered(compiled, options);
    FormRecord rec;
    rec.ms = elapsedMs(start, Clock::now());
    rec.form = compiled.slots[0].form;
    rec.ancillas = int(compiled.slots[0].ancillas.size());
    rec.gates = compiled.slots[0].gates;
    rec.cx = compiled.slots[0].cx;
    rec.variants = int(compiled.variants.size());
    rec.pass_rate = out.pass_rate;
    rec.program_counts = out.program_counts;
    return rec;
}

/**
 * Two-sample chi-square p-value between two accepted program
 * histograms. Both sides are samples, so neither can serve as exact
 * expected probabilities (that would double-count sampling noise
 * across many small cells); the two-sample statistic
 * sum (a_i - b_i)^2 / (a_i + b_i), scaled for unequal totals, is the
 * honest equivalence test.
 */
double
agreementPValue(const Counts& a, const Counts& b)
{
    const double na = double(a.shots), nb = double(b.shots);
    const double ka = std::sqrt(nb / na), kb = std::sqrt(na / nb);
    double statistic = 0.0;
    int cells = 0;
    std::vector<std::string> keys;
    for (const auto& [bits, n] : a.map) keys.push_back(bits);
    for (const auto& [bits, n] : b.map) {
        if (a.map.find(bits) == a.map.end()) keys.push_back(bits);
    }
    for (const std::string& key : keys) {
        const auto oa = a.map.find(key);
        const auto ob = b.map.find(key);
        const double ca = oa == a.map.end() ? 0.0 : double(oa->second);
        const double cb = ob == b.map.end() ? 0.0 : double(ob->second);
        if (ca + cb <= 0.0) continue;
        const double d = ka * ca - kb * cb;
        statistic += d * d / (ca + cb);
        ++cells;
    }
    if (cells <= 1) return 1.0;
    return chiSquareSurvival(statistic, cells - 1);
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_PR8.json";
    const int kShots = 4096;
    const uint64_t kSeed = 20260808;
    bool ok = true;

    std::vector<Workload> catalog;
    catalog.push_back(ghzWorkload(6));
    catalog.push_back(ghzWorkload(10));
    catalog.push_back(qftWorkload(6));

    std::ostringstream rows;
    for (size_t i = 0; i < catalog.size(); ++i) {
        const Workload& w = catalog[i];
        const FormRecord swap =
            measure(w, LoweringRequest::kSwap, kShots, kSeed);
        const FormRecord autod =
            measure(w, LoweringRequest::kAuto, kShots, kSeed);

        const double p =
            agreementPValue(autod.program_counts, swap.program_counts);
        const double gate_ratio =
            swap.gates > 0 ? double(autod.gates) / double(swap.gates)
                           : 1.0;
        const double speedup = autod.ms > 0.0 ? swap.ms / autod.ms : 1.0;
        std::printf(
            "%-10s swap: anc=%d gates=%d cx=%d %.1fms | auto(%s): "
            "anc=%d gates=%d cx=%d %.1fms | gate ratio %.2f, "
            "speedup %.2fx, chi-square p %.4f\n",
            w.name.c_str(), swap.ancillas, swap.gates, swap.cx, swap.ms,
            formName(autod.form), autod.ancillas, autod.gates, autod.cx,
            autod.ms, gate_ratio, speedup, p);

        if (autod.ancillas != 0 || swap.ancillas < 1) {
            std::printf("FAIL: expected ancilla-free auto lowering vs "
                        ">=1 SWAP ancilla\n");
            ok = false;
        }
        if (autod.form != LoweringForm::kPauliMeasure) {
            std::printf("FAIL: cost model did not pick the Pauli form\n");
            ok = false;
        }
        if (swap.pass_rate != 1.0 || autod.pass_rate != 1.0) {
            std::printf("FAIL: clean workload did not pass every shot\n");
            ok = false;
        }
        if (p <= 1e-4) {
            std::printf("FAIL: cross-form histograms distinguishable\n");
            ok = false;
        }

        if (i) rows << ",\n";
        rows << "  {\"workload\": \"" << w.name << "\",\n"
             << "   \"swap\": {\"ancillas\": " << swap.ancillas
             << ", \"gates\": " << swap.gates << ", \"cx\": " << swap.cx
             << ", \"ms\": " << swap.ms
             << ", \"pass_rate\": " << swap.pass_rate << "},\n"
             << "   \"lowered\": {\"form\": \"" << formName(autod.form)
             << "\", \"ancillas\": " << autod.ancillas
             << ", \"gates\": " << autod.gates
             << ", \"cx\": " << autod.cx << ", \"ms\": " << autod.ms
             << ", \"pass_rate\": " << autod.pass_rate << "},\n"
             << "   \"ancilla_reduction\": "
             << (swap.ancillas - autod.ancillas)
             << ", \"gate_ratio\": " << gate_ratio
             << ", \"speedup\": " << speedup
             << ", \"chi_square_p\": " << p << "}";
    }

    std::ostringstream json;
    json.precision(6);
    json << std::fixed;
    json << "{\n"
         << " \"bench\": \"assertion compiler lowering (PR 8)\",\n"
         << " \"description\": \"Each catalog slot lowered twice: the "
            "paper's SWAP design (forced) vs the cost model's pick "
            "(ancilla-free Pauli parity measurements for these "
            "stabilizer-expressible targets). 4096 shots end-to-end "
            "through the policy runner per form; chi_square_p tests "
            "the two forms' accepted program histograms for "
            "distributional agreement. ghzN_qft guards the GHZ prep "
            "before a non-Clifford QFT suffix, so its instrumented "
            "circuit runs on the statevector backend where the SWAP "
            "ancilla doubles the state size.\",\n"
         << " \"shots\": " << kShots << ",\n"
         << " \"pass\": " << (ok ? "true" : "false") << ",\n"
         << " \"workloads\": [\n"
         << rows.str() << "\n ]\n}\n";

    std::ofstream out(out_path);
    out << json.str();
    std::printf("%s: %s\n", out_path.c_str(), ok ? "pass" : "FAIL");
    return ok ? 0 : 1;
}
