/**
 * @file
 * Sec. VI reproduction: "since each design performs the best for their
 * special cases, none of the designs outperforms the rest for every
 * situation". Sweeps the assertion-state families the paper discusses
 * and reports which design the paper's design=NONE auto-selection picks,
 * demonstrating that every design wins somewhere.
 */
#include <cmath>
#include <iostream>
#include <map>

#include <benchmark/benchmark.h>

#include "algos/deutsch_jozsa.hpp"
#include "algos/states.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/asserted_program.hpp"
#include "linalg/states.hpp"

namespace
{

using namespace qa;
using namespace qa::algos;

struct Family
{
    std::string name;
    StateSet set;
    std::string paper_preference;
};

std::vector<Family>
families()
{
    Rng rng(2027);
    std::vector<Family> out;

    out.push_back({"single-qubit pure", StateSet::pure(randomState(1, rng)),
                   "logical OR (1 CX)"});

    CVector product = randomState(1, rng)
                          .tensor(randomState(1, rng))
                          .tensor(randomState(1, rng));
    out.push_back({"3q separable pure", StateSet::pure(product),
                   "SWAP (3n CX)"});

    // Even-parity family (a|0..0> + b|1..1> and friends).
    std::vector<CVector> parity;
    for (size_t i = 0; i < 8; ++i) {
        if (__builtin_popcountll(i) % 2 == 0) {
            parity.push_back(CVector::basisState(8, i));
        }
    }
    out.push_back({"3q even-parity set", StateSet::approximate(parity),
                   "NDD (n CX)"});

    out.push_back({"3q GHZ precise", StateSet::pure(ghzVector(3)),
                   "SWAP"});

    out.push_back({"DJ constant set",
                   StateSet::approximate(djConstantSet(2)),
                   "SWAP (Sec. X)"});

    out.push_back({"2q mixed rank 2",
                   StateSet::mixed(partialTrace(
                       densityFromPure(ghzVector(3)), {1, 2})),
                   "--"});

    out.push_back({"3q random pure", StateSet::pure(randomState(3, rng)),
                   "--"});

    out.push_back({"cluster state precise",
                   StateSet::pure(linearClusterVector(4)), "--"});
    return out;
}

void
printSelection()
{
    bench::banner("Sec. VI: design auto-selection across state families "
                  "(the paper's design = NONE)");
    TextTable table({"state family", "SWAP #CX", "OR #CX", "NDD #CX",
                     "auto picks", "paper prefers"});
    std::map<std::string, int> wins;
    for (const Family& family : families()) {
        const int swap_cx =
            estimateAssertionCost(family.set, AssertionDesign::kSwap).cx;
        const int or_cx =
            estimateAssertionCost(family.set, AssertionDesign::kOr).cx;
        const int ndd_cx =
            estimateAssertionCost(family.set, AssertionDesign::kNdd).cx;

        AssertedProgram prog(QuantumCircuit(family.set.numQubits()));
        std::vector<int> qubits;
        for (int q = 0; q < family.set.numQubits(); ++q) {
            qubits.push_back(q);
        }
        prog.assertState(qubits, family.set, AssertionDesign::kAuto);
        const std::string chosen = designName(prog.slots()[0].design);
        ++wins[chosen];
        table.addRow({family.name, std::to_string(swap_cx),
                      std::to_string(or_cx), std::to_string(ndd_cx),
                      chosen, family.paper_preference});
    }
    std::cout << table.render();
    std::cout << "Distinct winners: " << wins.size()
              << " -- no design dominates every family (Sec. VI).\n";
}

void
BM_AutoSelection(benchmark::State& state)
{
    Rng rng(4);
    const StateSet set = StateSet::pure(randomState(int(state.range(0)),
                                                    rng));
    for (auto _ : state) {
        AssertedProgram prog(QuantumCircuit(set.numQubits()));
        std::vector<int> qubits;
        for (int q = 0; q < set.numQubits(); ++q) qubits.push_back(q);
        prog.assertState(qubits, set, AssertionDesign::kAuto);
        benchmark::DoNotOptimize(prog.slots()[0].design);
    }
}
BENCHMARK(BM_AutoSelection)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    printSelection();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
